"""Core concrete-evaluation benchmark: interpreted vs compiled vs batched.

Every hot loop of the stack — branch decisions, witness-pool checks, model
verification, test-case materialization, corpus replay — bottoms out in
"evaluate this term under that assignment".  This bench measures that kernel
on the real workload: the path conditions the seed catalog produces, swept
under a pile of random assignments three ways (recursive interpreter,
compiled register tape, one batched tape pass), asserting bit-identical
results, and emits ``BENCH_eval.json``:

* ``interpreted_evals_per_sec`` / ``compiled_evals_per_sec`` — single-model
  throughput of each engine (``compiled_speedup`` is their ratio);
* ``batch_speedup`` — ``run_batch`` over N independent ``run`` calls;
* ``compile_amortization_evals`` — how many compiled evaluations pay back
  one cold compile (compile cost / per-eval saving); below ~10 the cache
  could be dropped entirely, in practice hash-consing makes it ~free.

Timings use the best of ``ROUNDS`` sweeps (machine noise dominates any real
effect at these microsecond scales); results are asserted identical on
every round.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.conftest import print_table
from repro.core.explorer import explore_agent
from repro.symbex.compile import clear_compiled_cache, compile_term
from repro.symbex.simplify import evaluate_bool

AGENTS = ("reference", "ovs", "modified")
TEST = "packet_out"
MODELS_PER_TERM = 24
ROUNDS = 3

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_eval.json")


def _workload():
    """Distinct path-condition terms from the seed catalog + random models."""

    rng = random.Random(0x51AC)
    terms = {}
    for agent in AGENTS:
        report = explore_agent(agent, TEST)
        for outcome in report.outcomes:
            for constraint in outcome.constraints:
                terms[id(constraint)] = constraint
    terms = list(terms.values())
    workload = []
    for term in terms:
        program = compile_term(term)
        models = [
            {name: rng.getrandbits(width)
             for name, width in program.variables.items()}
            for _ in range(MODELS_PER_TERM)
        ]
        workload.append((term, program, models))
    return workload


def test_eval_core_benchmark():
    workload = _workload()
    evals = sum(len(models) for _, _, models in workload)
    assert evals > 0

    interpreted_time = compiled_time = batch_time = None
    reference = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        interpreted = [[int(evaluate_bool(term, model)) for model in models]
                       for term, _, models in workload]
        elapsed = time.perf_counter() - started
        interpreted_time = min(elapsed, interpreted_time or elapsed)

        started = time.perf_counter()
        compiled = [[program.run(model) for model in models]
                    for _, program, models in workload]
        elapsed = time.perf_counter() - started
        compiled_time = min(elapsed, compiled_time or elapsed)

        started = time.perf_counter()
        batched = [program.run_batch(models) for _, program, models in workload]
        elapsed = time.perf_counter() - started
        batch_time = min(elapsed, batch_time or elapsed)

        assert interpreted == compiled == batched, \
            "compiled evaluation diverged from the interpreter"
        if reference is None:
            reference = interpreted
        assert interpreted == reference

    # Cold-compile cost over the same distinct terms (per-term, amortized
    # against the per-eval saving of the compiled engine).
    clear_compiled_cache()
    started = time.perf_counter()
    for term, _, _ in workload:
        compile_term(term)
    compile_time = time.perf_counter() - started

    per_interpreted = interpreted_time / evals
    per_compiled = compiled_time / evals
    per_compile = compile_time / len(workload)
    saving = max(per_interpreted - per_compiled, 1e-12)
    amortization = per_compile / saving

    payload = {
        "test": TEST,
        "agents": list(AGENTS),
        "terms": len(workload),
        "evals": evals,
        "identical_results": True,
        "eval": {
            "interpreted_evals_per_sec": evals / interpreted_time,
            "compiled_evals_per_sec": evals / compiled_time,
            "batched_evals_per_sec": evals / batch_time,
            "compiled_speedup": interpreted_time / compiled_time,
            "batch_speedup": compiled_time / batch_time,
            "compile_amortization_evals": amortization,
            "compile_time": compile_time,
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print_table(
        "concrete evaluation kernel (%d terms x %d models)"
        % (len(workload), MODELS_PER_TERM),
        ("Engine", "Evals/sec", "Speedup"),
        [
            ("interpreted", "%.0f" % (evals / interpreted_time), "1.00x"),
            ("compiled", "%.0f" % (evals / compiled_time),
             "%.2fx" % (interpreted_time / compiled_time)),
            ("compiled+batch", "%.0f" % (evals / batch_time),
             "%.2fx" % (interpreted_time / batch_time)),
        ])
    print("compile amortizes after %.1f evaluations/term" % amortization)

    assert interpreted_time / compiled_time > 1.0, \
        "compiled evaluation must beat the interpreter"
