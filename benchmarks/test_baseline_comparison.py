"""Baseline comparison: manual OFTest-style suite and random differential fuzzing.

Not a table in the paper, but it quantifies the introduction's motivating
claim: manually composed concrete tests pass on every implementation (they
check basic functionality only), and random fuzzing needs luck to hit the
corner-case inputs SOFT derives systematically.
"""

from benchmarks.conftest import cached_crosscheck, print_table
from repro.baselines.fuzzer import DifferentialFuzzer
from repro.baselines.oftest import default_suite, run_suite


def _run_all():
    oftest_results = {agent: run_suite(agent) for agent in ("reference", "ovs", "modified")}
    fuzz_report = DifferentialFuzzer("reference", "ovs", seed=1234).run(iterations=150)
    soft_report = cached_crosscheck("packet_out", "reference", "ovs")
    return oftest_results, fuzz_report, soft_report


def test_baseline_comparison(run_once):
    oftest_results, fuzz_report, soft_report = run_once(_run_all)

    rows = []
    for agent, results in oftest_results.items():
        passed = sum(1 for result in results if result.passed)
        rows.append(("OFTest-style suite", agent, "%d/%d cases pass" % (passed, len(results))))
    rows.append(("Differential fuzzing", "reference vs ovs",
                 "%d/%d random inputs diverged" % (fuzz_report.divergence_count,
                                                   fuzz_report.iterations)))
    rows.append(("SOFT (Packet Out test)", "reference vs ovs",
                 "%d inconsistencies from one symbolic message" % soft_report.inconsistency_count))
    print_table("Baseline comparison", ("Approach", "Target", "Result"), rows)

    # The manual suite cannot tell the implementations apart: every agent passes.
    for agent, results in oftest_results.items():
        assert all(result.passed for result in results)
    assert len(default_suite()) >= 10
    # SOFT finds inconsistencies systematically from a single symbolic message.
    assert soft_report.inconsistency_count >= 5
    # Fuzzing may find some divergences but has no exhaustiveness guarantee;
    # the point of the comparison is that SOFT's result does not depend on luck.
    assert fuzz_report.iterations == 150
