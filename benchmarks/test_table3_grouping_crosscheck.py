"""Table 3: grouping and inconsistency-checking statistics (Reference vs OVS).

For the tests the paper reports in Table 3, this regenerates: the time needed
to group path conditions by output, the number of distinct outputs per agent,
the inconsistency-checking time and the number of reported inconsistencies.
Shape assertions: grouping is orders of magnitude cheaper than symbolic
execution, grouping collapses paths into far fewer distinct outputs, Set
Config produces zero inconsistencies while the action-carrying tests produce
several.
"""

from benchmarks.conftest import (
    cached_crosscheck,
    cached_exploration,
    cached_grouping,
    print_table,
)

TABLE3_TESTS = ("packet_out", "stats_request", "set_config", "eth_flow_mod",
                "cs_flow_mods", "short_symb")


def _run_all():
    results = {}
    for test in TABLE3_TESTS:
        grouped_ref = cached_grouping("reference", test)
        grouped_ovs = cached_grouping("ovs", test)
        crosscheck = cached_crosscheck(test, "reference", "ovs")
        results[test] = (grouped_ref, grouped_ovs, crosscheck)
    return results


def test_table3_grouping_and_inconsistency_checking(run_once):
    results = run_once(_run_all)

    rows = []
    for test in TABLE3_TESTS:
        grouped_ref, grouped_ovs, crosscheck = results[test]
        rows.append((test,
                     "%.3fs" % grouped_ref.grouping_time, grouped_ref.distinct_output_count,
                     "%.3fs" % grouped_ovs.grouping_time, grouped_ovs.distinct_output_count,
                     "%.1fs" % crosscheck.checking_time, crosscheck.inconsistency_count))
    print_table("Table 3: grouping and inconsistency checking (Reference vs Open vSwitch)",
                ("Test", "Ref group t", "Ref #res", "OVS group t", "OVS #res",
                 "Check t", "#Inconsistencies"), rows)

    for test in TABLE3_TESTS:
        grouped_ref, grouped_ovs, crosscheck = results[test]
        exploration_ref = cached_exploration("reference", test)
        # Grouping is much cheaper than symbolic execution (paper: orders of
        # magnitude) and never increases the number of result classes.
        assert grouped_ref.grouping_time <= max(0.5, exploration_ref.cpu_time)
        assert grouped_ref.distinct_output_count <= exploration_ref.path_count
        # The query bound |RES_A| * |RES_B| of §3.4 holds.
        assert crosscheck.queries <= (grouped_ref.distinct_output_count
                                      * grouped_ovs.distinct_output_count)

    # Set Config: the two agents behave identically (paper: 0 inconsistencies).
    assert results["set_config"][2].inconsistency_count == 0
    # The action-carrying and stats tests expose real differences.
    assert results["packet_out"][2].inconsistency_count >= 5
    assert results["stats_request"][2].inconsistency_count >= 1
    assert results["eth_flow_mod"][2].inconsistency_count >= 5
    assert results["short_symb"][2].inconsistency_count >= 1
    assert results["cs_flow_mods"][2].inconsistency_count >= 1
