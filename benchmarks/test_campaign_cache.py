"""Campaign exploration-cache benchmark.

An all-pairs campaign over M agents needs M explorations per test through the
:class:`~repro.core.campaign.ExplorationCache`; the pre-campaign API ran Phase
1 twice per pair, i.e. ``2 * C(M, 2)`` explorations per test (6 instead of 3
for M=3).  This bench runs the 3-agent all-pairs campaign over two tests,
asserts the exploration count, and records wall-clock for the cached campaign
versus the naive re-exploring loop over the same pairs.
"""

from __future__ import annotations

import itertools
import time

import repro.core.campaign as campaign_module
from benchmarks.conftest import print_table
from repro.core.campaign import Campaign
from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import explore_agent
from repro.core.grouping import group_paths

AGENTS = ("reference", "ovs", "modified")
TESTS = ("stats_request", "set_config")


def _campaign_with_counter():
    calls = []
    original = campaign_module.explore_agent

    def recorder(agent, spec, **kwargs):
        calls.append((agent, spec.key))
        return original(agent, spec, **kwargs)

    campaign_module.explore_agent = recorder
    try:
        started = time.perf_counter()
        report = (Campaign(replay_testcases=False)
                  .with_tests(*TESTS)
                  .with_agents(*AGENTS)
                  .run())
        elapsed = time.perf_counter() - started
    finally:
        campaign_module.explore_agent = original
    return report, calls, elapsed


def _naive_per_pair_loop():
    """The pre-campaign behaviour: Phase 1 from scratch for every pair."""

    explorations = 0
    started = time.perf_counter()
    for test in TESTS:
        for agent_a, agent_b in itertools.combinations(AGENTS, 2):
            grouped_a = group_paths(explore_agent(agent_a, test))
            grouped_b = group_paths(explore_agent(agent_b, test))
            explorations += 2
            find_inconsistencies(grouped_a, grouped_b)
    return explorations, time.perf_counter() - started


def test_campaign_cache_bounds_explorations(run_once):
    report, calls, campaign_elapsed = run_once(_campaign_with_counter)
    naive_explorations, naive_elapsed = _naive_per_pair_loop()

    pairs_per_test = len(list(itertools.combinations(AGENTS, 2)))
    print_table(
        "Campaign cache: explorations and wall-clock (3 agents, all pairs, 2 tests)",
        ("Strategy", "Explorations", "Pair reports", "Wall clock"),
        [
            ("campaign (cached)", len(calls), report.pair_count,
             "%.2fs" % campaign_elapsed),
            ("naive per-pair", naive_explorations, pairs_per_test * len(TESTS),
             "%.2fs" % naive_elapsed),
        ])

    # At most M explorations per test (one per agent), not 2 per pair.
    for test in TESTS:
        per_test = [call for call in calls if call[1] == test]
        assert len(per_test) == len(AGENTS)
        assert len(set(per_test)) == len(per_test)  # each (agent, test) exactly once
    assert len(calls) == len(AGENTS) * len(TESTS)
    assert naive_explorations == 2 * pairs_per_test * len(TESTS)
    # Every pair was still crosschecked.
    assert report.pair_count == pairs_per_test * len(TESTS)
