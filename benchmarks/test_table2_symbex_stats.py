"""Table 2: symbolic execution statistics for every test and all three agents.

For each Table-1 test and each agent (Reference, Modified, Open vSwitch) this
reports CPU time, the number of explored paths (input equivalence classes) and
the average/maximum constraint size — the same columns the paper reports.
Absolute numbers differ (pure-Python engine, scaled-down symbolic widths); the
assertions check the paper's *shape*: the Flow Mod family dominates cost, the
Concrete test has exactly one path with no constraints, and Open vSwitch's
additional validation yields more input-space partitions than the Reference
Switch on the action-heavy tests.
"""

from benchmarks.conftest import cached_exploration, print_table
from repro.core.tests_catalog import TABLE1_TESTS

AGENTS = ("reference", "modified", "ovs")


def _run_all():
    reports = {}
    for test in TABLE1_TESTS:
        for agent in AGENTS:
            reports[(test, agent)] = cached_exploration(agent, test)
    return reports


def test_table2_symbolic_execution_statistics(run_once):
    reports = run_once(_run_all)

    rows = []
    for test in TABLE1_TESTS:
        for agent in AGENTS:
            report = reports[(test, agent)]
            rows.append((test, agent, report.message_count,
                         "%.2fs" % report.cpu_time, report.path_count,
                         "%.1f" % report.average_constraint_size(),
                         report.max_constraint_size()))
    print_table("Table 2: symbolic execution statistics",
                ("Test", "Agent", "Msgs", "CPU time", "Paths", "Avg constr", "Max constr"),
                rows)

    ref = {test: reports[(test, "reference")] for test in TABLE1_TESTS}
    ovs = {test: reports[(test, "ovs")] for test in TABLE1_TESTS}

    # The concrete test explores exactly one path and carries no constraints.
    for agent in AGENTS:
        concrete = reports[("concrete", agent)]
        assert concrete.path_count == 1
        assert concrete.max_constraint_size() == 0

    # The Flow Mod family is the most expensive part of the evaluation.
    for agent in AGENTS:
        flow_mod_paths = reports[("flow_mod", agent)].path_count
        assert flow_mod_paths > reports[("stats_request", agent)].path_count
        assert flow_mod_paths > reports[("set_config", agent)].path_count
        assert flow_mod_paths > reports[("concrete", agent)].path_count
    assert ref["flow_mod"].cpu_time > ref["stats_request"].cpu_time
    assert ref["flow_mod"].cpu_time > ref["packet_out"].cpu_time

    # Open vSwitch partitions the input space more finely than the Reference
    # Switch on the action-carrying tests (3-15x in the paper; >= here).
    for test in ("packet_out", "eth_flow_mod", "flow_mod"):
        assert ovs[test].path_count >= ref[test].path_count

    # Symbolic messages produce non-trivial path conditions.
    for test in ("packet_out", "flow_mod", "eth_flow_mod", "short_symb"):
        assert ref[test].average_constraint_size() > 0
