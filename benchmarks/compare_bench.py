#!/usr/bin/env python
"""Guard the committed BENCH_* trajectory points against regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE_DIR [CURRENT_DIR]
                                       [--threshold 0.20]

Compares freshly generated benchmark JSONs in CURRENT_DIR (default ``.``)
against the committed ones saved in BASELINE_DIR, on the higher-is-better
metrics below, and exits non-zero when any metric dropped by more than
``threshold`` (default 20%).  Missing baseline files or keys are skipped
with a note, so the guard bootstraps cleanly when a new benchmark lands;
a metric present in the baseline but absent from the current run (renamed
or retired key) is likewise skipped rather than failed.

Caveat: several metrics are absolute throughputs measured on the machine
that committed the baseline, so a materially slower CI runner can trip the
gate without a code regression.  When that happens, regenerate the
committed BENCH_*.json on the runner class CI uses (or raise
``--threshold``) rather than chasing phantom regressions.

CI copies the checked-in JSONs aside before running the benches (which
overwrite them in place), then runs this script against the copies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: (file, dotted key path, human label); all metrics are higher-is-better.
METRICS = [
    ("BENCH_explore.json", "prefix_oracle.paths_per_sec", "Phase-1 paths/sec"),
    ("BENCH_explore.json", "query_reduction", "Phase-1 query reduction"),
    ("BENCH_crosscheck.json", "crosscheck_speedup", "Phase-2b crosscheck speedup"),
    ("BENCH_solver.json", "sat_core.decisions_per_sec", "SAT decisions/sec"),
    ("BENCH_solver.json", "sat_core.propagations_per_sec", "SAT propagations/sec"),
    ("BENCH_solver.json", "intern.hit_rate", "Intern hit rate"),
    ("BENCH_solver.json", "end_to_end.speedup", "End-to-end speedup"),
    ("BENCH_solver.json", "portfolio.routed.routed_win_rate", "Interval routed win rate"),
    ("BENCH_solver.json", "portfolio.end_to_end.speedup", "Portfolio campaign speedup"),
    ("BENCH_triage.json", "corpus.replays_per_sec", "Corpus replays/sec"),
    ("BENCH_triage.json", "minimization.shrink_ratio", "Witness shrink ratio"),
    ("BENCH_triage.json", "triage.dedup_ratio", "Witness dedup ratio"),
    ("BENCH_hybrid.json", "hybrid.clusters_per_minute", "Hybrid clusters/min"),
    ("BENCH_hybrid.json", "hybrid.coverage_units", "Hybrid coverage units"),
    ("BENCH_hybrid.json", "advantage.clusters_vs_fuzz", "Hybrid vs fuzz clusters"),
    ("BENCH_eval.json", "eval.compiled_evals_per_sec", "Compiled evals/sec"),
    ("BENCH_eval.json", "eval.compiled_speedup", "Compiled vs interpreted"),
    ("BENCH_eval.json", "eval.batch_speedup", "Batch vs single-run"),
]


def _dig(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def _load(directory, name):
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir", help="directory with the committed BENCH_*.json")
    parser.add_argument("current_dir", nargs="?", default=".",
                        help="directory with the freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop (default 0.20)")
    args = parser.parse_args(argv)

    failures = []
    rows = []
    for filename, key, label in METRICS:
        baseline_doc = _load(args.baseline_dir, filename)
        current_doc = _load(args.current_dir, filename)
        baseline = _dig(baseline_doc, key) if baseline_doc else None
        current = _dig(current_doc, key) if current_doc else None
        if baseline is None or not isinstance(baseline, (int, float)) or baseline <= 0:
            rows.append((label, "-", current, "skipped (no baseline)"))
            continue
        if current is None or not isinstance(current, (int, float)):
            # A metric present in the committed baseline but absent from the
            # fresh run means the current bench revision no longer emits it
            # (renamed or retired key) — skip it rather than failing, the same
            # way a missing baseline bootstraps cleanly in the other direction.
            rows.append((label, baseline, "-", "skipped (absent from current run)"))
            continue
        ratio = current / baseline
        status = "ok (%.2fx)" % ratio
        if ratio < 1.0 - args.threshold:
            status = "REGRESSED (%.2fx < %.2fx floor)" % (ratio, 1.0 - args.threshold)
            failures.append("%s: %.4g -> %.4g (%.0f%% drop, threshold %.0f%%)"
                            % (label, baseline, current,
                               100 * (1 - ratio), 100 * args.threshold))
        rows.append((label, baseline, current, status))

    width = max(len(row[0]) for row in rows) if rows else 0
    print("benchmark comparison (baseline=%s, current=%s, threshold=%.0f%%)"
          % (args.baseline_dir, args.current_dir, 100 * args.threshold))
    for label, baseline, current, status in rows:
        print("  %-*s  baseline=%-12s current=%-12s %s"
              % (width, label,
                 "%.4g" % baseline if isinstance(baseline, (int, float)) else baseline,
                 "%.4g" % current if isinstance(current, (int, float)) else current,
                 status))

    if failures:
        print("\nFAIL: %d metric(s) regressed beyond the threshold:" % len(failures))
        for failure in failures:
            print("  - " + failure)
        return 1
    print("\nOK: no metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
