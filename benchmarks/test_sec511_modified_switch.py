"""Section 5.1.1: Modified Switch vs Reference Switch (injected differences).

Reproduces the 5-out-of-7 result: SOFT's input sequences surface five of the
seven injected modifications and structurally cannot surface the remaining two
(the Hello-handshake change and the idle-timeout change).  Detection is judged
per mutation: a mutation counts as detected when at least one of the tests it
is reachable from reports an inconsistency between Reference and Modified.
"""

from benchmarks.conftest import cached_crosscheck, print_table
from repro.agents.modified.mutations import MUTATIONS, detectable_mutations

#: Tests explored for this experiment (the ones the mutations can be reached from,
#: plus concrete/short_symb as controls).
TESTS = ("packet_out", "stats_request", "set_config", "flow_mod", "concrete", "short_symb")


def _run_all():
    return {test: cached_crosscheck(test, "reference", "modified") for test in TESTS}


def test_sec511_injected_modifications_detected(run_once):
    crosschecks = run_once(_run_all)

    inconsistent_tests = {test for test, report in crosschecks.items()
                          if report.inconsistency_count > 0}

    rows = []
    detected = 0
    for mutation in MUTATIONS:
        hit_tests = sorted(set(mutation.surfaced_by) & inconsistent_tests)
        is_detected = bool(hit_tests)
        detected += 1 if is_detected else 0
        rows.append((mutation.key, "yes" if mutation.detectable else "no",
                     "DETECTED" if is_detected else "missed",
                     ",".join(hit_tests) or "-"))
    print_table("Section 5.1.1: Modified Switch vs Reference Switch",
                ("Injected modification", "Detectable", "Outcome", "Surfaced by"), rows)
    print("  detected %d of %d injected modifications (paper: 5 of 7)"
          % (detected, len(MUTATIONS)))

    # Every detectable mutation is surfaced by at least one test...
    for mutation in detectable_mutations():
        assert set(mutation.surfaced_by) & inconsistent_tests, \
            "mutation %s should have been detected" % mutation.key
    # ...and the two structurally invisible ones are not reachable by any test.
    for mutation in MUTATIONS:
        if not mutation.detectable:
            assert not mutation.surfaced_by
    assert detected == len(detectable_mutations()) == 5
    # Control tests: the concrete sequence cannot distinguish the two agents.
    assert crosschecks["concrete"].inconsistency_count == 0
