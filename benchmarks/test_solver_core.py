"""Solver-core microbenchmark: SAT throughput, intern hit rate, end-to-end.

Three measurements, one ``BENCH_solver.json`` trajectory point:

* **SAT core** — deterministic random 3-SAT instances (fixed seed) driven
  straight through :class:`SATSolver`, reporting decisions/sec and
  propagations/sec of the heap-VSIDS + binary-fast-path search loop, plus
  learned-DB reduction activity.
* **Interning** — a full Phase-1 exploration, reporting the hash-consing hit
  rate (constructions answered by the intern table) and the simplify-memo
  hit rate that interning enables.
* **End-to-end** — the same single-test campaign on the fast path (prefix
  oracle + incremental crosscheck) and on the legacy-compat path (full
  solver query per branch side, fresh solver per pair), asserting identical
  inconsistency sets and reporting the wall-clock speedup.
* **Portfolio** — real path conditions from the seed catalogue replayed
  through the default backend portfolio vs the single reference backend,
  reporting per-backend win rates, the interval routing hit rate, and the
  end-to-end campaign speedup (with inconsistency sets asserted identical).

``benchmarks/compare_bench.py`` guards these numbers (and the BENCH_explore /
BENCH_crosscheck ones) against >20% regressions in CI.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.conftest import print_table
from repro.core.campaign import Campaign
from repro.core.explorer import explore_agent
from repro.symbex.engine import EngineConfig
from repro.symbex.expr import intern_table
from repro.symbex.simplify import simplify_cache_stats
from repro.symbex.solver import (DEFAULT_PORTFOLIO, SATSolver, SATStatus,
                                 Solver, SolverConfig)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_solver.json")

AGENTS = ("reference", "ovs", "modified")
EXPLORE_TEST = "packet_out"
CAMPAIGN_TEST = "stats_request"


def _random_3sat(solver: SATSolver, num_vars: int, num_clauses: int,
                 seed: int) -> None:
    rng = random.Random(seed)
    variables = [solver.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        picked = rng.sample(variables, 3)
        solver.add_clause([var if rng.random() < 0.5 else -var
                           for var in picked])


def _bench_sat_core():
    decisions = propagations = conflicts = reductions = 0
    statuses = []
    wall = 0.0
    for seed in range(6):
        solver = SATSolver(learned_db_base=200)
        # Near the 3-SAT phase transition (ratio ~4.2): hard enough to force
        # real search, small enough for a smoke job.
        _random_3sat(solver, 130, 546, seed=seed)
        started = time.perf_counter()
        status = solver.solve(max_conflicts=200_000)
        wall += time.perf_counter() - started
        statuses.append(status)
        if status == SATStatus.SAT:
            model = solver.model()
            assert model, "SAT with empty model"
        decisions += solver.decisions
        propagations += solver.propagations
        conflicts += solver.conflicts
        reductions += solver.db_reductions
    assert SATStatus.UNKNOWN not in statuses
    return {
        "instances": len(statuses),
        "sat": statuses.count(SATStatus.SAT),
        "unsat": statuses.count(SATStatus.UNSAT),
        "decisions": decisions,
        "propagations": propagations,
        "conflicts": conflicts,
        "db_reductions": reductions,
        "wall_clock": wall,
        "decisions_per_sec": decisions / wall if wall else 0.0,
        "propagations_per_sec": propagations / wall if wall else 0.0,
    }


def _bench_interning():
    table = intern_table()
    before = table.stats_dict()
    simplify_before = simplify_cache_stats()
    report = explore_agent("reference", EXPLORE_TEST)
    after = table.stats_dict()
    simplify_after = simplify_cache_stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    simplify_hits = simplify_after["hits"] - simplify_before["hits"]
    simplify_misses = simplify_after["misses"] - simplify_before["misses"]
    simplify_total = simplify_hits + simplify_misses
    return {
        "explored_paths": report.path_count,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else None,
        "distinct_terms": after["distinct_terms"],
        "memory_bytes": after["memory_bytes"],
        "simplify_cache_hit_rate": (simplify_hits / simplify_total
                                    if simplify_total else None),
        "simplify_cache_size": simplify_after["size"],
    }


def _run_campaign(fast: bool):
    if fast:
        campaign = Campaign(replay_testcases=False, incremental=True)
    else:
        campaign = Campaign(replay_testcases=False, incremental=False,
                            engine_config=EngineConfig(use_prefix_oracle=False))
    started = time.perf_counter()
    report = campaign.with_tests(CAMPAIGN_TEST).with_agents(*AGENTS).run()
    return report, time.perf_counter() - started


def _inconsistency_sets(report):
    return {
        (r.test_key, frozenset((r.agent_a, r.agent_b))):
            frozenset((i.trace_a, i.trace_b) for i in r.crosscheck.inconsistencies)
        for r in report.reports
    }


def _bench_portfolio_queries():
    """Replay the seed catalogue's path conditions through the portfolio.

    Two baselines: the *single reference backend* (pure CDCL, no interval
    assist — what a lone complete backend costs) is the one the speedup gate
    compares against; the legacy precheck *pipeline* (hard-wired interval
    pre-analysis + CDCL) is reported alongside, since the portfolio's router
    subsumes it and should hold parity there.
    """

    corpus = []
    for agent in AGENTS:
        report = explore_agent(agent, EXPLORE_TEST)
        corpus.extend(outcome.constraints for outcome in report.outcomes
                      if outcome.constraints)
    assert corpus

    def sweep(config):
        solver = Solver(config)
        started = time.perf_counter()
        statuses = [solver.check(constraints).status for constraints in corpus]
        return solver, statuses, time.perf_counter() - started

    _, expected, single_wall = sweep(SolverConfig(
        backend="cdcl", use_interval_precheck=False, use_cache=False))
    _, pipeline_statuses, pipeline_wall = sweep(SolverConfig(use_cache=False))
    solver, statuses, portfolio_wall = sweep(SolverConfig(
        portfolio=DEFAULT_PORTFOLIO, use_cache=False))
    assert statuses == expected, "portfolio verdicts diverged from reference"
    assert pipeline_statuses == expected

    stats = solver.portfolio.stats_dict()
    queries = stats["portfolio_queries"]
    routed = stats["routed_queries"]
    routed_win_rate = stats["routed_wins"] / routed if routed else 0.0
    backends = {}
    for name in solver.portfolio.members:
        wins = stats["win_%s" % name]
        backends[name] = {
            "wins": wins,
            "win_rate": wins / queries if queries else 0.0,
            "queries_routed": routed if solver.portfolio.is_cheap(name) else 0,
        }
    return {
        "members": list(solver.portfolio.members),
        "corpus_queries": len(corpus),
        "single_backend_wall_clock": single_wall,
        "pipeline_wall_clock": pipeline_wall,
        "portfolio_wall_clock": portfolio_wall,
        "query_speedup": (single_wall / portfolio_wall
                          if portfolio_wall else None),
        "query_speedup_vs_pipeline": (pipeline_wall / portfolio_wall
                                      if portfolio_wall else None),
        "backends": backends,
        "routed": {
            "queries_routed": routed,
            "routed_wins": stats["routed_wins"],
            "routed_win_rate": routed_win_rate,
        },
    }


def _bench_portfolio_campaign():
    """Best-of-2 campaign walls: single reference backend vs the portfolio.

    Runs the legacy solver-per-query pipeline (no prefix oracle, no
    incremental crosscheck) so the one-shot solver actually carries the
    load; the baseline disables the inline interval assist, i.e. every
    query pays the reference CDCL backend.
    """

    def build(**kwargs):
        return Campaign(replay_testcases=False, incremental=False,
                        triage=False,
                        engine_config=EngineConfig(use_prefix_oracle=False),
                        **kwargs)

    variants = {
        "reference": lambda: build(
            solver_config=SolverConfig(use_interval_precheck=False)),
        "portfolio": lambda: build(portfolio=True),
    }
    walls = {label: [] for label in variants}
    sets = {}
    for _ in range(2):
        for label, make in variants.items():
            campaign = make()
            started = time.perf_counter()
            report = campaign.with_tests(CAMPAIGN_TEST).with_agents(*AGENTS).run()
            walls[label].append(time.perf_counter() - started)
            current = _inconsistency_sets(report)
            assert sets.setdefault(label, current) == current
    identical = sets["reference"] == sets["portfolio"]
    assert identical, "portfolio campaign diverged from the reference backend"
    reference_wall = min(walls["reference"])
    portfolio_wall = min(walls["portfolio"])
    return {
        "test": CAMPAIGN_TEST,
        "agents": list(AGENTS),
        "identical_inconsistency_sets": identical,
        "reference_wall_clock": reference_wall,
        "portfolio_wall_clock": portfolio_wall,
        "speedup": (reference_wall / portfolio_wall
                    if portfolio_wall else None),
    }


def test_solver_core_benchmark(run_once):
    sat = run_once(_bench_sat_core)
    interning = _bench_interning()
    new_report, new_wall = _run_campaign(fast=True)
    old_report, old_wall = _run_campaign(fast=False)
    portfolio = _bench_portfolio_queries()
    portfolio["end_to_end"] = _bench_portfolio_campaign()

    identical = _inconsistency_sets(new_report) == _inconsistency_sets(old_report)
    assert identical, "fast-path campaign diverged from the legacy-compat one"
    assert sat["decisions_per_sec"] > 0 and sat["propagations_per_sec"] > 0
    assert interning["hit_rate"] is not None and interning["hit_rate"] > 0.5
    # The routed word-level backend must carry real weight on the catalogue's
    # conditions, and racing must never lose to the single-backend pipeline.
    assert portfolio["routed"]["routed_win_rate"] >= 0.2
    assert portfolio["end_to_end"]["speedup"] >= 1.0

    print_table(
        "Solver core: SAT throughput, interning, end-to-end (%s, %d agents)"
        % (CAMPAIGN_TEST, len(AGENTS)),
        ("Metric", "Value"),
        [
            ("SAT decisions/sec", "%.0f" % sat["decisions_per_sec"]),
            ("SAT propagations/sec", "%.0f" % sat["propagations_per_sec"]),
            ("SAT DB reductions", sat["db_reductions"]),
            ("Intern hit rate", "%.1f%%" % (100 * interning["hit_rate"])),
            ("Distinct terms", interning["distinct_terms"]),
            ("Campaign fast path", "%.2fs" % new_wall),
            ("Campaign legacy path", "%.2fs" % old_wall),
            ("End-to-end speedup", "%.2fx" % (old_wall / new_wall
                                              if new_wall else 0.0)),
            ("Portfolio corpus queries", portfolio["corpus_queries"]),
            ("Interval routed win rate",
             "%.1f%%" % (100 * portfolio["routed"]["routed_win_rate"])),
            ("Portfolio query speedup",
             "%.2fx" % portfolio["query_speedup"]),
            ("Portfolio campaign speedup",
             "%.2fx" % portfolio["end_to_end"]["speedup"]),
        ])

    payload = {
        "benchmark": "solver_core",
        "sat_core": sat,
        "intern": interning,
        "end_to_end": {
            "test": CAMPAIGN_TEST,
            "agents": list(AGENTS),
            "identical_inconsistency_sets": identical,
            "new_wall_clock": new_wall,
            "legacy_wall_clock": old_wall,
            "speedup": old_wall / new_wall if new_wall else None,
        },
        "portfolio": portfolio,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(BENCH_PATH))
