"""Phase-1 exploration benchmark: legacy engine vs the prefix-oracle engine.

The legacy engine answers every branch-feasibility question with a full
:class:`Solver` query — re-simplify, re-bit-blast and re-solve the whole
path condition in a fresh SAT instance, up to twice per branch.  The
prefix-oracle engine encodes every distinct branch condition once into one
shared incremental SAT instance and decides each prefix under assumptions,
with a prefix-feasibility cache shared across sibling paths.

This bench explores the same test with all three agents under both engines,
asserts the path-condition sets are identical and that the oracle issues
strictly fewer solver queries per explored path, and emits a
``BENCH_explore.json`` trajectory point (paths/sec, solver queries) that the
bench-smoke CI job uploads.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.explorer import explore_agent
from repro.symbex.engine import EngineConfig

AGENTS = ("reference", "ovs", "modified")
TEST = "packet_out"

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_explore.json")


def _path_set(report):
    return frozenset(
        tuple(sorted(constraint.key() for constraint in outcome.constraints))
        for outcome in report.outcomes
    )


def _run_engine(config: EngineConfig):
    totals = {"paths": 0, "solver_queries": 0, "wall_clock": 0.0}
    path_sets = {}
    for agent in AGENTS:
        started = time.perf_counter()
        report = explore_agent(agent, TEST, engine_config=config)
        totals["wall_clock"] += time.perf_counter() - started
        totals["paths"] += report.path_count
        totals["solver_queries"] += int(report.engine_stats["solver_queries"])
        path_sets[agent] = _path_set(report)
    totals["paths_per_sec"] = (totals["paths"] / totals["wall_clock"]
                               if totals["wall_clock"] else 0.0)
    totals["queries_per_path"] = (totals["solver_queries"] / totals["paths"]
                                  if totals["paths"] else 0.0)
    return totals, path_sets


#: Rounds of the oracle measurement; the best round is reported.  Wall-clock
#: on shared machines swings far more than the code under test (observed
#: ±40% run-to-run on identical binaries), and best-of-N reports the code's
#: attainable throughput rather than the scheduler's mood.  Every round must
#: reproduce the identical path sets.
ORACLE_ROUNDS = 3


def test_exploration_prefix_oracle_benchmark(run_once):
    legacy, legacy_sets = run_once(_run_engine, EngineConfig(use_prefix_oracle=False))
    oracle = None
    identical = True
    for _ in range(ORACLE_ROUNDS):
        candidate, oracle_sets = _run_engine(EngineConfig())
        identical = identical and legacy_sets == oracle_sets
        if oracle is None or candidate["paths_per_sec"] > oracle["paths_per_sec"]:
            oracle = candidate
    assert identical, "prefix-oracle engine diverged from the legacy path sets"
    assert oracle["solver_queries"] < legacy["solver_queries"]
    assert oracle["queries_per_path"] < legacy["queries_per_path"]

    print_table(
        "Phase-1 exploration: legacy full-query engine vs prefix oracle "
        "(%s, %d agents)" % (TEST, len(AGENTS)),
        ("Engine", "Paths", "Solver queries", "Queries/path", "Paths/sec",
         "Wall-clock"),
        [
            ("legacy", legacy["paths"], legacy["solver_queries"],
             "%.2f" % legacy["queries_per_path"],
             "%.0f" % legacy["paths_per_sec"],
             "%.2fs" % legacy["wall_clock"]),
            ("prefix-oracle", oracle["paths"], oracle["solver_queries"],
             "%.2f" % oracle["queries_per_path"],
             "%.0f" % oracle["paths_per_sec"],
             "%.2fs" % oracle["wall_clock"]),
        ])

    payload = {
        "test": TEST,
        "agents": list(AGENTS),
        "identical_path_sets": identical,
        "legacy": legacy,
        "prefix_oracle": oracle,
        "query_reduction": 1.0 - (oracle["solver_queries"]
                                  / float(legacy["solver_queries"])),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
