"""Witness triage + corpus benchmark (the §3.5 "actionable output" layer).

Runs the default triage pipeline on the seed catalog (reference vs modified),
then exercises the persistent corpus as a solver-free regression suite.  Two
properties are gated and one trajectory point is emitted:

* every raw inconsistency must be replay-confirmed and clustered, with at
  least one cluster merging >= 2 raw witnesses and every minimized witness
  strictly smaller than its original;
* the corpus replay must confirm every stored bundle without a single solver
  query (the solver entry points are poisoned for the duration);
* ``BENCH_triage.json`` records witnesses/sec replayed from the corpus and
  the minimization shrink ratio, both guarded by
  ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.campaign import Campaign
from repro.core.corpus import WitnessCorpus
from repro.symbex.solver.incremental import GroupEncoding
from repro.symbex.solver.solver import Solver

TESTS = ("set_config", "flow_mod")
AGENTS = ("reference", "modified")
#: Replay the whole corpus this many times for a stable throughput estimate.
CORPUS_ROUNDS = 5

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_triage.json")


def test_triage_and_corpus_benchmark(tmp_path):
    corpus_dir = str(tmp_path / "bench_corpus")
    campaign_started = time.perf_counter()
    report = (Campaign(corpus_dir=corpus_dir)
              .with_tests(*TESTS)
              .with_agents(*AGENTS)
              .run())
    campaign_time = time.perf_counter() - campaign_started
    triage = report.triage

    # -- triage gates ------------------------------------------------------
    assert triage is not None and triage.raw_witnesses > 0
    assert triage.confirmed_witnesses == triage.raw_witnesses
    assert triage.merged_cluster_count >= 1
    assert triage.cluster_count < triage.raw_witnesses
    witnesses = [w for sr in report.reports for w in sr.witnesses]
    assert all(w.minimization is not None and w.minimization.reduced
               for w in witnesses)

    # -- corpus replay throughput (solver poisoned) ------------------------
    corpus = WitnessCorpus(corpus_dir, create=False)
    assert len(corpus) == triage.cluster_count

    solver_check = Solver.check
    engine_check = GroupEncoding.check_pair

    def poisoned(*args, **kwargs):
        raise AssertionError("solver query during corpus replay")

    Solver.check = poisoned
    GroupEncoding.check_pair = poisoned
    try:
        runs = [corpus.run() for _ in range(CORPUS_ROUNDS)]
    finally:
        Solver.check = solver_check
        GroupEncoding.check_pair = engine_check
    assert all(run.ok for run in runs)
    best = max(runs, key=lambda run: run.witnesses_per_sec)
    replayed = sum(run.replayed for run in runs)

    rows = [(cluster.signature.short()[:60], cluster.size,
             "%d<-%d" % (cluster.representative.variable_count,
                         cluster.representative.minimization.original_variables))
            for cluster in triage.clusters]
    print_table("witness clusters (raw -> minimized representative)",
                ("signature", "raw", "vars"), rows)
    print_table("corpus replay", ("round", "witnesses", "wall", "per_sec"),
                [(index, run.replayed, "%.3fs" % run.wall_time,
                  "%.0f" % run.witnesses_per_sec)
                 for index, run in enumerate(runs)])

    data = {
        "tests": list(TESTS),
        "agents": list(AGENTS),
        "campaign_wall_clock": campaign_time,
        "triage": {
            "raw_witnesses": triage.raw_witnesses,
            "confirmed_witnesses": triage.confirmed_witnesses,
            "clusters": triage.cluster_count,
            "merged_clusters": triage.merged_cluster_count,
            "dedup_ratio": triage.dedup_ratio,
            "minimization_replays": triage.minimization_replays,
        },
        "minimization": {
            "shrink_ratio": triage.mean_shrink_ratio,
            "all_reduced": True,
        },
        "corpus": {
            "witnesses": len(corpus),
            "rounds": CORPUS_ROUNDS,
            "replayed": replayed,
            "replays_per_sec": best.witnesses_per_sec,
            "solver_queries": 0,
            "all_confirmed": all(run.ok for run in runs),
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print("\nwrote %s" % os.path.abspath(BENCH_PATH))
