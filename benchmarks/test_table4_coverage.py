"""Table 4: instruction and branch coverage per test, Reference vs Open vSwitch.

The paper reports that individual tests each cover 20-40% of the
OpenFlow-processing code (because each test targets a few message handlers)
and that the cumulative coverage of all tests is much higher.  The same shape
is asserted here: every symbolic test covers a meaningful but partial share,
the Flow Mod family covers more than Packet Out / Set Config / Concrete, and
the union over all tests exceeds every individual test.
"""

from benchmarks.conftest import COVERAGE_MAX_PATHS, cached_exploration, print_table
from repro.core.tests_catalog import TABLE1_TESTS
from repro.coverage.tracker import CoverageTracker
from repro.core.explorer import explore_agent
from repro.core.tests_catalog import get_test
from repro.symbex.engine import EngineConfig

AGENTS = ("reference", "ovs")


def _run_all():
    per_test = {}
    for test in TABLE1_TESTS:
        for agent in AGENTS:
            per_test[(test, agent)] = cached_exploration(agent, test, with_coverage=True,
                                                         max_paths=COVERAGE_MAX_PATHS)
    # Cumulative coverage: one tracker kept armed across every test (reference).
    tracker = CoverageTracker(packages=["repro.agents.common", "repro.agents.reference"])
    for test in TABLE1_TESTS:
        from repro.harness.driver import TestDriver
        from repro.symbex.engine import Engine
        from repro.agents import make_agent

        spec = get_test(test)
        driver = TestDriver(agent_factory=lambda: make_agent("reference"),
                            inputs=spec.inputs, coverage_tracker=tracker)
        Engine(config=EngineConfig(max_paths=COVERAGE_MAX_PATHS)).explore(driver.program)
    cumulative = tracker.report()
    return per_test, cumulative


def test_table4_instruction_and_branch_coverage(run_once):
    per_test, cumulative = run_once(_run_all)

    rows = []
    for test in TABLE1_TESTS:
        row = [test]
        for agent in AGENTS:
            coverage = per_test[(test, agent)].coverage
            row.append("%.1f%%" % (100 * coverage.instruction_coverage))
            row.append("%.1f%%" % (100 * coverage.branch_coverage))
        rows.append(tuple(row))
    rows.append(("cumulative (reference)",
                 "%.1f%%" % (100 * cumulative.instruction_coverage),
                 "%.1f%%" % (100 * cumulative.branch_coverage), "", ""))
    print_table("Table 4: instruction and branch coverage",
                ("Test", "Ref inst", "Ref branch", "OVS inst", "OVS branch"), rows)

    for agent in AGENTS:
        concrete = per_test[("concrete", agent)].coverage.instruction_coverage
        flow_mod = per_test[("flow_mod", agent)].coverage.instruction_coverage
        packet_out = per_test[("packet_out", agent)].coverage.instruction_coverage
        # Each test covers a partial share of the agent code (the concrete
        # 8-byte messages exercise only the trivial handlers, so their share
        # is small; every symbolic test reaches clearly more).
        for test in TABLE1_TESTS:
            coverage = per_test[(test, agent)].coverage.instruction_coverage
            assert 0.02 < coverage < 0.95
        for test in ("packet_out", "flow_mod", "eth_flow_mod", "stats_request"):
            assert per_test[(test, agent)].coverage.instruction_coverage > 0.05
        # The Flow Mod family exercises the most code (paper: ~40% vs ~20-30%).
        assert flow_mod > packet_out
        assert flow_mod > concrete
    # Cumulative coverage exceeds every individual test's coverage (paper: ~75%).
    best_single = max(per_test[(test, "reference")].coverage.instruction_coverage
                      for test in TABLE1_TESTS)
    assert cumulative.instruction_coverage >= best_single
