"""Figure 4: Reference Switch code coverage vs. number of symbolic messages.

Explores Flow Mod sequences with 1, 2 and 3 symbolic messages on the Reference
Switch with coverage tracking and reports instruction/branch coverage.  Shape
assertions (the paper's point): coverage grows from one to two messages, and
the third message adds little — most additional behaviour is already exposed
by the cross-interaction of a message pair.
"""

from benchmarks.conftest import COVERAGE_MAX_PATHS, cached_exploration, print_table
from repro.core.variants import flow_mod_sequence_spec


def _run_all():
    reports = {}
    for count in (1, 2, 3):
        spec = flow_mod_sequence_spec(count)
        reports[count] = cached_exploration("reference", spec, with_coverage=True,
                                            max_paths=COVERAGE_MAX_PATHS)
    return reports


def test_figure4_coverage_as_function_of_symbolic_messages(run_once):
    reports = run_once(_run_all)

    rows = []
    for count in (1, 2, 3):
        report = reports[count]
        coverage = report.coverage
        rows.append((count, report.path_count,
                     "%.1f%%" % (100 * coverage.instruction_coverage),
                     "%.1f%%" % (100 * coverage.branch_coverage),
                     "%.1fs" % report.cpu_time))
    print_table("Figure 4: Reference Switch coverage vs number of symbolic messages",
                ("Symbolic msgs", "Paths", "Instruction cov", "Branch cov", "CPU time"), rows)

    one = reports[1].coverage.instruction_coverage
    two = reports[2].coverage.instruction_coverage
    three = reports[3].coverage.instruction_coverage

    # One symbolic message already reaches a substantial share of the code.
    assert one > 0.15
    # The second message adds coverage (cross-interactions with installed state).
    assert two >= one
    # The third message does not significantly improve coverage further: the
    # increment from 2 -> 3 is no larger than the increment from 1 -> 2 and is
    # small in absolute terms (paper: "a third message does not significantly
    # improve coverage").
    assert (three - two) <= max(0.03, (two - one) + 0.01)
