"""Incremental crosscheck benchmark (3 agents x 2 tests, all pairs).

The legacy Phase 2b pays one SAT backend rebuild per pair query: every query
re-simplifies, re-bit-blasts and re-solves both group conditions from
scratch.  The incremental engine builds ONE backend per test, encodes each
group condition once behind an activation literal, and answers every pair
query as ``solve(assumptions=[act_i, act_j])`` on the shared instance.

This bench runs the same campaign in both modes, asserts the inconsistency
sets are identical and that the incremental engine rebuilds strictly fewer
backends than it answers pair reports, and emits a ``BENCH_crosscheck.json``
trajectory point with the measured crosscheck wall-clock.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.campaign import Campaign

AGENTS = ("reference", "ovs", "modified")
TESTS = ("stats_request", "set_config")

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_crosscheck.json")


def _run_campaign(incremental: bool, repeats: int = 3):
    """Run *repeats* fresh campaigns; report the first, keep the **minimum**
    crosscheck/campaign times (the crosscheck phase is ~10ms at this scale,
    so a single sample is noise-dominated and min-of-N is the stable
    estimator for the speedup ratio the CI gate guards)."""

    first_report = None
    best_elapsed = best_check = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        report = (Campaign(replay_testcases=False, incremental=incremental)
                  .with_tests(*TESTS)
                  .with_agents(*AGENTS)
                  .run())
        elapsed = time.perf_counter() - started
        crosscheck_time = sum(r.crosscheck.checking_time for r in report.reports)
        if first_report is None:
            first_report = report
        best_elapsed = min(best_elapsed, elapsed)
        best_check = min(best_check, crosscheck_time)
    return first_report, best_elapsed, best_check


def _inconsistency_sets(report):
    return {
        (r.test_key, frozenset((r.agent_a, r.agent_b))):
            frozenset((i.trace_a, i.trace_b) for i in r.crosscheck.inconsistencies)
        for r in report.reports
    }


def test_incremental_crosscheck_backend_reuse(run_once):
    incremental, incremental_wall, incremental_check = run_once(_run_campaign, True)
    legacy, legacy_wall, legacy_check = _run_campaign(False)

    incremental_rebuilds = incremental.solver_stats["backend_rebuilds"]
    legacy_rebuilds = legacy.solver_stats.get("sat_backend_runs", 0)
    print_table(
        "Incremental crosscheck: backend rebuilds and wall-clock "
        "(3 agents, all pairs, 2 tests)",
        ("Strategy", "Backend rebuilds", "Pair reports", "Queries",
         "Crosscheck time", "Campaign time"),
        [
            ("incremental (shared engine)", incremental_rebuilds,
             incremental.pair_count, incremental.total_queries,
             "%.3fs" % incremental_check, "%.2fs" % incremental_wall),
            ("legacy (solver per pair)", legacy_rebuilds,
             legacy.pair_count, legacy.total_queries,
             "%.3fs" % legacy_check, "%.2fs" % legacy_wall),
        ])

    # Identical inconsistency sets: the fast path changes no verdict.
    assert _inconsistency_sets(incremental) == _inconsistency_sets(legacy)
    assert incremental.total_queries == legacy.total_queries

    # Strictly fewer backend rebuilds than pair-count x 1: one engine per
    # test, each group condition encoded once per test.
    assert incremental_rebuilds < incremental.pair_count
    assert incremental_rebuilds == len(TESTS)
    assert incremental.solver_stats["encoding_reuses"] > 0

    payload = {
        "benchmark": "incremental_crosscheck",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "agents": list(AGENTS),
        "tests": list(TESTS),
        "pair_reports": incremental.pair_count,
        "solver_queries": incremental.total_queries,
        "inconsistencies": incremental.total_inconsistencies,
        "identical_inconsistency_sets": True,
        "incremental": {
            "backend_rebuilds": incremental_rebuilds,
            "groups_encoded": incremental.solver_stats["groups_encoded"],
            "encoding_reuses": incremental.solver_stats["encoding_reuses"],
            "assumption_solves": incremental.solver_stats["assumption_solves"],
            "interval_decides": incremental.solver_stats["interval_decides"],
            "pair_cache_hits": incremental.solver_stats["pair_cache_hits"],
            "crosscheck_wall_clock": incremental_check,
            "campaign_wall_clock": incremental_wall,
        },
        "legacy": {
            "backend_rebuilds": legacy_rebuilds,
            "crosscheck_wall_clock": legacy_check,
            "campaign_wall_clock": legacy_wall,
        },
        "crosscheck_speedup": (legacy_check / incremental_check
                               if incremental_check > 0 else None),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(BENCH_PATH))
