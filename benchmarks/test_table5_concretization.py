"""Table 5: the effect of concretizing inputs on time, paths and coverage.

Compares the fully symbolic Flow Mod test against variants with a concrete
match, a concrete action, a concrete probe and a symbolic probe.  Shape
assertions from §5.3: concretizing reduces time and path count by a large
factor while costing only a few percentage points of coverage, and a symbolic
probe costs extra time/paths for a small coverage gain.
"""

from benchmarks.conftest import COVERAGE_MAX_PATHS, cached_exploration, print_table
from repro.core.variants import TABLE5_VARIANTS, concretization_spec


def _run_all():
    reports = {}
    for variant in TABLE5_VARIANTS:
        spec = concretization_spec(variant)
        reports[variant] = cached_exploration("reference", spec, with_coverage=True,
                                              max_paths=COVERAGE_MAX_PATHS)
    return reports


def test_table5_effects_of_concretizing(run_once):
    reports = run_once(_run_all)

    rows = []
    for variant in TABLE5_VARIANTS:
        report = reports[variant]
        rows.append((variant, "%.1fs" % report.cpu_time, report.path_count,
                     "%.1f%%" % (100 * report.coverage.instruction_coverage)))
    print_table("Table 5: effects of concretizing on time, paths and coverage",
                ("Variant", "CPU time", "Paths", "Instruction cov"), rows)

    fully = reports["fully_symbolic"]
    concrete_match = reports["concrete_match"]
    concrete_action = reports["concrete_action"]
    concrete_probe = reports["concrete_probe"]
    symbolic_probe = reports["symbolic_probe"]

    # Concretizing the match or the actions reduces the number of generated
    # paths; the coverage drop stays small (paper: 2-5 percentage points).
    assert concrete_match.path_count <= fully.path_count
    assert concrete_action.path_count <= fully.path_count
    assert concrete_action.path_count < fully.path_count or \
        concrete_match.path_count < fully.path_count
    for variant in ("concrete_match", "concrete_action"):
        drop = fully.coverage.instruction_coverage - reports[variant].coverage.instruction_coverage
        assert drop <= 0.10

    # A symbolic probe explores at least as many paths as a concrete probe and
    # adds only a small amount of coverage (paper: ~2% for 3.5x the time).
    assert symbolic_probe.path_count >= concrete_probe.path_count
    gain = symbolic_probe.coverage.instruction_coverage - concrete_probe.coverage.instruction_coverage
    assert gain >= -0.01
    assert gain <= 0.10
