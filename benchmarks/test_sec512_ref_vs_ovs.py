"""Section 5.1.2: inconsistency classes between Reference Switch and Open vSwitch.

Checks that the crosscheck rediscovers each class of inconsistency the paper
describes, and that a generated concrete test case replays to a real
divergence (SOFT's no-false-positive property).
"""

from benchmarks.conftest import cached_crosscheck, print_table
from repro.core.testcase import build_testcase, replay_testcase

TESTS = ("packet_out", "flow_mod", "stats_request", "short_symb", "cs_flow_mods")


def _run_all():
    return {test: cached_crosscheck(test, "reference", "ovs") for test in TESTS}


def _traces_of(report):
    pairs = []
    for inconsistency in report.inconsistencies:
        pairs.append((inconsistency.trace_a.items, inconsistency.trace_b.items))
    return pairs


def _has_kind(trace_items, kind):
    return any(item[0] == kind for item in trace_items)


def _has_error(trace_items):
    return any(item[0] == "ctrl_msg" and item[2][0] == "ERROR" for item in trace_items)


def test_sec512_reference_vs_open_vswitch(run_once):
    crosschecks = run_once(_run_all)

    rows = [(test, report.queries, report.inconsistency_count,
             "%.1fs" % report.checking_time)
            for test, report in crosschecks.items()]
    print_table("Section 5.1.2: Reference Switch vs Open vSwitch",
                ("Test", "Solver queries", "Inconsistencies", "Checking time"), rows)

    packet_out = crosschecks["packet_out"]
    flow_mod = crosschecks["flow_mod"]
    stats = crosschecks["stats_request"]

    # Every reported class from the paper appears:
    pairs = _traces_of(packet_out)
    # 1. "OpenFlow agent terminates with an error": the reference switch
    #    crashes on inputs Open vSwitch handles cleanly.
    assert any(_has_kind(a, "crash") and not _has_kind(b, "crash") for a, b in pairs)
    # 2. "Packet dropped when action is invalid" / "lack of error messages":
    #    one agent answers or forwards while the other stays silent.
    assert any((len(a) == 0) != (len(b) == 0) for a, b in pairs)
    # 3. "Different order of message validation" / invalid ports: an error from
    #    one agent pairs with a non-error behaviour of the other.
    assert any(_has_error(a) != _has_error(b) for a, b in pairs)

    # Flow Mod family: divergent behaviours also found (invalid ports, buffers,
    # emergency flows, in_port == out_port).
    assert flow_mod.inconsistency_count >= 3

    # "Statistics requests silently ignored": reference is silent, OVS errors.
    stats_pairs = _traces_of(stats)
    assert any(len(a) == 0 and _has_error(b) for a, b in stats_pairs)

    # No false positives: a sampled test case per test replays to a divergence.
    replayed = 0
    for test, report in crosschecks.items():
        if not report.inconsistencies:
            continue
        inconsistency = report.inconsistencies[0]
        testcase = build_testcase(test, inconsistency.example, inconsistency)
        outcome = replay_testcase(testcase, "reference", "ovs")
        assert outcome.diverged, "replay of %s test case did not diverge" % test
        replayed += 1
    assert replayed >= 4
