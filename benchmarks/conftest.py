"""Shared infrastructure for the benchmark harness.

Explorations, groupings and crosschecks are cached per session so that the
benches regenerating different tables (which share the same underlying runs,
exactly like the paper's tables share one set of Cloud9 runs) do not repeat
the expensive Phase-1 work.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.core.crosscheck import CrosscheckReport, find_inconsistencies
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import GroupedResults, group_paths
from repro.core.tests_catalog import TestSpec, get_test
from repro.symbex.engine import EngineConfig

_EXPLORATIONS: Dict[Tuple, AgentExplorationReport] = {}
_GROUPINGS: Dict[Tuple, GroupedResults] = {}
_CROSSCHECKS: Dict[Tuple, CrosscheckReport] = {}

#: Paths explored per (agent, test) when coverage tracing is armed; tracing
#: slows the agent code down considerably and coverage saturates early.
COVERAGE_MAX_PATHS = 200


def cached_exploration(agent: str, test, with_coverage: bool = False,
                       max_paths: Optional[int] = None) -> AgentExplorationReport:
    spec = get_test(test) if isinstance(test, str) else test
    key = (agent, spec.key, with_coverage, max_paths)
    if key not in _EXPLORATIONS:
        engine_config = EngineConfig(max_paths=max_paths) if max_paths else None
        _EXPLORATIONS[key] = explore_agent(agent, spec, with_coverage=with_coverage,
                                           engine_config=engine_config)
    return _EXPLORATIONS[key]


def cached_grouping(agent: str, test) -> GroupedResults:
    spec = get_test(test) if isinstance(test, str) else test
    key = (agent, spec.key)
    if key not in _GROUPINGS:
        _GROUPINGS[key] = group_paths(cached_exploration(agent, spec))
    return _GROUPINGS[key]


def cached_crosscheck(test, agent_a: str, agent_b: str) -> CrosscheckReport:
    spec = get_test(test) if isinstance(test, str) else test
    key = (spec.key, agent_a, agent_b)
    if key not in _CROSSCHECKS:
        _CROSSCHECKS[key] = find_inconsistencies(cached_grouping(agent_a, spec),
                                                 cached_grouping(agent_b, spec))
    return _CROSSCHECKS[key]


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def print_table(title: str, header, rows) -> None:
    """Render a table to stdout (visible with ``pytest -s`` and in CI logs)."""

    print("\n== %s ==" % title)
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows
              else len(str(header[i])) for i in range(len(header))]
    print("  " + "  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  " + "  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))
