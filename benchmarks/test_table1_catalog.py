"""Table 1: the catalogue of tests used in the evaluation.

Regenerates the catalogue (name, message count, description), checks that each
specification builds its inputs, and times the (cheap) construction.
"""

from benchmarks.conftest import print_table
from repro.core.tests_catalog import TABLE1_TESTS, catalog
from repro.symbex.state import PathState
from repro.harness.inputs import ControlMessageInput, ProbeInput


def _build_all_specs():
    specs = catalog()
    built = {}
    for key, spec in specs.items():
        state = PathState(path_id=0)
        shapes = []
        for test_input in spec.inputs:
            if isinstance(test_input, ControlMessageInput):
                shapes.append(("control", len(test_input.build(state))))
            elif isinstance(test_input, ProbeInput):
                port, frame = test_input.build(state)
                shapes.append(("probe", len(frame)))
        built[key] = shapes
    return specs, built


def test_table1_catalog(run_once):
    specs, built = run_once(_build_all_specs)

    rows = []
    for key in TABLE1_TESTS:
        spec = specs[key]
        rows.append((spec.title, spec.message_count, len(spec.inputs), spec.description))
    print_table("Table 1: tests used in the evaluation",
                ("Test", "Messages", "Inputs", "Description"), rows)

    assert set(specs) == set(TABLE1_TESTS)
    # Paper message counts: Packet Out/Stats Request/Short Symb = 1, the Flow
    # Mod family and Set Config = 2, Concrete = 4.
    assert specs["packet_out"].message_count == 1
    assert specs["stats_request"].message_count == 1
    assert specs["short_symb"].message_count == 1
    assert specs["set_config"].message_count == 2
    assert specs["flow_mod"].message_count == 2
    assert specs["eth_flow_mod"].message_count == 2
    assert specs["cs_flow_mods"].message_count == 2
    assert specs["concrete"].message_count == 4
    # Every spec builds wire-format inputs.
    for key, shapes in built.items():
        assert all(size >= 8 for _kind, size in shapes)
