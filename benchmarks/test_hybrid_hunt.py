"""Hybrid hunt benchmark: hybrid vs pure-symbex vs pure-fuzz at equal budget.

Runs three budgeted hunts on the same (test, pair, seed) — the full hybrid
stage roster, symbex only, and fuzz only — and emits ``BENCH_hybrid.json``
with inconsistency clusters per minute and coverage at budget for each mode.
Two gates encode the point of the subsystem:

* the hybrid hunt finds at least as many witness clusters as pure symbolic
  exploration at the same wall-clock budget, and
* strictly more than pure fuzzing (which cannot hit rare constants).

``benchmarks/compare_bench.py`` guards the hybrid throughput numbers.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import print_table
from repro.hybrid import HybridConfig, HybridHunt

TEST = "packet_out"
AGENT_A, AGENT_B = "reference", "modified"
BUDGET = 6.0
SEED = 0

MODES = (
    ("hybrid", ("fuzz", "concolic", "symbex", "replay")),
    ("symbex", ("symbex",)),
    ("fuzz", ("fuzz",)),
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_hybrid.json")


def _run_mode(stages):
    config = HybridConfig(budget=BUDGET, slice_time=0.5, seed=SEED,
                          stages=stages)
    return HybridHunt(TEST, AGENT_A, AGENT_B, config=config).run()


def _mode_row(name, report):
    wall = max(report.stats.wall_time, 1e-9)
    coverage_units = sum(stage.new_coverage_units
                         for stage in report.stats.stages.values())
    return {
        "stages": list(report.stats.stages),
        "clusters": report.cluster_count,
        "witnesses": len(report.witnesses),
        "confirmed_witnesses": report.confirmed_witnesses,
        "clusters_per_minute": 60.0 * report.cluster_count / wall,
        "coverage_units": coverage_units,
        "coverage_units_per_sec": coverage_units / wall,
        "wall_time": report.stats.wall_time,
        "slices": report.stats.slices,
    }


def test_hybrid_hunt_beats_the_pure_baselines():
    reports = {name: _run_mode(stages) for name, stages in MODES}
    rows = {name: _mode_row(name, report) for name, report in reports.items()}

    print_table(
        "hunt modes at equal %.0fs budget" % BUDGET,
        ("mode", "clusters", "witnesses", "clusters/min", "cov units", "slices"),
        [(name, row["clusters"], row["witnesses"],
          "%.1f" % row["clusters_per_minute"], row["coverage_units"],
          row["slices"])
         for name, row in rows.items()])

    # -- gates -------------------------------------------------------------
    assert rows["hybrid"]["clusters"] >= 1
    assert rows["hybrid"]["clusters"] >= rows["symbex"]["clusters"]
    assert rows["hybrid"]["clusters"] > rows["fuzz"]["clusters"]
    # Every hybrid witness went through the one concrete-replay pipeline.
    assert (rows["hybrid"]["confirmed_witnesses"]
            == rows["hybrid"]["witnesses"])

    hybrid = reports["hybrid"]
    data = {
        "test": TEST,
        "agents": [AGENT_A, AGENT_B],
        "budget": BUDGET,
        "seed": SEED,
        "modes": rows,
        "hybrid": {
            "clusters_per_minute": rows["hybrid"]["clusters_per_minute"],
            "coverage_units": rows["hybrid"]["coverage_units"],
            "stage_breakdown": {
                name: stage.as_dict()
                for name, stage in hybrid.stats.stages.items()
            },
            "seed_pool": hybrid.stats.seed_pool,
            "concolic": hybrid.stats.concolic,
        },
        "advantage": {
            "clusters_vs_fuzz": (rows["hybrid"]["clusters"]
                                 - rows["fuzz"]["clusters"]),
            "clusters_vs_symbex": (rows["hybrid"]["clusters"]
                                   - rows["symbex"]["clusters"]),
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print("\nwrote %s" % os.path.abspath(BENCH_PATH))
