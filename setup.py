"""Setuptools shim: metadata lives in pyproject.toml.

Kept so that ``pip install -e . --no-use-pep517`` works on environments whose
setuptools predates PEP 660 editable wheels (no ``wheel`` package available).
"""
from setuptools import setup

setup()
