"""Tests of the fault-tolerant campaign runtime and the injection harness.

Covers the acceptance scenario of the robustness work: a campaign with a
planted hanging agent and a planted crashing agent finishes within the
``cell_timeout x retries`` envelope, reports structured ``JobFailure``
records for exactly the faulty cells, and a ``--resume`` run converges
to the same inconsistency set as an uninterrupted campaign.
"""

import json
import os
import random
import time

import pytest

from repro.core.campaign import (
    Campaign,
    EXIT_CRASHED,
    EXIT_FAILURES,
    EXIT_OK,
)
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.corpus import WitnessCorpus
from repro.core.jobs import CampaignJob, JobSupervisor, RetryPolicy
from repro.errors import CheckpointError
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_point,
    installed_fault_plan,
    load_fault_plan,
)


# ---------------------------------------------------------------------------
# Fault harness
# ---------------------------------------------------------------------------

def test_fault_plan_fires_at_exact_hit_indices():
    plan = FaultPlan([FaultSpec(site="s", kind="raise", hits=(2,))])
    with installed_fault_plan(plan):
        fault_point("s")  # hit 1: no effect
        with pytest.raises(InjectedFault):
            fault_point("s")  # hit 2: fires
        fault_point("s")  # hit 3: no effect again
    assert plan.fired == [("s", "", "raise", 2)]
    # Context matching is substring-based; a non-matching context does not
    # advance the counter of the matched spec.
    plan2 = FaultPlan([FaultSpec(site="s", kind="raise", match="ovs", hits=(1,))])
    with installed_fault_plan(plan2):
        fault_point("s", "reference:concrete")
        with pytest.raises(InjectedFault):
            fault_point("s", "ovs:concrete")


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan([
        FaultSpec(site="phase1", kind="hang", match="ovs", hits=(1, 2),
                  duration=9.0),
        FaultSpec(site="corpus.save", kind="corrupt"),
    ], seed=7)
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    loaded = load_fault_plan(str(path))
    assert [s.to_dict() for s in loaded.specs] == [s.to_dict() for s in plan.specs]
    assert loaded.seed == 7
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        load_fault_plan(str(bad))
    with pytest.raises(ValueError):
        FaultSpec(site="s", kind="explode")


def test_fault_plan_corrupt_directive_is_returned_not_raised():
    plan = FaultPlan([FaultSpec(site="corpus.save", kind="corrupt")])
    with installed_fault_plan(plan):
        assert fault_point("corpus.save", "/tmp/x.json") == "corrupt"
        assert fault_point("corpus.save", "/tmp/x.json") is None  # hit 2
    assert fault_point("corpus.save") is None  # no plan installed


# ---------------------------------------------------------------------------
# Retry policy and supervisor
# ---------------------------------------------------------------------------

def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(retries=5, backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=0.5, jitter=0.0)
    delays = [policy.delay(attempt, random.Random(0)) for attempt in (1, 2, 3, 4)]
    assert delays == [0.1, 0.2, 0.4, 0.5]  # capped at backoff_max
    jittered = RetryPolicy(jitter=0.5).delay(1, random.Random(0))
    assert 0.05 <= jittered <= 0.075
    assert policy.max_attempts == 6


def test_supervisor_retries_flaky_job_then_succeeds():
    failures = {"left": 1}

    def flaky():
        if failures["left"]:
            failures["left"] -= 1
            raise RuntimeError("transient")
        return "value"

    supervisor = JobSupervisor(retry=RetryPolicy(retries=2, backoff_base=0.001,
                                                 jitter=0.0))
    job = CampaignJob(kind="phase1", key=("phase1", "x"), thread_fn=flaky)
    results = supervisor.run([job])
    assert results[0].state == "ok" and results[0].value == "value"
    assert job.attempts == 2


def test_supervisor_abandons_hanging_job_at_deadline():
    def hang():
        time.sleep(30.0)

    supervisor = JobSupervisor(cell_timeout=0.2,
                               retry=RetryPolicy(retries=0, jitter=0.0))
    started = time.monotonic()
    results = supervisor.run([
        CampaignJob(kind="phase1", key=("phase1", "hung"), thread_fn=hang),
        CampaignJob(kind="phase1", key=("phase1", "fine"), thread_fn=lambda: 1),
    ])
    wall = time.monotonic() - started
    assert wall < 5.0  # did NOT wait the 30s out
    assert results[0].state == "timed_out"
    assert results[0].failure.error_type == "CellTimeoutError"
    assert results[1].state == "ok"
    assert supervisor.abandoned_attempts == 1


def test_supervisor_commits_results_on_caller_thread():
    import threading

    seen = []
    supervisor = JobSupervisor()
    supervisor.run([CampaignJob(kind="pair", key=("pair", "x"),
                                thread_fn=lambda: 41)],
                   on_result=lambda r: seen.append(threading.current_thread()))
    assert seen == [threading.main_thread()]


# ---------------------------------------------------------------------------
# Campaign-level fault tolerance (the acceptance scenario)
# ---------------------------------------------------------------------------

def test_campaign_hanging_agent_is_killed_at_deadline():
    plan = FaultPlan([FaultSpec(site="phase1", kind="hang",
                                match="ovs:concrete", hits=(1, 2),
                                duration=60.0)])
    campaign = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                        replay_testcases=False, triage=False,
                        cell_timeout=1.0, retries=1, fault_plan=plan)
    started = time.monotonic()
    report = campaign.run()
    wall = time.monotonic() - started
    # Both attempts abandoned at the 1s deadline; generous slack for CI.
    assert wall < 1.0 * 2 + 8.0
    assert report.exit_code == EXIT_FAILURES
    assert report.job_states.get("timed_out") == 1
    cells = {f.cell: f for f in report.job_failures}
    assert cells["phase1/ovs/concrete/small"].state == "timed_out"
    assert cells["phase1/ovs/concrete/small"].attempts == 2
    # The dependent pair is skipped, not hung.
    assert cells["pair/concrete/small/reference/ovs"].state == "skipped"
    # The healthy agent's cell is untouched.
    assert report.job_states.get("ok") == 1


def test_campaign_crashing_agent_retries_then_fails_with_traceback():
    plan = FaultPlan([FaultSpec(site="phase1", kind="raise",
                                match="ovs:concrete", hits=(1, 2))])
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                      replay_testcases=False, triage=False,
                      retries=1, fault_plan=plan).run()
    assert report.exit_code == EXIT_FAILURES
    failure = next(f for f in report.job_failures if f.state == "failed")
    assert failure.cell == "phase1/ovs/concrete/small"
    assert failure.attempts == 2
    assert failure.error_type == "InjectedFault"
    assert "InjectedFault" in failure.traceback


def test_campaign_crashing_agent_recovers_within_retry_budget():
    plan = FaultPlan([FaultSpec(site="phase1", kind="raise",
                                match="ovs:concrete", hits=(1,))])
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                      replay_testcases=False, triage=False,
                      retries=1, fault_plan=plan).run()
    assert report.exit_code == EXIT_OK
    assert report.job_failures == []
    assert report.pair_count == 1
    assert plan.fired  # the fault really did fire on attempt 1


def test_campaign_in_process_worker_kill_is_isolated():
    # In thread mode a "kill" cannot take the interpreter down; it surfaces
    # as WorkerCrashError and the cell terminalizes as crashed (exit 3).
    plan = FaultPlan([FaultSpec(site="phase1", kind="kill",
                                match="ovs:concrete", hits=(1, 2))])
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                      replay_testcases=False, triage=False,
                      retries=1, fault_plan=plan).run()
    assert report.exit_code == EXIT_CRASHED
    failure = next(f for f in report.job_failures if f.state == "crashed")
    assert failure.error_type == "WorkerCrashError"


def test_campaign_process_pool_kill_rebuilds_then_degrades():
    # Counters restart in every worker process, so hits=(1,) kills every
    # process attempt: the pool breaks, is rebuilt max_pool_rebuilds times,
    # then the remaining cells degrade to threads where the same spec
    # consumes one retry (WorkerCrashError) and the rerun succeeds.
    plan = FaultPlan([FaultSpec(site="phase1", kind="kill",
                                match="ovs:stats_request", hits=(1,))])
    report = Campaign(tests=["stats_request"], agents=["reference", "ovs"],
                      workers=2, executor="process",
                      replay_testcases=False, triage=False,
                      retries=2, fault_plan=plan).run()
    assert report.exit_code == EXIT_OK
    assert report.job_states.get("ok") == 3
    kinds = {event.get("kind") for event in report.executor_degraded}
    assert "process-pool-broken" in kinds


# ---------------------------------------------------------------------------
# Checkpointing and resume
# ---------------------------------------------------------------------------

def _pair_signature(report):
    return sorted((r.test_key, r.agent_a, r.agent_b, r.inconsistency_count,
                   r.grouped_a.distinct_output_count,
                   r.grouped_b.distinct_output_count)
                  for r in report.reports)


def test_campaign_resume_converges_to_uninterrupted_result(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    plan = FaultPlan([FaultSpec(site="phase1", kind="raise",
                                match="ovs:set_config", hits=(1, 2))])
    crashed = Campaign(tests=["concrete", "set_config"],
                       agents=["reference", "ovs"],
                       replay_testcases=False, triage=False,
                       retries=1, checkpoint_dir=ckpt, fault_plan=plan).run()
    assert crashed.exit_code == EXIT_FAILURES
    assert crashed.job_states.get("failed") == 1
    assert crashed.job_states.get("skipped") == 1

    # Resume without the fault plan: only the failed cell and its dependent
    # pair are re-run; everything else is restored from the checkpoint.
    resumed = Campaign(tests=["concrete", "set_config"],
                       agents=["reference", "ovs"],
                       replay_testcases=False, triage=False,
                       checkpoint_dir=ckpt, resume=True).run()
    assert resumed.exit_code == EXIT_OK
    assert resumed.resumed_cells == 4  # 3 ok phase1 cells + 1 ok pair
    assert resumed.explorations_run == 1

    fresh = Campaign(tests=["concrete", "set_config"],
                     agents=["reference", "ovs"],
                     replay_testcases=False, triage=False).run()
    assert _pair_signature(resumed) == _pair_signature(fresh)
    assert resumed.total_inconsistencies == fresh.total_inconsistencies


def test_campaign_resume_of_complete_run_does_no_work(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    first = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                     replay_testcases=False, triage=False,
                     checkpoint_dir=ckpt).run()
    assert first.exit_code == EXIT_OK
    again = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                     replay_testcases=False, triage=False,
                     checkpoint_dir=ckpt, resume=True).run()
    assert again.explorations_run == 0
    assert again.resumed_cells == 3
    assert _pair_signature(again) == _pair_signature(first)


def test_checkpoint_refuses_mismatched_fingerprint(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    Campaign(tests=["concrete"], agents=["reference", "ovs"],
             replay_testcases=False, triage=False,
             checkpoint_dir=ckpt).run()
    with pytest.raises(CheckpointError):
        Campaign(tests=["set_config"], agents=["reference", "ovs"],
                 replay_testcases=False, triage=False,
                 checkpoint_dir=ckpt, resume=True).run()
    # A fresh (non-resume) run refuses to silently clobber existing records.
    with pytest.raises(CheckpointError):
        Campaign(tests=["concrete"], agents=["reference", "ovs"],
                 replay_testcases=False, triage=False,
                 checkpoint_dir=ckpt).run()


def test_checkpoint_journal_tolerates_truncated_tail(tmp_path):
    directory = str(tmp_path / "ckpt")
    checkpoint = CampaignCheckpoint(directory)
    checkpoint.open(fingerprint={"k": 1}, resume=False)
    checkpoint.append({"cell": ["phase1", "a"], "state": "ok"})
    checkpoint.append({"cell": ["phase1", "b"], "state": "ok"})
    with open(os.path.join(directory, "jobs.jsonl"), "a") as handle:
        handle.write('{"cell": ["phase1", "c"], "sta')  # killed mid-append
    assert set(checkpoint.completed_cells()) == {("phase1", "a"), ("phase1", "b")}


# ---------------------------------------------------------------------------
# Corpus corruption tolerance
# ---------------------------------------------------------------------------

def test_corpus_run_records_corrupt_bundle_and_continues(tmp_path):
    corpus = WitnessCorpus(str(tmp_path / "corpus"))
    garbage = os.path.join(corpus.directory, "zzz-broken.witness.json")
    with open(garbage, "w") as handle:
        handle.write('{"format": "soft/witness-bundle/v1", "tr')
    report = corpus.run()
    assert report.replayed == 1
    assert not report.ok
    assert [entry.status for entry in report.entries] == ["corrupt"]
    assert report.to_dict()["corrupt"] == 1
    assert "corrupt" in report.describe()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_resume_requires_checkpoint(capsys):
    from repro.cli.main import main as cli_main

    code = cli_main(["campaign", "--resume"])
    assert code == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_cli_rejects_malformed_fault_plan(tmp_path, capsys):
    from repro.cli.main import main as cli_main

    bad = tmp_path / "plan.json"
    bad.write_text("{broken")
    code = cli_main(["campaign", "--tests", "concrete",
                     "--agents", "reference,ovs",
                     "--fault-plan", str(bad)])
    assert code == 2
    assert "fault plan" in capsys.readouterr().err


def test_cli_campaign_reports_failures_and_degradation(tmp_path, capsys):
    from repro.cli.main import main as cli_main

    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps(FaultPlan([
        FaultSpec(site="phase1", kind="raise", match="ovs:concrete",
                  hits=(1, 2))]).to_dict()))
    out = tmp_path / "report.json"
    code = cli_main(["campaign", "--tests", "concrete",
                     "--agents", "reference,ovs", "--no-triage",
                     "--retries", "1", "--fault-plan", str(plan),
                     "--json", str(out), "--quiet"])
    assert code == 1
    data = json.loads(out.read_text())
    assert data["exit_code"] == 1
    states = {f["state"] for f in data["job_failures"]}
    assert states == {"failed", "skipped"}

    # The "concrete" spec is closure-built and unpicklable, so asking for
    # the process executor degrades every Phase-1 cell to threads — which
    # the CLI must announce on stderr rather than hide.
    code = cli_main(["campaign", "--tests", "concrete",
                     "--agents", "reference,ovs", "--no-triage",
                     "--executor", "process", "--workers", "2", "--quiet"])
    assert code == 0
    assert "executor degraded" in capsys.readouterr().err
