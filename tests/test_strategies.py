"""Tests for the strategy/scheduler/oracle exploration stack.

Covers the frontier strategies in isolation, the prefix-feasibility oracle
in isolation, and — the load-bearing property — that every strategy, the
prefix-oracle engine, and the parallel scheduler all produce exactly the
same path-condition set as the legacy rerun-DFS engine on the seed catalog.
"""

import pytest

from repro.core.explorer import explore_agent
from repro.core.tests_catalog import TABLE1_TESTS
from repro.errors import EngineError, SolverError
from repro.symbex.engine import Engine, EngineConfig, PathBudget, explore_parallel
from repro.symbex.expr import bool_not, bvvar
from repro.symbex.solver import PrefixOracle, SolverConfig
from repro.symbex.solver.sat import SATStatus
from repro.symbex.strategies import (
    BFSStrategy,
    CoverageGuidedStrategy,
    DFSStrategy,
    RandomRestartStrategy,
    make_strategy,
    strategy_names,
)

ALL_STRATEGIES = ("dfs", "bfs", "random", "coverage")


# ---------------------------------------------------------------------------
# Strategy frontier unit tests
# ---------------------------------------------------------------------------


def test_dfs_is_lifo_and_bfs_is_fifo():
    prefixes = [(True,), (False,), (True, True)]
    dfs = DFSStrategy()
    bfs = BFSStrategy()
    for prefix in prefixes:
        dfs.push(prefix)
        bfs.push(prefix)
    assert [dfs.pop() for _ in range(3)] == list(reversed(prefixes))
    assert [bfs.pop() for _ in range(3)] == prefixes


def test_random_strategy_is_deterministic_per_seed():
    def pop_order(seed):
        strategy = RandomRestartStrategy(seed=seed)
        for index in range(8):
            strategy.push((True,) * index)
        return [strategy.pop() for _ in range(8)]

    assert pop_order(7) == pop_order(7)
    assert pop_order(7) != pop_order(8)  # 8! orderings; collision ~ impossible


def test_strategy_metrics_track_frontier():
    strategy = DFSStrategy()
    strategy.push(())
    strategy.push((True,))
    strategy.pop()
    metrics = strategy.metrics()
    assert metrics["strategy"] == "dfs"
    assert metrics["frontier_pushes"] == 2
    assert metrics["frontier_pops"] == 1
    assert metrics["max_frontier"] == 2


def test_drain_empties_the_frontier_in_pop_order():
    strategy = BFSStrategy()
    pushed = [(index % 2 == 0,) for index in range(6)]
    for prefix in pushed:
        strategy.push(prefix)
    remaining = strategy.drain()
    assert remaining == pushed and len(strategy) == 0


def test_coverage_strategy_reset_clears_novelty_state():
    class FakeRecord:
        def __init__(self, events):
            self.events = events

    strategy = CoverageGuidedStrategy()
    strategy.push(())
    strategy.pop()
    strategy.push(("fork",))
    strategy.on_path_complete(FakeRecord(["seen"]))
    strategy.reset()
    # Regression: reset() used to keep _seen_logs, so a reused engine's
    # second exploration scored every path 0 (silent FIFO degradation).
    strategy.push(())
    strategy.pop()
    strategy.push(("fork2",))
    strategy.on_path_complete(FakeRecord(["seen"]))
    assert strategy.rescores == 1
    assert strategy.metrics()["scored_batches"] == 1


def test_coverage_strategy_prioritizes_novel_paths():
    class FakeRecord:
        def __init__(self, events):
            self.events = events

    strategy = CoverageGuidedStrategy()
    strategy.push(())
    assert strategy.pop() == ()
    # Three completed paths, each forking one prefix: the first two logs are
    # novel (score 1), the middle one is a repeat (score 0).  Novel forks
    # must pop before the stale one, FIFO among themselves.
    strategy.push(("novel-a",))
    strategy.on_path_complete(FakeRecord(["seen"]))  # first sighting: novel
    strategy.push(("stale",))
    strategy.on_path_complete(FakeRecord(["seen"]))  # repeated log: stale
    strategy.push(("novel-b",))
    strategy.on_path_complete(FakeRecord(["fresh"]))  # novel again
    assert [strategy.pop() for _ in range(3)] == [
        ("novel-a",), ("novel-b",), ("stale",)]


def test_pop_empty_frontier_raises():
    with pytest.raises(EngineError):
        DFSStrategy().pop()


def test_make_strategy_rejects_unknown_names():
    with pytest.raises(EngineError):
        make_strategy("dijkstra")
    assert set(ALL_STRATEGIES) == set(strategy_names())


# ---------------------------------------------------------------------------
# PrefixOracle unit tests
# ---------------------------------------------------------------------------


def test_oracle_encodes_each_condition_once():
    oracle = PrefixOracle(SolverConfig())
    x = bvvar("x", 8)
    lit_a = oracle.literal(x == 3)
    lit_b = oracle.literal(x == 3)
    assert lit_a == lit_b
    assert oracle.stats.literals_encoded == 1
    assert oracle.stats.literal_reuses == 1


def test_oracle_prefix_feasibility_and_negation():
    oracle = PrefixOracle(SolverConfig())
    x = bvvar("x", 8)
    lit = oracle.literal(x < 10)
    other = oracle.literal(x > 20)
    assert oracle.check_prefix([lit]) == SATStatus.SAT
    assert oracle.check_prefix([lit, other]) == SATStatus.UNSAT
    # The same literal serves the negated side: x >= 10 and x > 20 is SAT.
    assert oracle.check_prefix([-lit, other]) == SATStatus.SAT


def test_oracle_trivial_contradiction_skips_backend():
    oracle = PrefixOracle(SolverConfig())
    x = bvvar("x", 8)
    lit = oracle.literal(x == 1)
    solves_before = oracle.stats.assumption_solves
    assert oracle.check_prefix([lit, -lit]) == SATStatus.UNSAT
    assert oracle.stats.assumption_solves == solves_before
    assert oracle.stats.trivial_decides >= 1


def test_oracle_prefix_cache_hits():
    oracle = PrefixOracle(SolverConfig())
    x = bvvar("x", 8)
    lits = [oracle.literal(x < 10), oracle.literal(x < 20)]
    assert oracle.check_prefix(lits) == SATStatus.SAT
    hits_before = oracle.stats.prefix_cache_hits
    # Same literal *set* (order and duplicates do not matter).
    assert oracle.check_prefix(list(reversed(lits)) + [lits[0]]) == SATStatus.SAT
    assert oracle.stats.prefix_cache_hits == hits_before + 1


def test_oracle_negated_constraint_matches_bool_not():
    oracle = PrefixOracle(SolverConfig())
    x = bvvar("x", 8)
    condition = x == 5
    lit = oracle.literal(condition)
    # assuming -lit must agree with encoding bool_not(condition) separately
    not_lit = oracle.literal(bool_not(condition))
    assert oracle.check_prefix([-lit, -not_lit]) == SATStatus.UNSAT
    assert oracle.check_prefix([lit, not_lit]) == SATStatus.UNSAT
    assert oracle.check_prefix([-lit, not_lit]) == SATStatus.SAT


# ---------------------------------------------------------------------------
# Engine-level equivalence (synthetic programs)
# ---------------------------------------------------------------------------


def _branchy_program(state):
    x = state.new_symbol("x", 8)
    y = state.new_symbol("y", 8)
    state.assume(x < 40)
    if x == 3:
        state.record_event("eq")
    elif x < 10:
        state.record_event("lt")
    else:
        state.record_event("ge")
    if y == x + 1:
        state.record_event("linked")
    value = state.concretize(y & 1)
    state.record_event(value)


def _path_condition_set(result):
    return frozenset(
        tuple(sorted(constraint.key() for constraint in path.condition.constraints()))
        for path in result.paths
    )


@pytest.fixture(scope="module")
def legacy_result():
    engine = Engine(config=EngineConfig(use_prefix_oracle=False))
    return engine.explore(_branchy_program)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_every_strategy_explores_the_same_path_set(strategy, legacy_result):
    engine = Engine(config=EngineConfig(strategy=strategy))
    result = engine.explore(_branchy_program)
    assert _path_condition_set(result) == _path_condition_set(legacy_result)
    assert result.stats.strategy == strategy
    assert result.strategy_metrics["strategy"] == strategy


def test_oracle_engine_issues_fewer_solver_queries(legacy_result):
    engine = Engine(config=EngineConfig())
    result = engine.explore(_branchy_program)
    assert result.solver_stats["mode"] == "prefix-oracle"
    assert result.stats.solver_queries <= legacy_result.stats.solver_queries
    # Each distinct condition is bit-blasted exactly once.
    assert result.solver_stats["literals_encoded"] < result.solver_stats["branch_checks"]


def test_dfs_oracle_engine_preserves_legacy_path_order(legacy_result):
    result = Engine(config=EngineConfig(strategy="dfs")).explore(_branchy_program)
    legacy_order = [path.decisions for path in legacy_result.paths]
    oracle_order = [path.decisions for path in result.paths]
    assert oracle_order == legacy_order


def test_explore_parallel_matches_sequential(legacy_result):
    result = explore_parallel(lambda index: (_branchy_program, None), workers=3)
    assert _path_condition_set(result) == _path_condition_set(legacy_result)
    assert [path.path_id for path in result.paths] == list(range(result.path_count))


def test_explore_parallel_splits_frontier_across_engines():
    def wide_program(state):
        for index in range(5):
            bit = state.new_symbol("b%d" % index, 1)
            if bit == 1:
                state.record_event(index)

    sequential = Engine(config=EngineConfig()).explore(wide_program)
    parallel = explore_parallel(lambda index: (wide_program, None), workers=4)
    assert parallel.stats.workers > 1
    assert parallel.path_count == sequential.path_count == 32
    assert _path_condition_set(parallel) == _path_condition_set(sequential)
    assert not parallel.stats.truncated and not parallel.frontier


def test_explore_parallel_respects_global_max_paths():
    def wide_program(state):
        for index in range(6):
            bit = state.new_symbol("b%d" % index, 1)
            if bit == 1:
                state.record_event(index)

    config = EngineConfig(max_paths=10)
    result = explore_parallel(lambda index: (wide_program, None), workers=3,
                              config=config)
    assert result.path_count <= 10
    assert result.stats.truncated
    assert result.stats.truncation_reason == "max_paths"
    assert result.frontier  # the unexplored remainder is handed back


def test_path_budget_claims_are_exact():
    budget = PathBudget(3)
    assert [budget.claim() for _ in range(5)] == [True, True, True, False, False]
    assert PathBudget(None).claim()


# ---------------------------------------------------------------------------
# Strategy-vs-legacy equivalence on the seed catalog (acceptance criterion)
# ---------------------------------------------------------------------------


def _report_path_set(report):
    return frozenset(
        tuple(sorted(constraint.key() for constraint in outcome.constraints))
        for outcome in report.outcomes
    )


@pytest.fixture(scope="module")
def legacy_catalog_reports():
    config = EngineConfig(use_prefix_oracle=False)
    return {
        test: explore_agent("reference", test, engine_config=config)
        for test in TABLE1_TESTS
    }


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_strategies_match_legacy_on_seed_catalog(strategy, legacy_catalog_reports):
    for test in TABLE1_TESTS:
        report = explore_agent("reference", test, strategy=strategy)
        assert report.engine_stats["strategy"] == strategy
        assert _report_path_set(report) == _report_path_set(legacy_catalog_reports[test]), (
            "strategy %r diverged from the legacy engine on test %r" % (strategy, test))


def test_parallel_exploration_matches_legacy_on_branchy_test(legacy_catalog_reports):
    report = explore_agent("reference", "packet_out", workers=3)
    assert _report_path_set(report) == _report_path_set(
        legacy_catalog_reports["packet_out"])
    assert report.engine_stats["workers"] >= 1
    assert report.path_count == legacy_catalog_reports["packet_out"].path_count


def test_parallel_exploration_merges_coverage():
    single = explore_agent("reference", "cs_flow_mods", with_coverage=True)
    split = explore_agent("reference", "cs_flow_mods", with_coverage=True, workers=3)
    assert split.coverage is not None
    assert split.coverage.instruction_coverage == pytest.approx(
        single.coverage.instruction_coverage)


# ---------------------------------------------------------------------------
# Review regressions: per-path truncation, discard scoring, per-run stats
# ---------------------------------------------------------------------------


def test_explore_parallel_survives_per_path_decision_limit():
    def deep_first_program(state):
        x = state.new_symbol("x", 8)
        index = 0
        while index < 40 and x != index:
            index += 1
        state.record_event(index)

    config = EngineConfig(max_decisions_per_path=16)
    sequential = Engine(config=config).explore(deep_first_program)
    parallel = explore_parallel(lambda index: (deep_first_program, None),
                                workers=4, config=config)
    # Regression: the first seeded path exceeding max_decisions_per_path used
    # to cancel the sharded phase, silently dropping the rest of the path set.
    assert parallel.path_count == sequential.path_count > 1
    assert _path_condition_set(parallel) == _path_condition_set(sequential)
    assert not parallel.frontier
    assert parallel.stats.truncation_reason == "max_decisions_per_path"


def test_discarded_replays_do_not_inherit_next_path_score():
    class FakeRecord:
        def __init__(self, events):
            self.events = events

    strategy = CoverageGuidedStrategy()
    strategy.push(())
    strategy.pop()
    strategy.push(("from-discard",))
    strategy.on_path_discarded()  # flushed neutrally, before any novelty
    strategy.push(("from-novel",))
    strategy.on_path_complete(FakeRecord(["fresh"]))  # novel: score 1
    assert strategy.pop() == ("from-novel",)
    assert strategy.pop() == ("from-discard",)


def test_engine_notifies_strategy_of_discarded_replays():
    from repro.symbex.engine import active_engine

    notifications = []

    class SpyStrategy(DFSStrategy):
        def on_path_discarded(self):
            notifications.append("discarded")

    def program(state):
        x = state.new_symbol("x", 8)
        if x == 0:
            active_engine().abort_current_path("nope")
        state.record_event("ok")

    result = Engine(strategy=SpyStrategy()).explore(program)
    assert notifications == ["discarded"]
    assert result.stats.discarded_replays == 1
    assert result.path_count == 1


def test_reused_engine_solver_stats_are_per_run_deltas():
    def program(state):
        x = state.new_symbol("x", 8)
        if x == 1:
            state.record_event("one")

    engine = Engine()
    first = engine.explore(program)
    second = engine.explore(program)
    # The first run decides the branch without the prefix cache (interval
    # pre-filter or backend); the second is served entirely by the persistent
    # prefix cache, so every counter in solver_stats must be a per-run delta,
    # not a lifetime total.
    first_decides = (first.solver_stats["assumption_solves"]
                     + first.solver_stats["interval_unsat"]
                     + first.solver_stats["interval_sat"])
    assert first_decides >= 1
    assert second.solver_stats["assumption_solves"] == 0
    assert second.solver_stats["interval_unsat"] == 0
    assert second.solver_stats["interval_sat"] == 0
    assert second.solver_stats["prefix_cache_hits"] >= 1
    assert second.solver_stats["queries"] == second.stats.solver_queries == 0

    legacy = Engine(config=EngineConfig(use_prefix_oracle=False))
    legacy_first = legacy.explore(program)
    legacy_second = legacy.explore(program)
    assert legacy_second.solver_stats["queries"] == legacy_first.solver_stats["queries"]


def test_forkless_paths_still_consume_their_novelty():
    class FakeRecord:
        def __init__(self, events):
            self.events = events

    strategy = CoverageGuidedStrategy()
    # A fork-less leaf path sees log "leaf": nothing to score, but the log
    # must enter the seen-set so a later identical log is not called novel.
    strategy.on_path_complete(FakeRecord(["leaf"]))
    strategy.push(("stale",))
    strategy.on_path_complete(FakeRecord(["leaf"]))  # repeat: score 0
    strategy.push(("novel",))
    strategy.on_path_complete(FakeRecord(["new"]))  # genuinely new: score 1
    assert strategy.pop() == ("novel",)
    assert strategy.pop() == ("stale",)
