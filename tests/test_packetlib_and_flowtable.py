"""Tests for the packet library, flow-key extraction and the flow table."""

import pytest
from hypothesis import given, strategies as st

from repro.agents.common.buffers import PacketBufferPool
from repro.agents.common.flowtable import (
    FlowEntry,
    FlowTable,
    match_covers_key,
    match_is_exact,
    match_subsumes,
)
from repro.agents.common.ports import SwitchPortSet
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.packetlib.builder import (
    build_arp_packet,
    build_ethernet_frame,
    build_tcp_packet,
    build_udp_packet,
    build_vlan_tcp_packet,
)
from repro.packetlib.flowkey import FlowKey, extract_flow_key
from repro.packetlib.headers import EthernetHeader, Ipv4Header, TcpHeader


# ---------------------------------------------------------------------------
# Packet builders and flow-key extraction
# ---------------------------------------------------------------------------

def test_tcp_packet_flow_key():
    frame = build_tcp_packet(nw_src=0x0A000001, nw_dst=0x0A000002, tp_src=1111, tp_dst=80)
    key = extract_flow_key(frame, in_port=5)
    assert key.in_port == 5
    assert key.dl_type == c.ETH_TYPE_IP
    assert key.nw_proto == c.IPPROTO_TCP
    assert key.nw_src == 0x0A000001 and key.nw_dst == 0x0A000002
    assert key.tp_src == 1111 and key.tp_dst == 80
    assert key.dl_vlan == c.OFP_VLAN_NONE


def test_udp_and_arp_flow_keys():
    udp_key = extract_flow_key(build_udp_packet(tp_src=53, tp_dst=5353), 1)
    assert udp_key.nw_proto == c.IPPROTO_UDP and udp_key.tp_src == 53
    arp_key = extract_flow_key(build_arp_packet(opcode=2), 2)
    assert arp_key.dl_type == c.ETH_TYPE_ARP and arp_key.nw_proto == 2


def test_vlan_packet_flow_key():
    frame = build_vlan_tcp_packet(vid=100, pcp=3)
    key = extract_flow_key(frame, 1)
    assert key.dl_vlan == 100
    assert key.dl_vlan_pcp == 3
    assert key.dl_type == c.ETH_TYPE_IP
    assert key.nw_proto == c.IPPROTO_TCP


def test_plain_ethernet_flow_key():
    frame = build_ethernet_frame(dl_type=0x88B5)
    key = extract_flow_key(frame, 7)
    assert key.dl_type == 0x88B5
    assert key.nw_proto == 0 and key.tp_src == 0


def test_header_roundtrips():
    eth = EthernetHeader(dl_dst=0x010203040506, dl_src=0x0A0B0C0D0E0F, dl_type=0x0800)
    assert EthernetHeader.unpack(eth.pack()).dl_src == 0x0A0B0C0D0E0F
    ip = Ipv4Header(tos=0x10, total_length=40, protocol=6, src=1, dst=2)
    parsed_ip = Ipv4Header.unpack(ip.pack(), 0)
    assert parsed_ip.tos == 0x10 and parsed_ip.src == 1 and parsed_ip.dst == 2
    tcp = TcpHeader(src_port=10, dst_port=20)
    parsed_tcp = TcpHeader.unpack(tcp.pack(), 0)
    assert parsed_tcp.src_port == 10 and parsed_tcp.dst_port == 20


def test_extract_flow_key_rejects_short_frame():
    from repro.errors import PacketParseError
    from repro.wire.buffer import SymBuffer

    with pytest.raises(PacketParseError):
        extract_flow_key(SymBuffer(b"\x00" * 4), 1)


def test_flow_key_describe_normalizes_symbolic_fields():
    from repro.symbex.expr import bvvar

    key = FlowKey(in_port=1, tp_src=bvvar("s", 16))
    assert "tp_src=*" in key.describe()
    assert "in_port=1" in key.describe()


# ---------------------------------------------------------------------------
# Flow table matching
# ---------------------------------------------------------------------------

def _probe_key(tp_dst=80, in_port=1):
    return extract_flow_key(build_tcp_packet(tp_dst=tp_dst), in_port)


def test_wildcard_all_matches_everything():
    assert match_covers_key(Match.wildcard_all(), _probe_key())
    assert match_covers_key(Match.wildcard_all(), extract_flow_key(build_arp_packet(), 9))


def test_exact_match_requires_all_fields():
    match = Match.exact_tcp(in_port=1, dl_src=0x00163E000001, dl_dst=0x00163E000002,
                            nw_src=0x0A000001, nw_dst=0x0A000002, tp_src=1234, tp_dst=80)
    assert match_covers_key(match, _probe_key(tp_dst=80))
    assert not match_covers_key(match, _probe_key(tp_dst=81))
    assert not match_covers_key(match, _probe_key(in_port=2))
    assert match_is_exact(match)
    assert not match_is_exact(Match.wildcard_all())


def test_partial_wildcard_match():
    match = Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_TP_DST, tp_dst=80)
    assert match_covers_key(match, _probe_key(tp_dst=80))
    assert not match_covers_key(match, _probe_key(tp_dst=8080))


def test_nw_prefix_wildcard_match():
    wildcards = (c.OFPFW_ALL & ~c.OFPFW_NW_SRC_MASK) | (8 << c.OFPFW_NW_SRC_SHIFT)
    match = Match(wildcards=wildcards, nw_src=0x0A000000)
    key_same_net = extract_flow_key(build_tcp_packet(nw_src=0x0A0000FE), 1)
    key_other_net = extract_flow_key(build_tcp_packet(nw_src=0x0B0000FE), 1)
    assert match_covers_key(match, key_same_net)
    assert not match_covers_key(match, key_other_net)


def test_match_subsumes_relation():
    everything = Match.wildcard_all()
    specific = Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_TP_DST, tp_dst=80)
    assert match_subsumes(everything, specific)
    assert not match_subsumes(specific, everything)
    assert match_subsumes(specific, specific)


def test_flow_table_lookup_priorities():
    table = FlowTable()
    low = FlowEntry(match=Match.wildcard_all(), priority=1,
                    actions=[ActionOutput(port=10)])
    high = FlowEntry(match=Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_TP_DST, tp_dst=80),
                     priority=100, actions=[ActionOutput(port=20)])
    table.add(low)
    table.add(high)
    hit = table.lookup(_probe_key(tp_dst=80))
    assert hit is high
    miss_dst = table.lookup(_probe_key(tp_dst=22))
    assert miss_dst is low


def test_flow_table_exact_match_beats_wildcards():
    table = FlowTable()
    wildcard = FlowEntry(match=Match.wildcard_all(), priority=0xFFFF,
                         actions=[ActionOutput(port=1)])
    exact = FlowEntry(match=Match.exact_tcp(in_port=1, dl_src=0x00163E000001,
                                            dl_dst=0x00163E000002, nw_src=0x0A000001,
                                            nw_dst=0x0A000002, tp_src=1234, tp_dst=80),
                      priority=1, actions=[ActionOutput(port=2)])
    table.add(wildcard)
    table.add(exact)
    assert table.lookup(_probe_key(tp_dst=80)) is exact


def test_flow_table_strict_and_nonstrict_selection():
    table = FlowTable()
    entry = FlowEntry(match=Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_TP_DST, tp_dst=80),
                      priority=5, actions=[ActionOutput(port=2)])
    table.add(entry)
    strict_hit = table.matching_entries(entry.match, strict=True, priority=5)
    strict_miss = table.matching_entries(entry.match, strict=True, priority=6)
    loose_hit = table.matching_entries(Match.wildcard_all(), strict=False)
    assert strict_hit == [entry]
    assert strict_miss == []
    assert loose_hit == [entry]


def test_flow_table_out_port_filter():
    table = FlowTable()
    to_two = FlowEntry(match=Match.wildcard_all(), priority=1, actions=[ActionOutput(port=2)])
    to_three = FlowEntry(match=Match.wildcard_all(), priority=1, actions=[ActionOutput(port=3)])
    table.add(to_two)
    table.add(to_three)
    selected = table.matching_entries(Match.wildcard_all(), strict=False, out_port=3)
    assert selected == [to_three]


def test_flow_table_emergency_entries_are_separate():
    table = FlowTable()
    normal = FlowEntry(match=Match.wildcard_all(), priority=1, actions=[])
    emergency = FlowEntry(match=Match.wildcard_all(), priority=1, actions=[], emergency=True)
    table.add(normal)
    table.add(emergency)
    assert len(table.entries()) == 1
    assert len(table.entries(include_emergency=True)) == 2
    assert len(table) == 2
    table.remove(emergency)
    assert len(table) == 1


def test_flow_table_capacity():
    table = FlowTable(capacity=2)
    table.add(FlowEntry(match=Match.wildcard_all(), priority=1, actions=[]))
    assert not table.is_full
    table.add(FlowEntry(match=Match.wildcard_all(), priority=2, actions=[]))
    assert table.is_full


@given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=0xFFFF))
def test_prop_wildcarded_field_never_blocks_match(tp_dst_entry, tp_dst_probe):
    match = Match(wildcards=c.OFPFW_ALL, tp_dst=tp_dst_entry)
    assert match_covers_key(match, _probe_key(tp_dst=tp_dst_probe))


@given(st.integers(min_value=1, max_value=64))
def test_prop_port_set_membership(count):
    ports = SwitchPortSet(count=count)
    assert ports.contains(1)
    assert ports.contains(count)
    assert not ports.contains(count + 1)
    assert not ports.contains(0)
    assert len(ports.phy_ports()) == count


def test_buffer_pool_store_and_find():
    pool = PacketBufferPool(capacity=4)
    frame = build_tcp_packet()
    buffer_id = pool.store(frame)
    assert pool.find(buffer_id) is frame
    assert pool.find(9999) is None
    assert pool.retrieve(buffer_id) is frame
    assert pool.retrieve(buffer_id) is None
