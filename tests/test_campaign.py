"""Tests of the Campaign API: cache, pair matrix, workers, reporting, CLI."""

import json

import pytest

import repro.core.campaign as campaign_module
from repro.cli.main import build_parser, main as cli_main
from repro.core.campaign import Campaign, CampaignReport, ExplorationCache
from repro.core.soft import SOFT, SoftReport
from repro.core.tests_catalog import TABLE1_TESTS, get_test
from repro.errors import CampaignError


@pytest.fixture
def counting_explorer(monkeypatch):
    """Replace campaign-side explore_agent with a call-recording wrapper."""

    calls = []
    original = campaign_module.explore_agent

    def recorder(agent, spec, **kwargs):
        calls.append((agent if isinstance(agent, str) else "factory", spec.key))
        return original(agent, spec, **kwargs)

    monkeypatch.setattr(campaign_module, "explore_agent", recorder)
    return calls


# ---------------------------------------------------------------------------
# Exploration cache
# ---------------------------------------------------------------------------

def test_all_pairs_campaign_explores_each_agent_test_once(counting_explorer):
    report = (Campaign()
              .with_tests("set_config", "concrete")
              .with_agents("reference", "ovs", "modified")
              .run())
    # 3 agents x 2 tests = 6 explorations, NOT 2 per pair (12).
    assert sorted(counting_explorer) == sorted(
        (agent, test)
        for agent in ("reference", "ovs", "modified")
        for test in ("set_config", "concrete"))
    # All 3 pairs per test were still crosschecked.
    assert report.pair_count == 6
    assert report.explorations_run == 6
    # 12 retrievals over 6 entries: 6 explorations saved vs the per-pair API.
    assert report.cache_hits == 6
    assert {(r.agent_a, r.agent_b) for r in report.reports} == {
        ("reference", "ovs"), ("reference", "modified"), ("ovs", "modified")}


def test_campaign_workers_match_serial_results(counting_explorer):
    serial = Campaign(tests=["set_config"], agents=["reference", "ovs", "modified"]).run()
    threaded = (Campaign(tests=["set_config"], agents=["reference", "ovs", "modified"])
                .with_workers(4).run())
    assert len(counting_explorer) == 6  # 3 per campaign, cache is per-campaign
    assert serial.total_queries == threaded.total_queries
    assert serial.total_inconsistencies == threaded.total_inconsistencies
    for report in threaded.reports:
        twin = serial.report_for(report.test_key, report.agent_a, report.agent_b)
        assert twin is not None
        assert twin.inconsistency_count == report.inconsistency_count


def test_exploration_cache_direct_use():
    from repro.core.explorer import explore_agent

    cache = ExplorationCache()
    spec = get_test("concrete")
    assert not cache.contains("reference", spec)
    cache.seed(explore_agent("reference", spec), spec)
    assert cache.contains("reference", spec)
    entry = cache.get("reference", spec)
    assert entry.report.agent_name == "reference"
    assert cache.hits == 0  # first retrieval is not a saving
    cache.get("reference", spec)
    assert cache.hits == 1
    with pytest.raises(CampaignError):
        cache.get("ovs", spec)


# ---------------------------------------------------------------------------
# Configuration and validation
# ---------------------------------------------------------------------------

def test_campaign_tests_all_expands_to_catalog():
    campaign = Campaign().with_tests("all").with_agents("reference", "ovs")
    assert [spec.key for spec in campaign._resolve_tests()] == list(TABLE1_TESTS)


def test_campaign_explicit_pairs_override_all_pairs():
    report = (Campaign()
              .with_tests("concrete")
              .with_pairs(("reference", "ovs"), ("ovs", "modified"))
              .run())
    assert report.pair_count == 2
    assert {(r.agent_a, r.agent_b) for r in report.reports} == {
        ("reference", "ovs"), ("ovs", "modified")}


def test_campaign_explicit_pairs_skip_unpaired_agents(counting_explorer):
    (Campaign()
     .with_tests("concrete")
     .with_agents("reference", "ovs", "modified")
     .with_pairs(("reference", "ovs"))
     .run())
    # 'modified' appears in no pair, so it must not be explored at all.
    assert sorted(counting_explorer) == [("ovs", "concrete"), ("reference", "concrete")]


def test_campaign_validation_errors():
    with pytest.raises(CampaignError):
        Campaign(agents=["reference", "ovs"]).run()  # no tests
    with pytest.raises(CampaignError):
        Campaign(tests=["concrete"], agents=["reference"]).run()  # < 2 agents
    with pytest.raises(CampaignError):
        Campaign(executor="fork")
    with pytest.raises(CampaignError):
        Campaign().with_pairs(("reference",))  # malformed pair
    with pytest.raises(CampaignError):
        # Unknown agent without a seeded artifact.
        Campaign(tests=["concrete"], agents=["reference", "no_such_agent"]).run()


def test_soft_run_is_thin_campaign_wrapper():
    report = SOFT(replay_testcases=False).run("concrete", "reference", "ovs")
    assert isinstance(report, SoftReport)
    assert (report.test_key, report.agent_a, report.agent_b) == ("concrete", "reference", "ovs")
    many = SOFT(replay_testcases=False).run_many(["concrete", "set_config"], "reference", "ovs")
    assert set(many) == {"concrete", "set_config"}


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def test_campaign_report_json_and_summary_consistency():
    report = (Campaign()
              .with_tests("set_config")
              .with_agents("reference", "modified")
              .run())
    data = json.loads(report.to_json())
    assert data["format"] == "soft/campaign-report/v1"
    assert data["totals"]["inconsistencies"] == report.total_inconsistencies >= 1
    assert data["totals"]["solver_queries"] == report.total_queries
    assert data["totals"]["replay_verified"] == report.total_replay_verified
    row = data["pair_reports"][0]
    pair_report = report.reports[0]
    # JSON rows, the CLI table and describe() all come from summary_row().
    assert row["inconsistencies"] == pair_report.inconsistency_count
    assert row["solver_queries"] == pair_report.crosscheck.queries
    assert row["replay_verified"] == pair_report.verified_inconsistency_count()
    assert len(row["inconsistencies_detail"]) == row["inconsistencies"]
    described = report.describe()
    assert "set_config" in described and "reference vs modified" in described


def test_soft_report_summary_row_matches_describe():
    report = SOFT(replay_testcases=False).run("set_config", "reference", "ovs")
    row = report.summary_row()
    assert row["solver_queries"] == report.crosscheck.queries
    assert row["replay_verified"] == report.verified_inconsistency_count()
    assert "solver queries: %d" % row["solver_queries"] in report.describe()


def test_campaign_process_executor_uses_actual_spec():
    from repro.core.tests_catalog import TestSpec, get_test

    # A customized (but picklable) spec must be explored as-is, never
    # silently swapped for its catalog namesake.
    base = get_test("stats_request")
    custom = TestSpec(key="stats_request", title=base.title,
                      description="customized", inputs=base.inputs,
                      message_count=base.message_count, scale=base.scale)
    report = Campaign(tests=[custom], agents=["reference", "ovs"],
                      workers=2, executor="process", replay_testcases=False).run()
    assert report.explorations_run == 2
    assert report.reports[0].inconsistency_count >= 1
    # Closure-built specs (the "concrete" catalog test) don't pickle and must
    # transparently fall back to the parent instead of failing.
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                      workers=2, executor="process").run()
    assert report.explorations_run == 2


def test_campaign_rerun_reports_per_run_cache_stats():
    campaign = Campaign(tests=["concrete"], agents=["reference", "ovs"])
    first = campaign.run()
    assert first.cache_hits == 0  # single pair: each entry retrieved once
    second = campaign.run()
    # Second run re-reads both cached entries: 2 savings, not cumulative 3.
    assert second.explorations_run == 0
    assert second.cache_hits == 2


def test_campaign_reset_intern_starts_fresh_generation():
    campaign = Campaign(tests=["concrete"], agents=["reference", "ovs"],
                        reset_intern=True)
    first = campaign.run()
    assert first.intern_stats["reset"] is True
    assert first.intern_stats["distinct_terms"] > 0
    engines_after_first = campaign.encodings.engine_count
    assert engines_after_first >= 1
    second = campaign.run()
    # A reset run drops explored Phase-1 entries and the per-test incremental
    # engines: everything is rebuilt against the new intern generation
    # instead of re-encoding into the old engines forever.
    assert second.explorations_run == 2
    assert second.cache_hits == 0
    assert second.total_inconsistencies == first.total_inconsistencies
    assert campaign.encodings.engine_count == engines_after_first


def test_campaign_default_run_reports_intern_stats():
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"]).run()
    stats = report.intern_stats
    assert stats["reset"] is False
    assert stats["distinct_terms"] > 0 and stats["memory_bytes"] > 0
    assert "intern_stats" in report.to_dict()


def test_campaign_reports_unused_loaded_artifacts():
    from repro.core.explorer import explore_agent

    campaign = (Campaign()
                .with_tests("concrete")
                .with_pairs(("reference", "ovs")))
    campaign.add_artifact(explore_agent("modified", "concrete"))
    report = campaign.run()
    assert report.unused_loaded_agents == ["modified"]
    assert "matched no pair" in report.describe()
    assert json.loads(report.to_json())["unused_loaded_agents"] == ["modified"]


def test_campaign_report_for_is_order_insensitive():
    report = Campaign(tests=["concrete"], agents=["reference", "ovs"]).run()
    assert report.report_for("concrete", "ovs", "reference") is not None
    assert report.report_for("concrete", "reference", "modified") is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_campaign_argument_parsing():
    parser = build_parser()
    args = parser.parse_args([
        "campaign", "--tests", "all", "--agents", "reference,ovs,modified",
        "--workers", "4", "--json", "out.json"])
    assert args.command == "campaign"
    assert args.tests == "all"
    assert args.agents == "reference,ovs,modified"
    assert args.workers == 4
    assert args.json_out == "out.json"
    args = parser.parse_args(["campaign", "--pairs", "reference:ovs", "--executor", "process"])
    assert args.pairs == "reference:ovs"
    assert args.executor == "process"
    with pytest.raises(SystemExit):
        parser.parse_args(["campaign", "--executor", "bogus"])


def test_cli_campaign_runs_and_emits_json(capsys, tmp_path):
    out = tmp_path / "report.json"
    code = cli_main(["campaign", "--tests", "set_config,concrete",
                     "--agents", "reference,ovs", "--workers", "2",
                     "--json", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "campaign: 2 test(s) x 2 agent(s)" in printed
    data = json.loads(out.read_text())
    assert {row["test"] for row in data["pair_reports"]} == {"set_config", "concrete"}
    for row in data["pair_reports"]:
        assert isinstance(row["inconsistencies"], int)


def test_cli_campaign_json_to_stdout(capsys):
    code = cli_main(["campaign", "--tests", "concrete", "--agents", "reference,ovs",
                     "--quiet", "--json", "-"])
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["tests"] == ["concrete"]


def test_cli_campaign_rejects_bad_pairs(capsys):
    assert cli_main(["campaign", "--tests", "concrete", "--pairs", "reference"]) == 2
    assert "agentA:agentB" in capsys.readouterr().err


def test_cli_campaign_errors_cleanly_without_agents(capsys):
    assert cli_main(["campaign", "--tests", "concrete"]) == 2
    assert "at least two agents" in capsys.readouterr().err
