"""Solver backends: protocol, cancellation cleanliness, portfolio, and the
seed-catalog differential sweep.

The sweep is the load-bearing test of the backend refactor: every registered
backend (and both portfolio configurations) must return the same SAT/UNSAT
verdicts as the reference CDCL backend on real path conditions from every
(test, agent) cell of the seed catalogue, and switching the campaign to
another backend must leave the inconsistency sets bit-identical.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.core.campaign import Campaign
from repro.core.explorer import explore_agent
from repro.core.tests_catalog import TABLE1_TESTS
from repro.errors import CampaignError, SolverError
from repro.symbex.expr import BVCmp, BVConst, BVVar, BoolNot
from repro.symbex.solver import (
    ALT_CDCL_KNOBS,
    BackendCapabilityError,
    CancellationToken,
    CDCLBackend,
    DEFAULT_PORTFOLIO,
    IntervalBackend,
    PortfolioSolver,
    SATSolver,
    SATStatus,
    Solver,
    SolverConfig,
    backend_info,
    backend_names,
    classify_query,
    make_backend,
)
from repro.symbex.solver.backends.routing import RouteTable

AGENTS = ("reference", "ovs", "modified")

#: Per-cell cap for the differential sweep; paths are sampled evenly so the
#: sweep still touches early, middle and late paths of every cell.
SWEEP_PATHS_PER_CELL = 12


def _var(name="x", width=16):
    return BVVar(name, width)


def _sat_query(x=None):
    x = x if x is not None else _var()
    return [BVCmp("ult", x, BVConst(10, 16)),
            BVCmp("ult", BVConst(3, 16), x)]


def _unsat_query(x=None):
    x = x if x is not None else _var()
    return [BVCmp("ult", x, BVConst(3, 16)),
            BVCmp("ult", BVConst(10, 16), x)]


# ---------------------------------------------------------------------------
# Protocol and registry
# ---------------------------------------------------------------------------

def test_registry_names_capabilities_and_unknown_backend():
    names = backend_names()
    assert set(names) == {"cdcl", "cdcl-alt", "interval"}
    assert backend_info("cdcl") == {"incremental": True, "complete": True,
                                    "cheap": False}
    assert backend_info("interval") == {"incremental": False,
                                        "complete": False, "cheap": True}
    for name in names:
        backend = make_backend(name)
        assert backend.name == name
        assert backend.incremental == backend_info(name)["incremental"]
        assert backend.complete == backend_info(name)["complete"]
        assert backend.cheap == backend_info(name)["cheap"]
    with pytest.raises(SolverError):
        make_backend("z3")
    with pytest.raises(SolverError):
        backend_info("z3")


def test_every_backend_agrees_on_simple_queries():
    for name in backend_names():
        for constraints, expected in ((_sat_query(), SATStatus.SAT),
                                      (_unsat_query(), SATStatus.UNSAT)):
            backend = make_backend(name)
            for constraint in constraints:
                backend.assert_formula(constraint)
            assert backend.check_sat() == expected, name
            if expected == SATStatus.SAT:
                model = backend.get_value()
                assert 3 < model["x"] < 10


def test_alt_cdcl_knobs_differ_from_reference():
    reference = SolverConfig().sat_knobs()
    assert any(ALT_CDCL_KNOBS[key] != reference[key] for key in ALT_CDCL_KNOBS)
    alt = make_backend("cdcl-alt")
    assert isinstance(alt, CDCLBackend)
    assert alt.sat_solver.phase_saving is ALT_CDCL_KNOBS["phase_saving"]


def test_interval_backend_capability_boundaries():
    backend = IntervalBackend()
    backend.assert_formula(_sat_query()[0])
    with pytest.raises(BackendCapabilityError):
        backend.check_sat(assumptions=[3])
    with pytest.raises(BackendCapabilityError):
        backend.new_var()
    with pytest.raises(BackendCapabilityError):
        backend.add_clause([1])
    with pytest.raises(BackendCapabilityError):
        backend.declare(_sat_query()[0])
    assert backend.check_sat() == SATStatus.SAT
    # UNKNOWN when the candidate fails verification (ne over two free vars:
    # the zero/zero candidate evaluates false), and no model afterwards.
    x = _var()
    unknown = IntervalBackend()
    unknown.assert_formula(BVCmp("ne", x, _var("y")))
    assert unknown.check_sat() == SATStatus.UNKNOWN
    with pytest.raises(SolverError):
        unknown.get_value()


def test_interval_backend_semi_decision_via_solver():
    solver = Solver(SolverConfig(backend="interval",
                                 use_interval_precheck=False))
    assert solver.check(_sat_query()).is_sat
    assert solver.check(_unsat_query()).is_unsat
    # Outside the fragment the answer is UNKNOWN, never a wrong verdict.
    x = _var()
    result = solver.check([BVCmp("ne", x, _var("y"))])
    assert result.is_unknown


# ---------------------------------------------------------------------------
# Satellite: query cache keyed on backend identity
# ---------------------------------------------------------------------------

def test_backend_keys_distinguish_configs():
    keys = {
        SolverConfig().backend_key(),
        SolverConfig(backend="cdcl-alt").backend_key(),
        SolverConfig(backend="interval").backend_key(),
        SolverConfig(portfolio=DEFAULT_PORTFOLIO).backend_key(),
        SolverConfig(portfolio=("cdcl", "cdcl-alt")).backend_key(),
        SolverConfig(portfolio=DEFAULT_PORTFOLIO,
                     route_queries=False).backend_key(),
        SolverConfig(max_conflicts=7).backend_key(),
    }
    assert len(keys) == 7


def test_query_cache_keys_include_backend_identity():
    solver = Solver(SolverConfig(backend="cdcl-alt"))
    query = _sat_query()
    first = solver.check(query)
    second = solver.check(query)
    assert first.status == second.status == SATStatus.SAT
    assert solver.stats.cache_hits == 1
    assert all(key[0] == solver.config.backend_key()
               for key in solver._cache)


def test_interval_unknowns_are_never_cached():
    solver = Solver(SolverConfig(backend="interval",
                                 use_interval_precheck=False))
    query = [BVCmp("ne", _var(), _var("y"))]
    assert solver.check(query).is_unknown
    assert solver.check(query).is_unknown
    assert solver.stats.cache_hits == 0
    assert solver.stats.unknown_cache_skips == 2


# ---------------------------------------------------------------------------
# Satellite: cooperative cancellation leaves incremental instances reusable
# ---------------------------------------------------------------------------

def _pigeonhole(solver, pigeons, holes):
    grid = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for row in grid:
        solver.add_clause(row)
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                solver.add_clause([-grid[first][hole], -grid[second][hole]])
    return grid


class _CountdownToken:
    """Deterministic mid-search cancellation: trip after N polls."""

    def __init__(self, polls: int) -> None:
        self.remaining = polls

    @property
    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining <= 0


def test_sat_cancellation_returns_unknown_and_leaves_trail_clean():
    solver = SATSolver()
    _pigeonhole(solver, 6, 5)
    token = CancellationToken()
    token.cancel()
    assert solver.solve(cancel=token) == SATStatus.UNKNOWN
    assert solver.cancellations == 1
    # Mirrors the failed-assumption cleanliness contract: a cancelled solve
    # must fully unwind so the instance stays incrementally reusable.
    assert solver._decision_level() == 0
    assert all(solver._level[abs(lit)] == 0 for lit in solver._trail)
    assert solver.solve() == SATStatus.UNSAT
    assert solver.stats_dict()["cancellations"] == 1


def test_sat_mid_search_cancellation_is_clean():
    solver = SATSolver()
    grid = _pigeonhole(solver, 7, 6)
    assert solver.solve(cancel=_CountdownToken(40)) == SATStatus.UNKNOWN
    assert solver.cancellations == 1
    assert solver._decision_level() == 0
    assert all(solver._level[abs(lit)] == 0 for lit in solver._trail)
    # The instance answers correctly afterwards, including under assumptions.
    assert solver.solve(assumptions=[grid[0][0]]) == SATStatus.UNSAT
    assert solver._decision_level() == 0
    assert solver.solve() == SATStatus.UNSAT


def test_cancelled_cdcl_backend_stays_reusable():
    backend = make_backend("cdcl")
    for constraint in _sat_query():
        backend.assert_formula(constraint)
    token = CancellationToken()
    token.cancel()
    assert backend.check_sat(cancel=token) == SATStatus.UNKNOWN
    sat = backend.sat_solver
    assert sat.cancellations == 1
    assert sat._decision_level() == 0
    assert all(sat._level[abs(lit)] == 0 for lit in sat._trail)
    # Same instance, no token: the query completes and yields a real model.
    assert backend.check_sat() == SATStatus.SAT
    assert 3 < backend.get_value()["x"] < 10
    # Assumption-based reuse still works after the cancelled attempt.
    lit = backend.declare(BVCmp("eq", _var(), BVConst(5, 16)))
    assert backend.check_sat(assumptions=[lit]) == SATStatus.SAT
    assert backend.get_value()["x"] == 5
    assert backend.check_sat(assumptions=[-lit]) == SATStatus.SAT
    assert backend.get_value()["x"] != 5


def test_backend_cancel_method_cancels_inflight_query():
    # A pigeonhole instance far beyond what CDCL resolves quickly, built
    # through the backend's CNF surface; cancel() from the query's observer
    # thread must unwind it promptly.
    backend = make_backend("cdcl")
    _pigeonhole(backend, 10, 9)
    results = []
    thread = threading.Thread(
        target=lambda: results.append(
            backend.check_sat(cancel=CancellationToken())))
    thread.start()
    deadline = time.monotonic() + 10.0
    while backend._cancel is None and time.monotonic() < deadline:
        time.sleep(0.0005)
    backend.cancel()
    thread.join(30.0)
    assert results == [SATStatus.UNKNOWN]
    sat = backend.sat_solver
    assert sat.cancellations == 1
    assert sat._decision_level() == 0
    # cancel() with no query in flight is a harmless no-op.
    backend.cancel()


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

def test_classify_query_flags_interval_friendly_shapes():
    x = _var()
    friendly = classify_query(_sat_query() + [BoolNot(
        BVCmp("eq", x, BVConst(7, 16)))])
    assert friendly.friendly and friendly.atoms == 3
    unfriendly = classify_query([BVCmp("eq", x, _var("y"))])
    assert not unfriendly.friendly
    signed = classify_query([BVCmp("slt", x, BVConst(3, 16))])
    assert not signed.friendly


def test_route_table_demotes_inconclusive_buckets_but_keeps_probing():
    table = RouteTable()
    features = classify_query(_sat_query())
    assert table.route_to_interval(features)
    for _ in range(RouteTable.MIN_SAMPLES):
        table.record(features, conclusive=False)
    # Demoted: the next PROBE_EVERY - 1 queries skip, then one probes.
    decisions = [table.route_to_interval(features)
                 for _ in range(RouteTable.PROBE_EVERY)]
    assert decisions.count(True) == 1 and decisions[-1]
    # Conclusive probes lift the rate back over the floor — recovery.
    needed = math.ceil(RouteTable.MIN_SAMPLES * RouteTable.FLOOR
                       / (1.0 - RouteTable.FLOOR))
    for _ in range(needed):
        table.record(features, conclusive=True)
    assert table.route_to_interval(features)
    # Friendliness shapes the bucket, not a hard gate: unfriendly buckets
    # also start optimistic and demote on their own observed rate.
    unfriendly = classify_query([BVCmp("eq", _var("a", 16), _var("b", 16))])
    assert not unfriendly.friendly
    assert table.route_to_interval(unfriendly)
    for _ in range(RouteTable.MIN_SAMPLES):
        table.record(unfriendly, conclusive=False)
    assert not table.route_to_interval(unfriendly)
    assert any(counts["inconclusive"] == RouteTable.MIN_SAMPLES
               for counts in table.snapshot().values())


# ---------------------------------------------------------------------------
# Portfolio
# ---------------------------------------------------------------------------

def _portfolio(members, route_queries=True):
    config = SolverConfig()
    return PortfolioSolver(members, factory=config.make_backend,
                           route_queries=route_queries)


def test_portfolio_routes_friendly_queries_to_interval():
    portfolio = _portfolio(DEFAULT_PORTFOLIO)
    answer = portfolio.check(_sat_query())
    assert answer.status == SATStatus.SAT
    assert answer.backend == "interval"
    assert answer.routed and not answer.raced
    assert portfolio.wins["interval"] == 1
    stats = portfolio.stats_dict()
    assert stats["routed_queries"] == 1 and stats["routed_wins"] == 1


def test_portfolio_falls_through_to_cdcl_on_interval_miss():
    portfolio = _portfolio(DEFAULT_PORTFOLIO)
    x = _var()
    # ne over two free vars: the interval candidate (both zero) fails
    # concrete verification, so the routed attempt is inconclusive.
    answer = portfolio.check([BVCmp("ne", x, _var("y")),
                              BVCmp("ult", x, BVConst(9, 16))])
    assert answer.status == SATStatus.SAT
    assert answer.backend == "cdcl"
    assert not answer.raced  # single expensive member: direct call, no race
    assert portfolio.wins["cdcl"] == 1


def test_portfolio_race_first_conclusive_wins_and_losers_cancel():
    portfolio = _portfolio(("cdcl", "cdcl-alt"), route_queries=False)
    try:
        sat = portfolio.check(_sat_query())
        unsat = portfolio.check(_unsat_query())
        assert sat.status == SATStatus.SAT and sat.raced
        assert unsat.status == SATStatus.UNSAT and unsat.raced
        assert sat.backend in ("cdcl", "cdcl-alt")
        stats = portfolio.stats_dict()
        assert stats["race_queries"] == 2
        assert stats["cancelled_racers"] == 2
        assert stats["win_cdcl"] + stats["win_cdcl-alt"] == 2
    finally:
        portfolio.shutdown()


def test_portfolio_worker_errors_reraise_on_query_thread():
    config = SolverConfig()
    calls = []

    def flaky_factory(name):
        # Survive the constructor's capability probe (one call per member),
        # then blow up inside the racer threads.
        calls.append(name)
        if len(calls) > 2:
            raise RuntimeError("backend exploded")
        return config.make_backend(name)

    portfolio = PortfolioSolver(("cdcl", "cdcl-alt"), factory=flaky_factory,
                                route_queries=False)
    try:
        with pytest.raises(RuntimeError, match="backend exploded"):
            portfolio.check(_sat_query())
    finally:
        portfolio.shutdown()


def test_portfolio_solver_answers_match_reference_and_models_are_deterministic():
    reference = Solver(SolverConfig(use_cache=False))
    racing = Solver(SolverConfig(portfolio=DEFAULT_PORTFOLIO, use_cache=False))
    x = _var()
    queries = [
        _sat_query(),
        _unsat_query(),
        [BVCmp("eq", x, BVConst(77, 16))],
        [BoolNot(BVCmp("eq", x, BVConst(0, 16))), BVCmp("ule", x, BVConst(4, 16))],
        [BVCmp("eq", x, _var("y")), BVCmp("ult", x, BVConst(9, 16))],
    ]
    for query in queries:
        expected = reference.check(query)
        got = racing.check(query)
        assert got.status == expected.status
        if expected.is_sat:
            # The default portfolio is model-deterministic by construction:
            # concretization must pin the same values the reference pins.
            assert got.model == expected.model


def test_campaign_backend_and_portfolio_kwargs():
    campaign = Campaign(backend="cdcl-alt", portfolio=True)
    assert campaign.solver_config.backend == "cdcl-alt"
    assert campaign.solver_config.portfolio == DEFAULT_PORTFOLIO
    explicit = Campaign(portfolio=("cdcl", "cdcl-alt"))
    assert explicit.solver_config.portfolio == ("cdcl", "cdcl-alt")
    assert Campaign().solver_config is None  # no override, no config forced
    with pytest.raises(CampaignError):
        Campaign(backend="z3")
    with pytest.raises(CampaignError):
        Campaign(portfolio=("cdcl", "z3"))


# ---------------------------------------------------------------------------
# Satellite: seed-catalog differential sweep
# ---------------------------------------------------------------------------

def _sample(outcomes, limit):
    if len(outcomes) <= limit:
        return list(outcomes)
    step = len(outcomes) / float(limit)
    return [outcomes[int(index * step)] for index in range(limit)]


@pytest.fixture(scope="module")
def catalog_queries():
    """Real path conditions from every (test, agent) cell of the catalogue."""

    queries = []
    for test in TABLE1_TESTS:
        for agent in AGENTS:
            report = explore_agent(agent, test)
            assert report.path_count > 0, (test, agent)
            for outcome in _sample(report.outcomes, SWEEP_PATHS_PER_CELL):
                if outcome.constraints:
                    queries.append((test, agent, outcome.constraints))
    assert len(queries) > 100
    return queries


def _sweep(config, queries):
    solver = Solver(config)
    return [solver.check(constraints).status
            for _test, _agent, constraints in queries]


def test_differential_sweep_all_backends_agree(catalog_queries):
    reference = _sweep(SolverConfig(use_cache=False), catalog_queries)
    assert SATStatus.UNKNOWN not in reference

    # Complete backends and both portfolio shapes: verdicts must be equal.
    contenders = {
        "cdcl-alt": SolverConfig(backend="cdcl-alt", use_cache=False),
        "portfolio-default": SolverConfig(portfolio=DEFAULT_PORTFOLIO,
                                          use_cache=False),
        "portfolio-raced": SolverConfig(portfolio=("interval", "cdcl",
                                                   "cdcl-alt"),
                                        use_cache=False),
    }
    for label, config in contenders.items():
        verdicts = _sweep(config, catalog_queries)
        mismatches = [
            (query[0], query[1], expected, got)
            for query, expected, got in zip(catalog_queries, reference,
                                            verdicts)
            if got != expected
        ]
        assert not mismatches, (label, mismatches[:5])

    # The semi-decision interval backend: every conclusive answer must match.
    interval_verdicts = _sweep(
        SolverConfig(backend="interval", use_interval_precheck=False,
                     use_cache=False),
        catalog_queries)
    wrong = [
        (query[0], query[1], expected, got)
        for query, expected, got in zip(catalog_queries, reference,
                                        interval_verdicts)
        if got != SATStatus.UNKNOWN and got != expected
    ]
    assert not wrong, wrong[:5]
    conclusive = sum(1 for got in interval_verdicts
                     if got != SATStatus.UNKNOWN)
    # The catalogue's agent conditions are dominated by field-vs-constant
    # comparisons; the word-level engine must decide a meaningful share.
    assert conclusive / len(interval_verdicts) >= 0.2


def _inconsistency_sets(report):
    return {
        (r.test_key, frozenset((r.agent_a, r.agent_b))):
            frozenset((i.trace_a, i.trace_b)
                      for i in r.crosscheck.inconsistencies)
        for r in report.reports
    }


def test_campaign_inconsistency_sets_identical_across_backends():
    def run(**kwargs):
        campaign = Campaign(tests=("set_config", "flow_mod"), agents=AGENTS,
                            replay_testcases=False, triage=False, **kwargs)
        return campaign.run()

    reference = _inconsistency_sets(run())
    assert reference  # the modified agent must produce inconsistencies
    assert _inconsistency_sets(run(backend="cdcl-alt")) == reference
    assert _inconsistency_sets(run(portfolio=True)) == reference
    assert _inconsistency_sets(run(portfolio=("cdcl", "cdcl-alt"))) == reference
