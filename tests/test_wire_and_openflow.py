"""Tests for the wire buffer, OpenFlow messages, actions and match structures."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MessageParseError, PacketError
from repro.openflow import constants as c
from repro.openflow.actions import (
    ActionEnqueue,
    ActionOutput,
    ActionSetDlDst,
    ActionSetNwTos,
    ActionSetVlanVid,
    ActionStripVlan,
    RawAction,
    pack_actions,
    unpack_actions,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FlowMod,
    Hello,
    PacketIn,
    PacketOut,
    PhyPort,
    QueueGetConfigRequest,
    SetConfig,
    StatsRequest,
)
from repro.openflow.parser import parse_header, parse_message
from repro.symbex.expr import BVVar, bvvar
from repro.wire.buffer import SymBuffer
from repro.wire.fields import as_field, field_equals, field_int, is_symbolic_field


# ---------------------------------------------------------------------------
# SymBuffer
# ---------------------------------------------------------------------------

def test_buffer_write_read_roundtrip():
    buf = SymBuffer()
    buf.write_u8(0x12).write_u16(0x3456).write_u32(0x789ABCDE).write_u64(0x1122334455667788)
    assert len(buf) == 15
    assert buf.read_u8(0) == 0x12
    assert buf.read_u16(1) == 0x3456
    assert buf.read_u32(3) == 0x789ABCDE
    assert buf.read_u64(7) == 0x1122334455667788


def test_buffer_from_bytes_and_to_bytes():
    buf = SymBuffer(b"\x01\x02\x03")
    assert buf.to_bytes() == b"\x01\x02\x03"
    assert buf.is_concrete


def test_buffer_symbolic_field_roundtrip():
    port = bvvar("port", 16)
    buf = SymBuffer()
    buf.write_u16(port)
    value = buf.read_u16(0)
    assert isinstance(value, BVVar)
    assert value.name == "port"


def test_buffer_rejects_out_of_range_byte():
    with pytest.raises(PacketError):
        SymBuffer([300])
    with pytest.raises(PacketError):
        SymBuffer().write_u8(256)


def test_buffer_out_of_bounds_read():
    with pytest.raises(PacketError):
        SymBuffer(b"\x00\x01").read_u32(0)


def test_buffer_slice_pad_concat_hex():
    buf = SymBuffer(b"\xAA\xBB") + SymBuffer(b"\xCC")
    buf.pad(2, fill=0)
    assert buf.to_bytes() == b"\xAA\xBB\xCC\x00\x00"
    assert buf[1:3].to_bytes() == b"\xBB\xCC"
    assert buf.hex() == "aabbcc0000"
    symbolic = SymBuffer([bvvar("b", 8)])
    assert symbolic.hex() == "??"
    assert not symbolic.is_concrete
    with pytest.raises(PacketError):
        symbolic.to_bytes()


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_prop_buffer_u32_roundtrip(value):
    buf = SymBuffer()
    buf.write_u32(value)
    assert buf.read_u32(0) == value


# ---------------------------------------------------------------------------
# Field helpers
# ---------------------------------------------------------------------------

def test_field_helpers():
    assert as_field(0x1FFFF, 16) == 0xFFFF
    assert field_int(7) == 7
    assert field_equals(5, 5, 16) is True
    assert field_equals(5, 6, 16) is False
    symbolic = bvvar("f", 16)
    assert is_symbolic_field(symbolic)
    assert not is_symbolic_field(3)
    condition = field_equals(symbolic, 9, 16)
    assert not isinstance(condition, bool)


# ---------------------------------------------------------------------------
# Match
# ---------------------------------------------------------------------------

def test_match_pack_length_and_roundtrip():
    match = Match.exact_tcp(in_port=3, dl_src=0x0A0B0C0D0E0F, dl_dst=0x010203040506,
                            nw_src=0x0A000001, nw_dst=0x0A000002, tp_src=1000, tp_dst=2000)
    packed = match.pack()
    assert len(packed) == c.OFP_MATCH_LEN
    parsed = Match.unpack(packed)
    assert parsed.field_values() == match.field_values()


def test_match_wildcard_all_and_describe():
    match = Match.wildcard_all()
    assert match.wildcards == c.OFPFW_ALL
    assert "wildcards" in match.describe()
    assert not match.has_symbolic_fields()


def test_match_symbolic_fields_detected_and_normalized():
    match = Match(wildcards=0, in_port=bvvar("m.in_port", 16))
    assert match.has_symbolic_fields()
    assert "in_port=*" in match.describe()


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------

def test_action_pack_lengths_are_multiples_of_eight():
    actions = [ActionOutput(port=1, max_len=64), ActionSetVlanVid(vlan_vid=10),
               ActionStripVlan(), ActionSetDlDst(dl_addr=0x112233445566),
               ActionSetNwTos(nw_tos=0x40), ActionEnqueue(port=2, queue_id=7)]
    for action in actions:
        assert len(action.pack()) % 8 == 0
        assert len(action.pack()) == action.LENGTH


def test_action_list_roundtrip():
    actions = [ActionOutput(port=4, max_len=32), ActionSetVlanVid(vlan_vid=100),
               ActionEnqueue(port=2, queue_id=9)]
    packed = pack_actions(actions)
    parsed = unpack_actions(packed, 0, len(packed))
    assert isinstance(parsed[0], ActionOutput) and parsed[0].port == 4
    assert isinstance(parsed[1], ActionSetVlanVid) and parsed[1].vlan_vid == 100
    assert isinstance(parsed[2], ActionEnqueue) and parsed[2].queue_id == 9


def test_symbolic_action_type_parses_as_raw_action():
    raw = RawAction(action_type=bvvar("t", 16), length=8, arg16_a=bvvar("a", 16))
    packed = raw.pack()
    parsed = unpack_actions(packed, 0, len(packed))
    assert len(parsed) == 1 and isinstance(parsed[0], RawAction)


def test_unpack_actions_rejects_bad_length():
    buf = SymBuffer()
    buf.write_u16(c.OFPAT_OUTPUT)
    buf.write_u16(6)  # not a multiple of 8
    buf.write_u32(0)
    with pytest.raises(MessageParseError):
        unpack_actions(buf, 0, len(buf))


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

def test_header_layout():
    packed = Hello(xid=99).pack()
    header = parse_header(packed)
    assert header.version == c.OFP_VERSION
    assert header.msg_type == c.OFPT_HELLO
    assert header.length == len(packed) == 8
    assert header.xid == 99


def test_parse_header_too_short():
    with pytest.raises(MessageParseError):
        parse_header(SymBuffer(b"\x01\x00"))


@pytest.mark.parametrize("message", [
    Hello(xid=1),
    EchoRequest(xid=2, data=b"abc"),
    BarrierRequest(xid=3),
    SetConfig(xid=4, flags=1, miss_send_len=64),
    StatsRequest(xid=5, stats_type=c.OFPST_TABLE),
    QueueGetConfigRequest(xid=6, port=2),
    ErrorMsg(xid=7, err_type=c.OFPET_BAD_REQUEST, code=c.OFPBRC_BAD_LEN),
])
def test_message_pack_parse_roundtrip_types(message):
    packed = message.pack()
    assert parse_header(packed).length == len(packed)
    parsed = parse_message(packed)
    assert parsed.TYPE == message.TYPE
    assert parsed.xid == message.xid


def test_flow_mod_roundtrip_with_actions():
    message = FlowMod(xid=11, match=Match.wildcard_all(), command=c.OFPFC_MODIFY,
                      idle_timeout=5, hard_timeout=10, priority=7, buffer_id=3,
                      out_port=2, flags=c.OFPFF_SEND_FLOW_REM,
                      actions=[ActionOutput(port=6, max_len=0)])
    parsed = parse_message(message.pack())
    assert isinstance(parsed, FlowMod)
    assert parsed.command == c.OFPFC_MODIFY
    assert parsed.priority == 7
    assert parsed.buffer_id == 3
    assert parsed.out_port == 2
    assert isinstance(parsed.actions[0], ActionOutput) and parsed.actions[0].port == 6


def test_packet_out_roundtrip_with_data():
    message = PacketOut(xid=12, buffer_id=c.OFP_NO_BUFFER, in_port=4,
                        actions=[ActionOutput(port=c.OFPP_FLOOD, max_len=0)],
                        data=b"\x00" * 20)
    parsed = parse_message(message.pack())
    assert isinstance(parsed, PacketOut)
    assert parsed.in_port == 4
    assert len(parsed.data) == 20


def test_features_reply_with_ports():
    ports = [PhyPort(port_no=n, hw_addr=n, name="eth%d" % n) for n in range(1, 4)]
    message = FeaturesReply(xid=13, datapath_id=0xAB, n_buffers=64, n_tables=1, ports=ports)
    packed = message.pack()
    assert len(packed) == 8 + 24 + 3 * c.OFP_PHY_PORT_LEN
    assert parse_header(packed).length == len(packed)


def test_packet_in_describe_and_pack():
    message = PacketIn(xid=14, buffer_id=7, total_len=60, in_port=2,
                       reason=c.OFPR_NO_MATCH, data=b"\x11" * 60)
    assert "PACKET_IN" in message.describe()
    assert parse_header(message.pack()).length == 8 + 10 + 60


def test_error_describe_uses_symbolic_names():
    message = ErrorMsg(err_type=c.OFPET_BAD_ACTION, code=c.OFPBAC_BAD_OUT_PORT)
    assert "BAD_ACTION" in message.describe()
    assert "BAD_OUT_PORT" in message.describe()


def test_symbolic_message_field_survives_packing():
    port = bvvar("out.port", 16)
    message = PacketOut(buffer_id=c.OFP_NO_BUFFER, in_port=c.OFPP_NONE,
                        actions=[ActionOutput(port=port)], data=b"abcd")
    packed = message.pack()
    assert packed.symbolic_byte_count() == 2
    parsed = parse_message(packed)
    assert isinstance(parsed.actions[0].port, BVVar)
    assert parsed.actions[0].port.name == "out.port"


def test_parse_message_rejects_truncated_flow_mod():
    buf = FlowMod().pack()[:40]
    # Re-stamp the length field so the header itself is consistent.
    raw = bytearray(buf.to_bytes())
    raw[2:4] = (len(raw)).to_bytes(2, "big")
    with pytest.raises(MessageParseError):
        parse_message(SymBuffer(bytes(raw)))
