"""Tests for the path-exploration engine and per-path state."""

import pytest

from repro.errors import DecisionLimitExceeded, SolverError
from repro.symbex.engine import Engine, EngineConfig
from repro.symbex.expr import bvvar
from repro.symbex.simplify import evaluate_bool
from repro.symbex.solver import Solver, SolverConfig
from repro.symbex.state import PathCondition, PathState


def explore(program, **config):
    engine = Engine(config=EngineConfig(**config) if config else None)
    return engine.explore(program)


def test_concrete_program_has_single_path():
    result = explore(lambda state: state.record_event("done"))
    assert result.path_count == 1
    assert result.paths[0].events == ["done"]
    assert result.paths[0].decisions == ()


def test_single_branch_two_paths():
    def program(state):
        x = state.new_symbol("x", 8)
        if x == 3:
            state.record_event("eq")
        else:
            state.record_event("ne")

    result = explore(program)
    assert result.path_count == 2
    assert sorted(e for p in result.paths for e in p.events) == ["eq", "ne"]


def test_three_way_classification():
    def program(state):
        p = state.new_symbol("p", 16)
        if p == 0xFFFD:
            state.record_event("controller")
        elif p < 25:
            state.record_event("forward")
        else:
            state.record_event("error")

    result = explore(program)
    assert result.path_count == 3
    events = [p.events[0] for p in result.paths]
    assert set(events) == {"controller", "forward", "error"}


def test_infeasible_branches_are_pruned():
    def program(state):
        x = state.new_symbol("x", 8)
        if x < 10:
            if x > 20:  # infeasible under x < 10
                state.record_event("impossible")
            else:
                state.record_event("small")
        else:
            state.record_event("large")

    result = explore(program)
    assert result.path_count == 2
    assert all("impossible" not in p.events for p in result.paths)


def test_path_conditions_are_satisfied_by_their_own_models():
    def program(state):
        x = state.new_symbol("x", 16)
        y = state.new_symbol("y", 16)
        if x > 100:
            if y == x + 1:
                state.record_event("linked")
            else:
                state.record_event("free")
        else:
            state.record_event("low")

    result = explore(program)
    assert result.path_count == 3
    solver = Solver()
    for path in result.paths:
        constraints = path.condition.constraints()
        model = solver.get_model(constraints)
        assert model is not None
        assert all(evaluate_bool(constraint, model) for constraint in constraints)


def test_assume_restricts_exploration():
    def program(state):
        x = state.new_symbol("x", 8)
        state.assume(x < 10)
        if x > 50:
            state.record_event("big")
        else:
            state.record_event("small")

    result = explore(program)
    assert result.path_count == 1
    assert result.paths[0].events == ["small"]


def test_nested_branches_enumerate_all_combinations():
    def program(state):
        a = state.new_symbol("a", 8)
        b = state.new_symbol("b", 8)
        first = "a1" if a == 1 else "a0"
        second = "b1" if b == 1 else "b0"
        state.record_event(first + second)

    result = explore(program)
    assert result.path_count == 4
    assert {p.events[0] for p in result.paths} == {"a1b1", "a1b0", "a0b1", "a0b0"}


def test_loop_over_symbolic_bound_is_bounded_by_constraints():
    def program(state):
        n = state.new_symbol("n", 8)
        state.assume(n <= 2)
        count = 0
        index = 0
        while index < 3:
            if n > index:
                count += 1
            index += 1
        state.record_event(count)

    result = explore(program)
    assert {p.events[0] for p in result.paths} == {0, 1, 2}


def test_max_paths_truncation():
    def program(state):
        for index in range(8):
            state.new_symbol("x%d" % index, 8) == 1 and state.record_event(index)

    result = explore(program, max_paths=5)
    assert result.path_count == 5
    assert result.stats.truncated


def test_decision_limit_marks_path_as_failed():
    def program(state):
        x = state.new_symbol("x", 8)
        index = 0
        while True:
            if x == index:
                break
            index += 1
            if index > 100:
                break

    result = explore(program, max_decisions_per_path=16)
    assert any(not p.ok for p in result.paths)


def test_program_exception_recorded_as_path_error():
    def program(state):
        x = state.new_symbol("x", 8)
        if x == 0:
            raise ValueError("boom")
        state.record_event("ok")

    result = explore(program)
    errors = [p for p in result.paths if not p.ok]
    assert len(errors) == 1
    assert "ValueError" in errors[0].error
    assert any(p.ok and p.events == ["ok"] for p in result.paths)


def test_concretize_pins_value_consistently():
    def program(state):
        x = state.new_symbol("x", 16)
        state.assume(x > 10)
        state.assume(x < 14)
        value = state.concretize(x, hint=12)
        state.record_event(value)

    result = explore(program)
    assert result.path_count == 1
    assert result.paths[0].events == [12]


def test_engine_stats_counts_forks_and_forced_decisions():
    def program(state):
        x = state.new_symbol("x", 8)
        state.assume(x < 2)
        if x == 0:
            state.record_event("zero")
        else:
            state.record_event("one")
        if x < 2:  # always true: forced, no fork
            state.record_event("small")

    result = explore(program)
    assert result.path_count == 2
    assert result.stats.forks == 1
    assert result.stats.forced_decisions >= 2


def test_nested_exploration_is_rejected_gracefully():
    outer = Engine()

    def program(state):
        x = state.new_symbol("x", 8)
        if x == 1:
            state.record_event("one")
        else:
            state.record_event("other")

    result = outer.explore(program)
    assert result.path_count == 2
    # The branch hook must be restored after exploration.
    from repro.errors import NoActiveEngineError
    with pytest.raises(NoActiveEngineError):
        bool(bvvar("y", 8) == 1)


def test_path_condition_helpers():
    condition = PathCondition()
    x = bvvar("x", 8)
    condition.add(x == 1)
    condition.add(x < 5)
    assert len(condition) == 2
    assert condition.size() > 0
    assert condition.variables() == {"x": 8}
    clone = condition.copy()
    clone.add(x != 0)
    assert len(condition) == 2 and len(clone) == 3


def test_path_state_symbol_width_conflict():
    state = PathState(path_id=0)
    state.new_symbol("f", 8)
    with pytest.raises(Exception):
        state.new_symbol("f", 16)


def test_events_order_is_preserved():
    def program(state):
        x = state.new_symbol("x", 8)
        state.record_event("first")
        if x == 1:
            state.record_event("second-eq")
        else:
            state.record_event("second-ne")
        state.record_event("third")

    result = explore(program)
    for path in result.paths:
        assert path.events[0] == "first"
        assert path.events[-1] == "third"
        assert len(path.events) == 3


# ---------------------------------------------------------------------------
# Per-run stats, discarded replays, truncation semantics
# ---------------------------------------------------------------------------


def test_reused_engine_reports_per_run_solver_queries():
    def program(state):
        x = state.new_symbol("x", 8)
        if x == 1:
            state.record_event("one")

    engine = Engine(config=EngineConfig(use_prefix_oracle=False))
    first = engine.explore(program)
    second = engine.explore(program)
    assert first.stats.solver_queries > 0
    # Regression: a reused engine used to report the solver's *cumulative*
    # query counter, inflating every exploration after the first.
    assert second.stats.solver_queries == first.stats.solver_queries


def test_reused_oracle_engine_reports_per_run_solver_queries():
    def program(state):
        x = state.new_symbol("x", 8)
        if x == 1:
            state.record_event("one")

    engine = Engine()
    first = engine.explore(program)
    second = engine.explore(program)
    # The word-level pre-filter may answer every check without the backend,
    # so solver_queries can legitimately be zero — but the branch decisions
    # themselves must be visible, and the per-run stats must never grow
    # cumulatively across explore() calls on a reused engine.
    assert first.solver_stats["branch_checks"] > 0
    assert second.stats.solver_queries <= max(first.stats.solver_queries, 0)
    assert second.solver_stats["branch_checks"] <= first.solver_stats["branch_checks"]


def test_aborted_replays_are_counted():
    from repro.symbex.engine import active_engine

    def program(state):
        x = state.new_symbol("x", 8)
        for index in range(4):
            if x == index:
                active_engine().abort_current_path("infeasible vendor prefix")
        state.record_event("done")

    result = explore(program)
    assert result.path_count == 1
    assert result.paths[0].events == ["done"]
    assert result.stats.discarded_replays == 4
    assert not result.stats.truncated


def test_aborted_replays_consume_the_path_budget():
    from repro.symbex.engine import active_engine

    def program(state):
        x = state.new_symbol("x", 8)
        for index in range(4):
            if x == index:
                active_engine().abort_current_path("discard")
        state.record_event("done")

    result = explore(program, max_paths=3)
    # Regression: discarded replays used to be invisible to max_paths, so a
    # prefix-heavy exploration could spin far past its budget.
    assert result.path_count + result.stats.discarded_replays == 3
    assert result.stats.truncated
    assert result.stats.truncation_reason == "max_paths"


def test_max_paths_truncation_reason_and_partial_result():
    def program(state):
        for index in range(6):
            bit = state.new_symbol("b%d" % index, 1)
            if bit == 1:
                state.record_event(index)

    result = explore(program, max_paths=5)
    assert result.path_count == 5
    assert result.stats.truncated
    assert result.stats.truncation_reason == "max_paths"
    # The partial result is fully usable: every record carries its condition
    # and decisions, and the unexplored remainder is handed back.
    assert all(p.decisions for p in result.paths)
    assert all(p.condition.constraints() for p in result.paths)
    assert result.frontier


def test_time_budget_truncation_reason_and_partial_result():
    import time as _time

    def program(state):
        x = state.new_symbol("x", 4)
        for index in range(3):
            if x == index:
                break
        _time.sleep(0.03)
        state.record_event("slow")

    result = explore(program, time_budget=0.05)
    assert result.stats.truncated
    assert result.stats.truncation_reason == "time_budget"
    assert 1 <= result.path_count < 4
    assert all(p.events == ["slow"] for p in result.paths)


def test_decision_limit_truncation_reason_and_usable_result():
    def program(state):
        x = state.new_symbol("x", 8)
        index = 0
        while True:
            if x == index:
                break
            index += 1
            if index > 100:
                break
        state.record_event("leaf")

    result = explore(program, max_decisions_per_path=16)
    assert result.stats.truncated
    assert result.stats.truncation_reason == "max_decisions_per_path"
    failed = [p for p in result.paths if not p.ok]
    assert failed and all("DecisionLimitExceeded" in p.error for p in failed)
    # Paths under the limit are unaffected and the result stays usable.
    assert any(p.ok and p.events == ["leaf"] for p in result.paths)


def test_resume_slices_reach_the_same_path_set_as_one_full_run():
    """Two half-budget slices == one full-budget run (hybrid symbex stage)."""

    def program(state):
        for index in range(4):
            bit = state.new_symbol("b%d" % index, 8)
            if bit == index:
                state.record_event("eq%d" % index)
            else:
                state.record_event("ne%d" % index)

    full = Engine(config=EngineConfig(max_paths=64)).explore(program)
    assert full.path_count == 16
    assert full.exhausted and not full.stats.truncated

    engine = Engine(config=EngineConfig(max_paths=8))
    sliced = engine.explore(program)
    assert sliced.stats.truncated and sliced.frontier
    slices = 1
    while not sliced.exhausted:
        sliced = sliced.resume(engine, program)
        slices += 1
    assert slices == 2  # exactly two half-budget slices cover 16 paths

    def path_set(result):
        return sorted(p.decisions for p in result.paths)

    assert path_set(sliced) == path_set(full)
    assert (sorted(tuple(p.events) for p in sliced.paths)
            == sorted(tuple(p.events) for p in full.paths))
    assert sliced.path_count == 16


def test_resume_on_exhausted_result_is_a_no_op():
    result = Engine().explore(lambda state: state.record_event("done"))
    assert result.exhausted
    assert result.resume(Engine(), lambda state: None) is result
