"""Tests for expression hash-consing and the overhauled SAT core.

Covers the interning invariants (construction, serialization and pickling all
yield pointer-identical terms; generations survive a table reset), the
bounded simplify memo, and the SAT solver's incremental edge cases: budget
exhaustion followed by a successful re-solve, conflicting assumptions leaving
the trail clean, clause addition after restarts, determinism across restart
schedules, and learned-clause DB reduction.
"""

import pickle

import pytest

from repro.symbex.expr import (
    BoolConst,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv,
    bvvar,
    collect_variables,
    concat,
    expr_size,
    extract,
    intern_table,
    ite,
    structurally_equal,
    zero_extend,
)
from repro.symbex.serialize import expr_from_obj, expr_to_obj
from repro.symbex.simplify import (
    clear_simplify_cache,
    set_simplify_cache_limit,
    simplify_bool,
    simplify_cache_stats,
)
from repro.symbex.solver import SATSolver, SATStatus


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------

def test_construction_is_interned():
    assert (bvvar("x", 8) + 1) is (bvvar("x", 8) + 1)
    assert (bvvar("x", 8) == 3) is (bvvar("x", 8) == 3)
    assert bool_not(bvvar("x", 8) == 3) is bool_not(bvvar("x", 8) == 3)
    assert (bvvar("x", 8) + 1) is not (bvvar("x", 8) + 2)


def test_structural_equality_is_pointer_equality():
    x = bvvar("x", 16)
    a = concat(extract(x, 15, 8), bv(0xFF, 8))
    b = concat(extract(x, 15, 8), bv(0xFF, 8))
    assert a is b
    assert structurally_equal(a, b)


def test_compound_terms_share_subterms():
    x = bvvar("x", 16)
    left = (x + 1) ^ (x + 1)
    assert left.lhs is left.rhs
    assert expr_size(left) == 4  # xor, add, x, 1 — shared nodes counted once


def test_nary_dedup_uses_identity():
    x = bvvar("x", 8)
    cond = x == 1
    assert bool_and(cond, cond) is cond
    both = bool_and(cond, x == 2)
    assert bool_and(cond, x == 2) is both
    assert bool_or(cond, bool_or(cond, x == 2)) is bool_or(cond, x == 2)


def test_serialize_roundtrip_is_pointer_identical():
    x = bvvar("pkt", 32)
    term = bool_and(extract(x, 31, 16) == 0xABCD,
                    bool_or(x != 0, zero_extend(extract(x, 7, 0), 32) < 9),
                    ite(x == 1, bv(3, 32), x) > 1)
    assert expr_from_obj(expr_to_obj(term)) is term


def test_pickle_roundtrip_is_pointer_identical():
    x = bvvar("pkt", 16)
    term = bool_not((x & 0x0F00) == 0x0200)
    assert pickle.loads(pickle.dumps(term)) is term


def test_intern_stats_count_hits():
    table = intern_table()
    before = table.hits
    first = bvvar("stats_probe", 24) + 7  # may miss or hit depending on history
    again = bvvar("stats_probe", 24) + 7  # every node of this one must hit
    assert again is first
    assert table.hits > before
    stats = table.stats_dict()
    assert stats["distinct_terms"] == len(table._terms)
    assert stats["memory_bytes"] > 0
    assert 0.0 <= stats["hit_rate"] <= 1.0


def test_intern_reset_keeps_constant_singletons():
    x = bvvar("reset_probe", 8)
    old_term = x + 5
    intern_table().reset()
    clear_simplify_cache()  # memo entries pin the old generation; drop them
    try:
        assert BoolConst(True) is TRUE
        assert BoolConst(False) is FALSE
        assert (bv(3, 8) < 5) is TRUE
        new_term = bvvar("reset_probe", 8) + 5
        # Across generations identity is lost but structural equality holds.
        assert new_term is not old_term
        assert structurally_equal(new_term, old_term)
        assert collect_variables(old_term) == {"reset_probe": 8}
    finally:
        clear_simplify_cache()


def test_invalid_construction_is_not_interned():
    from repro.errors import ExpressionError
    from repro.symbex.expr import BVExtract, BVSignExt, BVZeroExt

    distinct_before = intern_table().distinct_terms
    with pytest.raises(ExpressionError):
        bvvar("", 8)
    with pytest.raises(ExpressionError):
        extract(bvvar("y", 8), 9, 0)
    assert intern_table().distinct_terms <= distinct_before + 1  # only "y"


def test_invalid_scalars_do_not_false_hit_the_intern_table():
    from repro.errors import ExpressionError
    from repro.symbex.expr import BVExtract, BVSignExt, BVZeroExt, BVVar

    # Scalar key components hash by value (8.0 == 8): validation must run
    # before the cache lookup or a float width would return the cached term.
    y = BVVar("float_probe", 8)
    BVExtract(y, 5, 1)
    for build in (lambda: BVVar("float_probe", 8.0),
                  lambda: BVExtract(y, 5.0, 1),
                  lambda: BVZeroExt(y, 16.0),
                  lambda: BVSignExt(y, 16.0)):
        with pytest.raises(ExpressionError):
            build()


# ---------------------------------------------------------------------------
# Bounded simplify memo
# ---------------------------------------------------------------------------

def test_simplify_cache_is_bounded_and_observable():
    clear_simplify_cache()
    set_simplify_cache_limit(64)
    try:
        x = bvvar("bound_probe", 32)
        for value in range(200):
            simplify_bool(bool_or(x == value, x + value != 3))
        stats = simplify_cache_stats()
        # Eviction keeps the memo at/below the bound (+ one batch in flight).
        assert stats["size"] <= 64 + 16
        assert stats["evictions"] > 0
        assert stats["hits"] > 0  # shared subterms hit within/between calls
    finally:
        set_simplify_cache_limit(200_000)
        clear_simplify_cache()


def test_exploration_stats_surface_simplify_cache():
    from repro.symbex.engine import Engine

    def program(state):
        x = state.new_symbol("x", 8)
        if x == 3:
            return 1
        return 0

    result = Engine().explore(program)
    stats = result.stats
    assert stats.paths == 2
    assert stats.simplify_cache_size > 0
    as_dict = stats.as_dict()
    for key in ("simplify_cache_hits", "simplify_cache_misses",
                "simplify_cache_size"):
        assert key in as_dict


# ---------------------------------------------------------------------------
# SAT core: incremental edge cases
# ---------------------------------------------------------------------------

def _pigeonhole(solver, pigeons, holes):
    """At-least-one-hole per pigeon, at-most-one-pigeon per hole (UNSAT if
    pigeons > holes)."""

    grid = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for row in grid:
        solver.add_clause(row)
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                solver.add_clause([-grid[first][hole], -grid[second][hole]])
    return grid


def test_sat_unknown_then_resolve_with_larger_budget():
    solver = SATSolver()
    _pigeonhole(solver, 5, 4)
    assert solver.solve(max_conflicts=1) == SATStatus.UNKNOWN
    # Same instance, raised budget: the answer must come back, and the
    # UNKNOWN attempt must not have corrupted the trail or the clause DB.
    assert solver.solve(max_conflicts=200_000) == SATStatus.UNSAT
    assert solver.solve() == SATStatus.UNSAT


def test_sat_conflicting_assumptions_leave_trail_clean():
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a])
    solver.add_clause([-a, b])
    assert solver.solve(assumptions=[-a]) == SATStatus.UNSAT
    # Failed assumptions must fully unwind: no decision levels left, and no
    # assumption-polluted assignments beyond the root-implied ones.
    assert solver._decision_level() == 0
    assert all(solver._level[abs(lit)] == 0 for lit in solver._trail)
    assert solver.solve(assumptions=[b]) == SATStatus.SAT
    assert solver.solve() == SATStatus.SAT
    assert solver.model_value(a) is True
    assert solver.model_value(b) is True


def test_sat_assumption_prefix_reuse_is_sound():
    solver = SATSolver()
    a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
    solver.add_clause([-a, -b, c])
    # Shared prefix [a, b] across consecutive calls exercises the
    # assumption-trail reuse path (no full re-propagation).
    assert solver.solve(assumptions=[a, b, c]) == SATStatus.SAT
    assert solver.solve(assumptions=[a, b, -c]) == SATStatus.UNSAT
    assert solver.solve(assumptions=[a, -b, -c]) == SATStatus.SAT
    assert solver.solve(assumptions=[a, b]) == SATStatus.SAT
    assert solver.model_value(c) is True
    assert solver.solve() == SATStatus.SAT


def test_sat_clause_addition_after_restart():
    solver = SATSolver(restart_first=1)  # restart on every conflict
    grid = _pigeonhole(solver, 4, 4)
    assert solver.solve() == SATStatus.SAT
    assert solver.restarts >= 0  # schedule ran; SAT may arrive pre-restart
    # Pin pigeon 0 away from every hole but the last, then re-query.
    for hole in range(3):
        solver.add_clause([-grid[0][hole]])
    assert solver.solve() == SATStatus.SAT
    assert solver.model_value(grid[0][3]) is True
    solver.add_clause([-grid[0][3]])
    assert solver.solve() == SATStatus.UNSAT


def test_sat_results_deterministic_across_restart_schedules():
    def build(**kwargs):
        solver = SATSolver(**kwargs)
        grid = _pigeonhole(solver, 4, 4)
        solver.add_clause([grid[0][0], grid[1][1]])
        return solver, grid

    statuses = []
    models = []
    for restart_first in (1, 3, 100):
        solver, grid = build(restart_first=restart_first)
        statuses.append(solver.solve())
        models.append(solver.model())
    assert statuses == [SATStatus.SAT] * 3
    # Any model must satisfy the formula regardless of the schedule.
    for model in models:
        assert model  # non-empty assignment

    unsat_statuses = []
    for restart_first in (1, 3, 100):
        solver = SATSolver(restart_first=restart_first)
        _pigeonhole(solver, 5, 4)
        unsat_statuses.append(solver.solve())
    assert unsat_statuses == [SATStatus.UNSAT] * 3


def test_sat_learned_db_reduction_triggers_and_stays_correct():
    solver = SATSolver(learned_db_base=8, learned_db_growth=1.05)
    _pigeonhole(solver, 6, 5)
    assert solver.solve() == SATStatus.UNSAT
    assert solver.db_reductions >= 1
    assert solver.learned_deleted > 0
    stats = solver.stats_dict()
    assert stats["db_reductions"] == solver.db_reductions
    assert stats["decisions"] > 0 and stats["propagations"] > 0


def test_sat_phase_saving_knob():
    for phase_saving in (True, False):
        solver = SATSolver(phase_saving=phase_saving)
        grid = _pigeonhole(solver, 3, 3)
        assert solver.solve() == SATStatus.SAT
        model = solver.model()
        for row in grid:
            assert any(model.get(var, False) for var in row)


def test_sat_binary_clause_fast_path_chain():
    solver = SATSolver()
    variables = [solver.new_var() for _ in range(12)]
    for left, right in zip(variables, variables[1:]):
        solver.add_clause([-left, right])  # left -> right
    solver.add_clause([variables[0]])
    assert solver.solve() == SATStatus.SAT
    assert all(solver.model_value(var) for var in variables)
    solver.add_clause([-variables[-1]])
    assert solver.solve() == SATStatus.UNSAT
