"""Concrete behavioural tests of the three agents.

These tests document (and pin) exactly the behaviours the paper's evaluation
reports in §5.1.2 — the reference switch's crashes, silent drops and missing
validation, Open vSwitch's strict validation and explicit errors — and the
seven injected modifications of §5.1.1.  They run the agents concretely (no
symbolic execution), which also makes them the ground truth the SOFT pipeline
is later expected to rediscover automatically.
"""

import pytest

from repro.agents import make_agent
from repro.agents.modified.mutations import MUTATIONS, detectable_mutations, undetectable_mutations
from repro.harness.driver import run_concrete_sequence
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput, ActionSetNwTos, ActionSetVlanVid
from repro.openflow.match import Match
from repro.openflow.messages import (
    EchoRequest,
    FlowMod,
    Hello,
    PacketOut,
    QueueGetConfigRequest,
    SetConfig,
    StatsRequest,
)
from repro.packetlib.builder import build_tcp_packet


def run(agent_name, inputs):
    return run_concrete_sequence(make_agent(agent_name), inputs)


def trace_kinds(result):
    return [item[0] for item in result.trace.items]


def error_codes(result):
    codes = []
    for item in result.trace.items:
        if item[0] == "ctrl_msg" and item[2][0] == "ERROR":
            codes.append((item[2][1], item[2][2]))
    return codes


def has_error(result, err_type, code):
    return (str(err_type), str(code)) in error_codes(result)


def _packet_out(actions, buffer_id=c.OFP_NO_BUFFER, data=None):
    data = data if data is not None else build_tcp_packet().to_bytes()
    message = PacketOut(xid=1, buffer_id=buffer_id, in_port=c.OFPP_NONE,
                        actions=actions, data=data)
    return [("control", message.pack())]


def _flow_mod(actions, match=None, command=c.OFPFC_ADD, flags=0, buffer_id=c.OFP_NO_BUFFER,
              idle_timeout=0, hard_timeout=0, probe=True):
    match = match if match is not None else Match.wildcard_all()
    message = FlowMod(xid=2, match=match, command=command, flags=flags,
                      idle_timeout=idle_timeout, hard_timeout=hard_timeout,
                      buffer_id=buffer_id, out_port=c.OFPP_NONE, actions=actions)
    inputs = [("control", message.pack())]
    if probe:
        inputs.append(("probe", (1, build_tcp_packet(tp_src=1234, tp_dst=80))))
    return inputs


# ---------------------------------------------------------------------------
# Shared basic behaviour (all agents)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("agent", ["reference", "ovs", "modified"])
def test_echo_is_answered(agent):
    result = run(agent, [("control", EchoRequest(xid=5, data=b"hi").pack())])
    assert ("ECHO_REPLY", 2) in [item[2] for item in result.trace.items]


@pytest.mark.parametrize("agent", ["reference", "ovs"])
def test_exact_flow_forwards_probe(agent):
    match = Match.exact_tcp(in_port=1, dl_src=0x00163E000001, dl_dst=0x00163E000002,
                            nw_src=0x0A000001, nw_dst=0x0A000002, tp_src=1234, tp_dst=80)
    result = run(agent, _flow_mod([ActionOutput(port=2, max_len=0)], match=match))
    assert "dp_out" in trace_kinds(result)


@pytest.mark.parametrize("agent", ["reference", "ovs", "modified"])
def test_table_miss_generates_packet_in(agent):
    result = run(agent, [("probe", (1, build_tcp_packet()))])
    assert any(item[0] == "ctrl_msg" and item[2][0] == "PACKET_IN" for item in result.trace.items)


# ---------------------------------------------------------------------------
# §5.1.2: Packet dropped when action is invalid (VLAN / TOS validation)
# ---------------------------------------------------------------------------

def test_ovs_silently_drops_packet_out_with_oversized_vlan():
    inputs = _packet_out([ActionSetVlanVid(vlan_vid=0x1FFF), ActionOutput(port=2)])
    result = run("ovs", inputs)
    assert result.trace.is_empty            # silently ignored, no error, no output


def test_reference_masks_oversized_vlan_and_forwards():
    inputs = _packet_out([ActionSetVlanVid(vlan_vid=0x1FFF), ActionOutput(port=2)])
    result = run("reference", inputs)
    # The reference switch crashes on set_vlan_vid in Packet Out per §5.1.2;
    # use a Flow Mod to observe the masking behaviour instead.
    flow_inputs = _flow_mod([ActionSetVlanVid(vlan_vid=0x1FFF), ActionOutput(port=2)])
    flow_result = run("reference", flow_inputs)
    assert "crash" in trace_kinds(result)
    dp_events = [item for item in flow_result.trace.items if item[0] == "dp_out"]
    assert dp_events, "reference must still forward the probe after masking the VLAN id"


def test_tos_validation_differs_between_agents():
    actions = [ActionSetNwTos(nw_tos=0x03), ActionOutput(port=2)]
    ovs_result = run("ovs", _flow_mod(actions))
    ref_result = run("reference", _flow_mod(actions))
    assert "dp_out" not in trace_kinds(ovs_result)      # OVS refuses to install
    assert "dp_out" in trace_kinds(ref_result)           # reference masks and forwards


# ---------------------------------------------------------------------------
# §5.1.2: Forwarding a packet to an invalid port
# ---------------------------------------------------------------------------

def test_in_port_equals_out_port_reference_errors_ovs_drops():
    match = Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_IN_PORT, in_port=1)
    actions = [ActionOutput(port=1, max_len=0)]
    ref_result = run("reference", _flow_mod(actions, match=match))
    ovs_result = run("ovs", _flow_mod(actions, match=match))
    assert has_error(ref_result, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
    assert not error_codes(ovs_result)
    assert "probe_dropped" in trace_kinds(ovs_result)


def test_output_port_above_max_ovs_errors_reference_accepts():
    actions = [ActionOutput(port=2000, max_len=0)]
    ref_result = run("reference", _packet_out(actions))
    ovs_result = run("ovs", _packet_out(actions))
    assert has_error(ovs_result, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
    assert not error_codes(ref_result)
    assert result_has_no_output(ref_result)


def result_has_no_output(result):
    return not any(kind in ("dp_out",) for kind in trace_kinds(result))


# ---------------------------------------------------------------------------
# §5.1.2: Lack of error messages (unknown buffer ids)
# ---------------------------------------------------------------------------

def test_unknown_buffer_id_packet_out():
    actions = [ActionOutput(port=2, max_len=0)]
    ref_result = run("reference", _packet_out(actions, buffer_id=12345, data=b""))
    ovs_result = run("ovs", _packet_out(actions, buffer_id=12345, data=b""))
    assert ref_result.trace.is_empty        # silent drop, error never propagated
    assert has_error(ovs_result, c.OFPET_BAD_REQUEST, c.OFPBRC_BUFFER_UNKNOWN)


def test_unknown_buffer_id_flow_mod_ovs_errors_but_installs():
    actions = [ActionOutput(port=2, max_len=0)]
    ovs_result = run("ovs", _flow_mod(actions, buffer_id=777))
    ref_result = run("reference", _flow_mod(actions, buffer_id=777))
    assert has_error(ovs_result, c.OFPET_BAD_REQUEST, c.OFPBRC_BUFFER_UNKNOWN)
    assert "dp_out" in trace_kinds(ovs_result)           # flow installed anyway
    assert not error_codes(ref_result)                    # reference stays silent
    assert "dp_out" in trace_kinds(ref_result)


# ---------------------------------------------------------------------------
# §5.1.2: OpenFlow agent terminates with an error (the three crashes)
# ---------------------------------------------------------------------------

def test_reference_crashes_on_packet_out_to_controller():
    result = run("reference", _packet_out([ActionOutput(port=c.OFPP_CONTROLLER)]))
    assert "crash" in trace_kinds(result)
    ovs_result = run("ovs", _packet_out([ActionOutput(port=c.OFPP_CONTROLLER)]))
    assert "crash" not in trace_kinds(ovs_result)
    assert any(item[0] == "ctrl_msg" and item[2][0] == "PACKET_IN"
               for item in ovs_result.trace.items)


def test_reference_crashes_on_queue_config_for_port_zero():
    inputs = [("control", QueueGetConfigRequest(xid=3, port=0).pack())]
    ref_result = run("reference", inputs)
    ovs_result = run("ovs", inputs)
    assert "crash" in trace_kinds(ref_result)
    assert has_error(ovs_result, c.OFPET_QUEUE_OP_FAILED, c.OFPQOFC_BAD_PORT)


def test_queue_config_for_valid_port_replies_on_both():
    inputs = [("control", QueueGetConfigRequest(xid=3, port=2).pack())]
    for agent in ("reference", "ovs"):
        result = run(agent, inputs)
        assert any(item[2][0] == "QUEUE_GET_CONFIG_REPLY" for item in result.trace.items
                   if item[0] == "ctrl_msg")


# ---------------------------------------------------------------------------
# §5.1.2: Statistics requests silently ignored
# ---------------------------------------------------------------------------

def test_unknown_stats_request_silent_vs_error():
    message = StatsRequest(xid=4, stats_type=9)
    ref_result = run("reference", [("control", message.pack())])
    ovs_result = run("ovs", [("control", message.pack())])
    assert ref_result.trace.is_empty
    assert has_error(ovs_result, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_STAT)


def test_desc_stats_answered_with_different_descriptions():
    message = StatsRequest(xid=4, stats_type=c.OFPST_DESC)
    ref_result = run("reference", [("control", message.pack())])
    ovs_result = run("ovs", [("control", message.pack())])
    assert ref_result.trace.items != ovs_result.trace.items
    assert all(items[2][0] == "STATS_REPLY" for items in ref_result.trace.items)


# ---------------------------------------------------------------------------
# §5.1.2: Missing features (emergency flows, OFPP_NORMAL)
# ---------------------------------------------------------------------------

def test_emergency_flow_supported_only_by_reference():
    actions = [ActionOutput(port=2, max_len=0)]
    ref_result = run("reference", _flow_mod(actions, flags=c.OFPFF_EMERG, probe=False))
    ovs_result = run("ovs", _flow_mod(actions, flags=c.OFPFF_EMERG, probe=False))
    assert not error_codes(ref_result)
    assert has_error(ovs_result, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_UNSUPPORTED)


def test_emergency_flow_with_timeouts_rejected_by_reference():
    actions = [ActionOutput(port=2, max_len=0)]
    result = run("reference", _flow_mod(actions, flags=c.OFPFF_EMERG, idle_timeout=5, probe=False))
    assert has_error(result, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_EMERG_TIMEOUT)


def test_ofpp_normal_supported_only_by_ovs():
    actions = [ActionOutput(port=c.OFPP_NORMAL, max_len=0)]
    ref_result = run("reference", _packet_out(actions))
    ovs_result = run("ovs", _packet_out(actions))
    assert has_error(ref_result, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
    assert any(item[0] == "dp_out" and item[2] == "NORMAL" for item in ovs_result.trace.items)


# ---------------------------------------------------------------------------
# §5.1.1: the Modified Switch mutations
# ---------------------------------------------------------------------------

def test_mutation_catalogue_has_seven_entries_five_detectable():
    assert len(MUTATIONS) == 7
    assert len(detectable_mutations()) == 5
    assert len(undetectable_mutations()) == 2


def test_modified_rejects_ports_above_injected_limit():
    actions = [ActionOutput(port=20, max_len=0)]
    reference = run("reference", _packet_out(actions))
    modified = run("modified", _packet_out(actions))
    assert "dp_out" in trace_kinds(reference)
    assert has_error(modified, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)


def test_modified_desc_stats_differ_from_reference():
    message = StatsRequest(xid=4, stats_type=c.OFPST_DESC)
    reference = run("reference", [("control", message.pack())])
    modified = run("modified", [("control", message.pack())])
    assert reference.trace.items != modified.trace.items


def test_modified_clamps_miss_send_len():
    inputs = [
        ("control", SetConfig(xid=5, flags=0, miss_send_len=120).pack()),
        ("probe", (1, build_tcp_packet(payload=b"\x00" * 100))),
    ]
    reference = run("reference", inputs)
    modified = run("modified", inputs)
    ref_packet_in = [item[2] for item in reference.trace.items if item[2][0] == "PACKET_IN"]
    mod_packet_in = [item[2] for item in modified.trace.items if item[2][0] == "PACKET_IN"]
    assert ref_packet_in[0][4] == 120
    assert mod_packet_in[0][4] == 64


def test_modified_flood_drops_packets():
    actions = [ActionOutput(port=c.OFPP_FLOOD, max_len=0)]
    reference = run("reference", _packet_out(actions))
    modified = run("modified", _packet_out(actions))
    assert any(item[0] == "dp_out" and item[2] == "FLOOD" for item in reference.trace.items)
    assert not any(item[0] == "dp_out" for item in modified.trace.items)


def test_modified_modify_of_missing_flow_is_error():
    actions = [ActionOutput(port=2, max_len=0)]
    reference = run("reference", _flow_mod(actions, command=c.OFPFC_MODIFY))
    modified = run("modified", _flow_mod(actions, command=c.OFPFC_MODIFY))
    assert not error_codes(reference)          # MODIFY of nothing behaves like ADD
    assert has_error(modified, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_COMMAND)


def test_modified_hello_mutation_is_invisible_to_soft_sequences():
    # SOFT never sends a HELLO after the handshake, so this difference is
    # structurally invisible to its input sequences (paper §5.1.1).
    reference = run("reference", [("control", EchoRequest(xid=6).pack())])
    modified = run("modified", [("control", EchoRequest(xid=6).pack())])
    assert reference.trace.items == modified.trace.items
    # A HELLO carrying version-negotiation elements (which SOFT never sends)
    # would reveal the difference:
    extended_hello = Hello(xid=7).pack()
    extended_hello.write_bytes(b"\x00\x01\x00\x08\x00\x00\x00\x02")
    raw = bytearray(extended_hello.to_bytes())
    raw[2:4] = len(raw).to_bytes(2, "big")
    from repro.wire.buffer import SymBuffer
    ref_hello = run("reference", [("control", SymBuffer(bytes(raw)))])
    mod_hello = run("modified", [("control", SymBuffer(bytes(raw)))])
    assert ref_hello.trace.items != mod_hello.trace.items


def test_crashed_agent_ignores_subsequent_inputs():
    inputs = _packet_out([ActionOutput(port=c.OFPP_CONTROLLER)]) + \
        [("control", EchoRequest(xid=9, data=b"x").pack())]
    result = run("reference", inputs)
    assert trace_kinds(result) == ["crash"]
