"""Witness triage subsystem: diffs, minimization, clustering, corpus replay.

The integration tests run one small campaign (reference vs modified on the
cheap seed tests) through the default triage pipeline and assert the paper's
§3.5 properties: every inconsistency is replay-confirmed, duplicates collapse
into clusters, minimized witnesses are strictly smaller, and the persisted
corpus replays without a single solver query.
"""

import json
import pickle

import pytest

from repro.agents.common.base import AgentConfig, OpenFlowAgent
from repro.agents.registry import make_agent
from repro.cli.main import main as cli_main
from repro.core.artifacts import load_witness_bundle, save_witness_bundle
from repro.core.campaign import Campaign
from repro.core.corpus import WitnessCorpus
from repro.core.testcase import build_testcase, replay_testcase
from repro.core.tests_catalog import get_test
from repro.core.trace import OutputTrace, event_kind
from repro.core.witness import (
    DivergenceSignature,
    TriageIndex,
    Witness,
    minimize_witness,
)
from repro.errors import ReplayMismatchError, WitnessError
from repro.harness.inputs import ControlMessageInput, ProbeInput
from repro.symbex.solver.incremental import GroupEncoding
from repro.symbex.solver.solver import Solver
from repro.wire.buffer import SymBuffer


# ---------------------------------------------------------------------------
# Trace diffs and event kinds
# ---------------------------------------------------------------------------

def test_diff_identical_traces():
    trace = OutputTrace(items=(("ctrl_msg", 0, ("BARRIER_REPLY",)),))
    diff = trace.diff(OutputTrace(items=trace.items))
    assert not diff.diverged
    assert diff.index == -1
    assert "identical" in diff.describe()


def test_diff_first_divergence_and_kinds():
    a = OutputTrace(items=(
        ("ctrl_msg", 0, ("BARRIER_REPLY",)),
        ("dp_out", 1, "1", "flow{...}", 60),
    ))
    b = OutputTrace(items=(
        ("ctrl_msg", 0, ("BARRIER_REPLY",)),
        ("ctrl_msg", 1, ("ERROR", "2", "4")),
    ))
    diff = a.diff(b)
    assert diff.diverged and diff.index == 1
    assert diff.kind_a == ("dp_out",)
    assert diff.kind_b == ("ctrl_msg", "ERROR", "2", "4")


def test_diff_prefix_trace_reports_end():
    a = OutputTrace(items=(("crash", 0),))
    b = OutputTrace(items=(("crash", 0), ("dp_out", 1, "2", "x", 3)))
    diff = a.diff(b)
    assert diff.index == 1
    assert diff.kind_a is None
    assert diff.kind_b == ("dp_out",)
    # Symmetric case.
    diff = b.diff(a)
    assert diff.kind_a == ("dp_out",) and diff.kind_b is None


def test_event_kind_drops_volatile_fields():
    # Input indices, ports and payload lengths never reach the kind.
    assert event_kind(("dp_out", 3, "17", "flow{...}", 1500)) == ("dp_out",)
    assert event_kind(("crash", 2)) == ("crash",)
    assert event_kind(("ctrl_msg", 1, ("PACKET_IN", "1", "0", "buffered", 128))) \
        == ("ctrl_msg", "PACKET_IN")
    # Error type/code distinguish root causes and are kept.
    assert event_kind(("ctrl_msg", 0, ("ERROR", "3", "4"))) \
        == ("ctrl_msg", "ERROR", "3", "4")
    assert event_kind(None) is None


def test_signature_round_trip_and_matching():
    signature = DivergenceSignature(
        test_key="flow_mod", agent_a="reference", agent_b="modified",
        index=0, kind_a=("dp_out",), kind_b=("ctrl_msg", "ERROR", "2", "4"))
    rebuilt = DivergenceSignature.from_obj(
        json.loads(json.dumps(signature.to_obj())))
    assert rebuilt == signature
    assert rebuilt.key() == signature.key()
    with pytest.raises(WitnessError):
        DivergenceSignature.from_obj({"test": "x"})


# ---------------------------------------------------------------------------
# Testcase materialization: unbound recording, factories, error paths
# ---------------------------------------------------------------------------

def test_build_testcase_records_unbound_variables():
    spec = get_test("short_symb")
    partial = {"ss.type": 0x12, "ss.length": 10}
    testcase = build_testcase(spec, partial)
    assert "ss.xid" in testcase.unbound_variables
    assert "ss.body0" in testcase.unbound_variables
    assert "ss.type" not in testcase.unbound_variables
    assert "unbound" in testcase.describe()
    # A fully bound assignment records nothing.
    full = dict(partial, **{"ss.xid": 1, "ss.body0": 2, "ss.body1": 3})
    assert build_testcase(spec, full).unbound_variables == []


def test_probe_port_concretization_and_unbound_recording():
    from repro.core.tests_catalog import TestSpec

    def symbolic_probe(state):
        port = state.new_symbol("probe.port", 16)
        frame = SymBuffer(b"\x01\x02\x03\x04")
        return port, frame

    spec = TestSpec(key="probe_port_test", title="probe", description="probe",
                    inputs=[ProbeInput("symbolic_probe", symbolic_probe)],
                    message_count=1)
    bound = build_testcase(spec, {"probe.port": 7})
    kind, (port, frame) = bound.inputs[0]
    assert kind == "probe" and port == 7
    assert bound.unbound_variables == []
    # Missing binding: port falls back to zero and the name is recorded.
    unbound = build_testcase(spec, {})
    _, (port, _) = unbound.inputs[0]
    assert port == 0
    assert unbound.unbound_variables == ["probe.port"]


def test_replay_outcome_surfaces_unbound_variables():
    spec = get_test("short_symb")
    testcase = build_testcase(spec, {"ss.type": 0x00})
    outcome = replay_testcase(testcase, "reference", "reference")
    assert not outcome.diverged
    assert "unbound variables zero-filled" in outcome.describe()
    assert "ss.length" in outcome.describe()


def test_replay_mismatch_error_on_required_divergence():
    spec = get_test("short_symb")
    testcase = build_testcase(spec, {})
    with pytest.raises(ReplayMismatchError):
        replay_testcase(testcase, "reference", "reference", require_divergence=True)


def test_replay_accepts_agent_factory_and_options():
    spec = get_test("concrete")
    testcase = build_testcase(spec, {})

    seen = []

    def factory(name: str) -> OpenFlowAgent:
        seen.append(name)
        return make_agent(name)

    outcome = replay_testcase(testcase, "reference", "ovs", agent_factory=factory)
    assert seen == ["reference", "ovs"]
    assert outcome.run_a.agent_name == "reference"

    # agent_options thread keyword arguments into make_agent: a one-table
    # switch reports n_tables=1 in its FEATURES_REPLY, which is observable.
    small = AgentConfig(n_tables=3)
    outcome = replay_testcase(testcase, "reference", "reference",
                              agent_options={"reference": {"config": small}})
    features_a = [item for item in outcome.run_a.trace
                  if item[2][0] == "FEATURES_REPLY"]
    assert features_a and features_a[0][2][1] == 3
    # Only the named agent gets the options (both sides here, so identical).
    assert not outcome.diverged


# ---------------------------------------------------------------------------
# The campaign triage pipeline on the seed catalog
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def triaged_campaign(tmp_path_factory):
    corpus_dir = tmp_path_factory.mktemp("witness_corpus")
    report = (Campaign(corpus_dir=str(corpus_dir))
              .with_tests("set_config", "flow_mod")
              .with_agents("reference", "modified")
              .run())
    return report, str(corpus_dir)


def test_triage_confirms_and_clusters_every_inconsistency(triaged_campaign):
    report, _ = triaged_campaign
    triage = report.triage
    assert triage is not None
    assert report.total_inconsistencies > 0
    # Every raw inconsistency became a replay-confirmed, clustered witness.
    assert triage.raw_witnesses == report.total_inconsistencies
    assert triage.confirmed_witnesses == triage.raw_witnesses
    assert triage.unconfirmed_witnesses == 0
    assert sum(cluster.size for cluster in triage.clusters) == triage.raw_witnesses
    # Deduplication collapses duplicates: at least one cluster merged >= 2.
    assert triage.merged_cluster_count >= 1
    assert triage.cluster_count < triage.raw_witnesses
    assert triage.dedup_ratio > 1.0


def test_minimized_witnesses_are_strictly_smaller(triaged_campaign):
    report, _ = triaged_campaign
    witnesses = [w for sr in report.reports for w in sr.witnesses]
    assert witnesses
    for witness in witnesses:
        stats = witness.minimization
        assert stats is not None
        assert witness.confirmed  # divergence preserved through minimization
        assert stats.reduced, "minimization did not shrink %s" % witness.signature.short()
        assert stats.minimized_variables == witness.variable_count
        assert stats.minimized_inputs == witness.input_count
        assert 0.0 < stats.shrink_ratio <= 1.0
        # Dropped variables are zero-filled and surfaced, not hidden.
        for name in stats.dropped_variables:
            assert name not in witness.assignment
            assert name in witness.testcase.unbound_variables


def test_triage_in_campaign_report_dict(triaged_campaign):
    report, _ = triaged_campaign
    data = json.loads(report.to_json())
    triage = data["triage"]
    assert triage["raw_witnesses"] == report.total_inconsistencies
    assert triage["merged_clusters"] >= 1
    assert triage["cluster_rows"]
    assert data["corpus"]["saved"] == report.corpus_saved
    assert "triage:" in report.describe()


def test_campaign_triage_can_be_disabled():
    report = (Campaign(triage=False)
              .with_tests("set_config")
              .with_agents("reference", "modified")
              .run())
    assert report.triage is None
    assert all(not sr.witnesses for sr in report.reports)


def test_corpus_dir_without_triage_is_rejected(tmp_path):
    from repro.errors import CampaignError

    campaign = (Campaign(triage=False, corpus_dir=str(tmp_path / "c"))
                .with_tests("set_config")
                .with_agents("reference", "modified"))
    with pytest.raises(CampaignError, match="requires triage"):
        campaign.run()


def test_triage_skips_unreplayable_artifact_pairs():
    # An artifact whose agent is not registered cannot be replayed; triage
    # must skip the pair, record it, and not crash the campaign.
    from repro.core.explorer import explore_agent

    artifact = explore_agent("modified", "set_config").to_dict()
    artifact["agent"] = "vendor_x"
    report = (Campaign()
              .with_agents("reference")
              .add_artifact(artifact)
              .run())
    assert report.total_inconsistencies > 0
    triage = report.triage
    assert triage.raw_witnesses == 0
    assert triage.skipped_pairs == [
        ("set_config", "reference", "vendor_x", "agent(s) not replayable")]
    assert "skipped" in triage.describe()
    # The skip reason distinguishes a disabled replay from an unreplayable agent.
    report = (Campaign(replay_testcases=False)
              .with_tests("set_config")
              .with_agents("reference", "modified")
              .run())
    assert report.triage.skipped_pairs == [
        ("set_config", "reference", "modified", "replay disabled")]


def test_crashed_agent_replay_is_a_witness():
    report = (Campaign()
              .with_tests("packet_out")
              .with_agents("reference", "modified")
              .run())
    witnesses = [w for sr in report.reports for w in sr.witnesses]
    crashed = [w for w in witnesses
               if w.replay.run_a.crashed or w.replay.run_b.crashed]
    assert crashed, "expected at least one crash-divergence witness on packet_out"
    for witness in crashed:
        assert witness.confirmed
        run = (witness.replay.run_a if witness.replay.run_a.crashed
               else witness.replay.run_b)
        # The crash is an observable trace event and survives bundling.
        assert any(item[0] == "crash" for item in run.trace)
        assert run.inputs_consumed <= len(witness.testcase.inputs)
        rebuilt = Witness.from_dict(witness.to_dict())
        assert rebuilt.replay.run_a.crashed == witness.replay.run_a.crashed


# ---------------------------------------------------------------------------
# Minimization oracle details
# ---------------------------------------------------------------------------

def test_minimize_respects_replay_budget(triaged_campaign):
    report, _ = triaged_campaign
    soft_report = next(sr for sr in report.reports if sr.witnesses)
    witness = soft_report.witnesses[0]
    spec = get_test(witness.test_key)

    calls = []

    def replayer(candidate):
        calls.append(candidate)
        return replay_testcase(candidate, witness.agent_a, witness.agent_b)

    # Rebuild an unminimized witness and minimize with a tiny budget.
    from repro.core.witness import build_witness

    raw = build_witness(spec, witness.testcase.inconsistency,
                        build_testcase(spec, witness.solver_model),
                        replay_testcase(build_testcase(spec, witness.solver_model),
                                        witness.agent_a, witness.agent_b))
    minimized = minimize_witness(raw, spec, replayer, max_replays=3)
    assert len(calls) <= 3
    assert minimized.minimization.replays <= 3
    assert minimized.confirmed


def test_minimize_returns_unconfirmed_witness_unchanged():
    spec = get_test("short_symb")
    testcase = build_testcase(spec, {})
    replay = replay_testcase(testcase, "reference", "reference")
    signature = DivergenceSignature.from_diff(
        spec.key, "reference", "reference", replay.diff())
    witness = Witness(test_key=spec.key, scale=spec.scale,
                      agent_a="reference", agent_b="reference",
                      assignment={}, testcase=testcase, replay=replay,
                      signature=signature)
    assert not witness.confirmed
    assert minimize_witness(witness, spec, lambda tc: replay) is witness


# ---------------------------------------------------------------------------
# Clustering index
# ---------------------------------------------------------------------------

def test_triage_index_merges_across_indices(triaged_campaign):
    report, _ = triaged_campaign
    witnesses = [w for sr in report.reports for w in sr.witnesses]
    left, right = TriageIndex(), TriageIndex()
    for index, witness in enumerate(witnesses):
        (left if index % 2 else right).add(witness)
    left.merge_from(right)
    merged = left.report()
    assert merged.raw_witnesses == len(witnesses)
    assert merged.cluster_count == report.triage.cluster_count
    # The representative is the smallest witness of its cluster.
    for cluster in merged.clusters:
        best = min(cluster.witnesses, key=lambda w: w.size_key())
        assert cluster.representative.size_key() == best.size_key()


# ---------------------------------------------------------------------------
# Witness bundles and the persistent corpus
# ---------------------------------------------------------------------------

def test_witness_bundle_json_and_pickle_round_trip(triaged_campaign, tmp_path):
    report, _ = triaged_campaign
    witness = report.triage.clusters[0].representative
    path = tmp_path / "bundle.witness.json"
    save_witness_bundle(witness, str(path))
    rebuilt = load_witness_bundle(str(path))
    assert rebuilt.signature == witness.signature
    assert rebuilt.assignment == witness.assignment
    assert rebuilt.solver_model == witness.solver_model
    assert rebuilt.replay.run_a.trace == witness.replay.run_a.trace
    assert rebuilt.replay.run_b.trace == witness.replay.run_b.trace
    assert rebuilt.testcase.unbound_variables == witness.testcase.unbound_variables
    assert [kind for kind, _ in rebuilt.testcase.inputs] \
        == [kind for kind, _ in witness.testcase.inputs]
    assert rebuilt.minimization.shrink_ratio == witness.minimization.shrink_ratio
    # Conditions round-trip to pointer-identical interned terms.
    assert rebuilt.condition is witness.condition

    pickled = pickle.loads(pickle.dumps(witness))
    assert pickled.signature == witness.signature
    assert pickled.replay.diverged == witness.replay.diverged

    with pytest.raises(WitnessError):
        Witness.from_dict({"format": "nope"})


def test_corpus_replays_without_solver(triaged_campaign, monkeypatch):
    report, corpus_dir = triaged_campaign
    corpus = WitnessCorpus(corpus_dir, create=False)
    assert len(corpus) == report.triage.cluster_count
    assert report.corpus_saved == len(corpus)

    def poisoned(*args, **kwargs):
        raise AssertionError("solver used during corpus replay")

    monkeypatch.setattr(Solver, "check", poisoned)
    monkeypatch.setattr(GroupEncoding, "check_pair", poisoned)
    run = corpus.run()
    assert run.ok
    assert run.replayed == len(corpus)
    assert run.count("confirmed") == run.replayed
    assert run.to_dict()["solver_queries"] == 0
    assert run.witnesses_per_sec > 0


def test_corpus_add_is_deduplicating(triaged_campaign, tmp_path):
    report, _ = triaged_campaign
    corpus = WitnessCorpus(str(tmp_path / "c"))
    witness = report.triage.clusters[0].representative
    _, added_first = corpus.add(witness)
    _, added_again = corpus.add(witness)
    assert added_first and not added_again
    assert len(corpus) == 1


def test_corpus_detects_stale_witness(tmp_path):
    # A "witness" pairing an agent with itself can never replay-diverge: the
    # corpus run must flag it stale and fail, both via the API and the CLI.
    spec = get_test("concrete")
    testcase = build_testcase(spec, {})
    replay = replay_testcase(testcase, "reference", "reference")
    witness = Witness(
        test_key=spec.key, scale=spec.scale,
        agent_a="reference", agent_b="reference",
        assignment={}, testcase=testcase, replay=replay,
        signature=DivergenceSignature(
            test_key=spec.key, agent_a="reference", agent_b="reference",
            index=0, kind_a=("crash",), kind_b=None),
    )
    corpus_dir = str(tmp_path / "stale")
    corpus = WitnessCorpus(corpus_dir)
    corpus.add(witness, overwrite=True)
    run = corpus.run()
    assert not run.ok
    assert len(run.stale) == 1
    assert run.to_dict()["stale"] == 1
    assert cli_main(["corpus", "run", "--dir", corpus_dir, "--quiet"]) == 1


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

def test_cli_triage_and_corpus_run(tmp_path, capsys):
    corpus_dir = tmp_path / "cli_corpus"
    json_path = tmp_path / "triage.json"
    code = cli_main(["triage", "--tests", "set_config",
                     "--agents", "reference,modified",
                     "--corpus", str(corpus_dir),
                     "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "triage:" in out and "cluster" in out
    data = json.loads(json_path.read_text())
    assert data["format"] == "soft/triage-report/v1"
    assert data["triage"]["confirmed_witnesses"] == data["triage"]["raw_witnesses"]
    assert data["corpus"]["saved"] >= 1

    code = cli_main(["corpus", "run", "--dir", str(corpus_dir),
                     "--json", "-"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 solver queries" in out

    code = cli_main(["corpus", "list", "--dir", str(corpus_dir)])
    assert code == 0
    assert "witness bundle(s)" in capsys.readouterr().out
