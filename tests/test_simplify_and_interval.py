"""Tests for expression simplification, substitution and the interval domain."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError
from repro.symbex.expr import (
    BoolConst,
    BVConst,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv,
    bvvar,
    concat,
    extract,
    ite,
    zero_extend,
)
from repro.symbex.interval import IntervalDomain, analyze_conjunction
from repro.symbex.simplify import (
    evaluate_bool,
    evaluate_bv,
    simplify,
    simplify_bool,
    substitute,
)


# ---------------------------------------------------------------------------
# simplify / substitute
# ---------------------------------------------------------------------------

def test_simplify_folds_constant_subterms():
    x = bvvar("x", 16)
    term = (x + 0) & 0xFFFF
    assert simplify(term) is x


def test_simplify_bool_folds_tautologies():
    x = bvvar("x", 16)
    assert simplify_bool(bool_or(x == 3, TRUE)) is TRUE
    assert simplify_bool(bool_and(x == 3, FALSE)) is FALSE
    assert simplify_bool(bool_not(bool_not(x == 3))) == (x == 3)


def test_substitute_with_integer_binding():
    x, y = bvvar("x", 16), bvvar("y", 16)
    term = x + y
    result = substitute(term, {"x": 3})
    assert evaluate_bv(result, {"y": 4}) == 7


def test_substitute_with_expression_binding():
    x, y = bvvar("x", 16), bvvar("y", 16)
    condition = x == 10
    result = substitute(condition, {"x": y + 1})
    assert evaluate_bool(result, {"y": 9})
    assert not evaluate_bool(result, {"y": 10})


def test_substitute_full_model_reduces_to_constant():
    x, y = bvvar("x", 8), bvvar("y", 8)
    condition = bool_and(x < y, (x ^ y) != 0)
    reduced = substitute(condition, {"x": 1, "y": 2})
    assert isinstance(reduced, BoolConst) and reduced.value


def test_substitute_width_mismatch_rejected():
    x = bvvar("x", 16)
    with pytest.raises(ExpressionError):
        substitute(x + 1, {"x": bvvar("wide", 32)})


def test_substitute_ignores_unused_bindings():
    x = bvvar("x", 16)
    result = substitute(x + 1, {"unused": 5, "x": 2})
    assert isinstance(result, BVConst) and result.value == 3


def test_evaluate_handles_all_node_kinds():
    x = bvvar("x", 8)
    term = ite(x > 4, concat(extract(x, 7, 4), bv(0xA, 4)), zero_extend(extract(x, 3, 0), 8))
    assert evaluate_bv(term, {"x": 0x53}) == 0x5A
    assert evaluate_bv(term, {"x": 0x03}) == 0x03


def test_evaluate_requires_binding_unless_default():
    x = bvvar("x", 8)
    with pytest.raises(ExpressionError):
        evaluate_bv(x + 1, {})
    assert evaluate_bv(x + 1, {}, default=0) == 1


def test_evaluate_signed_operations():
    x = bvvar("x", 8)
    assert evaluate_bool(x.slt(0), {"x": 0xFF})
    assert not evaluate_bool(x.slt(0), {"x": 0x7F})
    assert evaluate_bv(x.sext(16), {"x": 0x80}) == 0xFF80


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_prop_simplify_preserves_semantics(value):
    x = bvvar("x", 16)
    term = ((x ^ 0xFFFF) & 0x00FF) + (x >> 8)
    assert evaluate_bv(simplify(term), {"x": value}) == evaluate_bv(term, {"x": value})


@given(st.integers(min_value=0, max_value=0xFF), st.integers(min_value=0, max_value=0xFF))
def test_prop_substitution_then_evaluation_commutes(a, b):
    x, y = bvvar("x", 8), bvvar("y", 8)
    condition = bool_or(x + y == 10, x > y)
    direct = evaluate_bool(condition, {"x": a, "y": b})
    via_substitution = substitute(condition, {"x": a, "y": b})
    assert isinstance(via_substitution, BoolConst)
    assert via_substitution.value == direct


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------

def test_interval_bounds_and_exclusions():
    x = bvvar("x", 8)
    outcome = analyze_conjunction([x >= 10, x <= 12, x != 10, x != 12])
    assert not outcome.is_unsat
    assert outcome.verified
    assert outcome.candidate["x"] == 11


def test_interval_detects_empty_range():
    x = bvvar("x", 8)
    assert analyze_conjunction([x > 200, x < 100]).is_unsat
    assert analyze_conjunction([x == 5, x == 6]).is_unsat
    assert analyze_conjunction([x < 1, x != 0]).is_unsat


def test_interval_handles_equality_pinning():
    x, y = bvvar("x", 16), bvvar("y", 16)
    outcome = analyze_conjunction([x == 0x1234, y > 5])
    assert outcome.verified
    assert outcome.candidate["x"] == 0x1234
    assert outcome.candidate["y"] > 5


def test_interval_reversed_operand_order():
    x = bvvar("x", 8)
    outcome = analyze_conjunction([bv(10, 8) < x, bv(20, 8) >= x])
    assert not outcome.is_unsat
    assert 10 < outcome.candidate["x"] <= 20


def test_interval_unsupported_atoms_fall_through():
    x, y = bvvar("x", 8), bvvar("y", 8)
    outcome = analyze_conjunction([x + y == 10])
    assert not outcome.is_unsat


def test_interval_negated_atoms():
    x = bvvar("x", 8)
    outcome = analyze_conjunction([bool_not(x < 5), x < 7])
    assert not outcome.is_unsat
    assert outcome.candidate["x"] in (5, 6)


def test_interval_domain_incremental_api():
    domain = IntervalDomain()
    x = bvvar("x", 8)
    domain.add(x > 3)
    domain.add(x < 3)
    assert domain.is_definitely_unsat()


def test_interval_false_constant_is_contradiction():
    assert analyze_conjunction([FALSE]).is_unsat
    outcome = analyze_conjunction([TRUE])
    assert not outcome.is_unsat
