"""Tests of the incremental crosscheck engine and the max_pairs cap.

The incremental path (shared SAT instance + activation literals) must report
the exact same inconsistency set as the legacy per-query path — the legacy
path is the reference implementation, the incremental one the fast path.
"""

import itertools

import pytest

from repro.core.campaign import Campaign, EncodingCache
from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import explore_agent
from repro.core.grouping import GroupedResults, OutputGroup, group_paths
from repro.core.tests_catalog import get_test
from repro.core.trace import OutputTrace
from repro.errors import CrosscheckError, SolverError
from repro.symbex.expr import bvvar
from repro.symbex.solver import GroupEncoding, Solver, SolverConfig

AGENTS = ("reference", "ovs", "modified")


def _synthetic_grouped(agent, values, trace_tag, test_key="synthetic"):
    """Grouped results with one ``x == value`` group per value."""

    x = bvvar("x", 8)
    groups = [
        OutputGroup(trace=OutputTrace(items=((trace_tag, value),)),
                    condition=(x == value), path_ids=[index], path_count=1)
        for index, value in enumerate(values)
    ]
    return GroupedResults(agent_name=agent, test_key=test_key, groups=groups,
                          grouping_time=0.0, total_paths=len(groups))


def _trace_pairs(report):
    return {(i.trace_a, i.trace_b) for i in report.inconsistencies}


# ---------------------------------------------------------------------------
# GroupEncoding unit behaviour
# ---------------------------------------------------------------------------

def test_group_encoding_encodes_each_condition_once():
    engine = GroupEncoding()
    x = bvvar("x", 8)
    first = engine.encode(x == 3)
    again = engine.encode(x == 3)
    other = engine.encode(x == 4)
    assert first is again
    assert other is not first
    assert engine.stats.groups_encoded == 2
    assert engine.stats.encoding_reuses == 1
    assert engine.stats.backend_rebuilds == 1


def test_group_encoding_pair_queries_and_cache():
    engine = GroupEncoding()
    x = bvvar("x", 8)
    sat = engine.check_pair(x > 5, x < 9)
    assert sat.result.is_sat
    assert 5 < sat.result.model["x"] < 9
    unsat = engine.check_pair(x > 5, x < 3)
    assert unsat.result.is_unsat
    repeat = engine.check_pair(x > 5, x < 3)
    assert repeat.result.is_unsat
    assert repeat.via == "pair-cache"
    assert engine.stats.pair_cache_hits == 1
    # One engine, one backend, regardless of query count.
    assert engine.stats.backend_rebuilds == 1


def test_group_encoding_unknown_is_not_pair_cached():
    engine = GroupEncoding(SolverConfig(max_conflicts=0, use_interval_precheck=False))
    x = bvvar("x", 8)
    from repro.symbex.expr import bool_or

    condition = bool_or(x == 5, x == 9)
    first = engine.check_pair(condition, x > 0)
    assert first.result.is_unknown
    engine.config.max_conflicts = 200_000
    second = engine.check_pair(condition, x > 0)
    assert second.result.is_sat
    assert second.via == "assumption"
    assert engine.stats.pair_cache_hits == 0


def test_group_encoding_rejects_cross_test_reuse():
    engine = GroupEncoding()
    engine.bind_test("stats_request")
    engine.bind_test("stats_request")
    with pytest.raises(SolverError):
        engine.bind_test("set_config")


def test_soft_crosscheck_threads_solver_config():
    # The incremental default must honour the instance's solver_config: a
    # zero conflict budget shows up as an UNKNOWN pair instead of being
    # silently replaced by the default 200k budget.
    from repro.core.soft import SOFT
    from repro.symbex.expr import bool_or

    x = bvvar("x", 8)
    grouped_a = _synthetic_grouped("a", [0], "a-out")
    grouped_a.groups[0].condition = bool_or(x == 5, x == 9)
    grouped_b = _synthetic_grouped("b", [0], "b-out")
    grouped_b.groups[0].condition = (x > 0)
    soft = SOFT(solver_config=SolverConfig(max_conflicts=0,
                                           use_interval_precheck=False))
    report = soft.crosscheck(grouped_a, grouped_b)
    assert report.unknown_pairs == 1
    assert SOFT().crosscheck(grouped_a, grouped_b).inconsistency_count == 1


def test_find_inconsistencies_rejects_conflicting_modes():
    grouped = _synthetic_grouped("a", [1], "out")
    other = _synthetic_grouped("b", [2], "other")
    with pytest.raises(CrosscheckError):
        find_inconsistencies(grouped, other, engine=GroupEncoding(),
                             solver=Solver(SolverConfig()))


# ---------------------------------------------------------------------------
# max_pairs cap (global accounting)
# ---------------------------------------------------------------------------

def test_max_pairs_cap_is_global_across_the_pair_matrix():
    grouped_a = _synthetic_grouped("a", [1, 2, 3], "a-out")
    grouped_b = _synthetic_grouped("b", [1, 2, 3], "b-out")
    # 9 candidate pairs (all traces differ); the cap must bound the total.
    for mode in ("incremental", "legacy"):
        kwargs = {} if mode == "incremental" else {"solver": Solver(SolverConfig())}
        report = find_inconsistencies(grouped_a, grouped_b, max_pairs=4, **kwargs)
        assert report.queries == 4
        assert report.truncated is True
        full = find_inconsistencies(grouped_a, grouped_b,
                                    **({} if mode == "incremental"
                                       else {"solver": Solver(SolverConfig())}))
        assert full.queries == 9
        assert full.truncated is False
        # x==i AND x==j is satisfiable exactly when i == j.
        assert full.inconsistency_count == 3


def test_max_pairs_zero_queries_nothing():
    grouped_a = _synthetic_grouped("a", [1, 2], "a-out")
    grouped_b = _synthetic_grouped("b", [1, 2], "b-out")
    report = find_inconsistencies(grouped_a, grouped_b, max_pairs=0)
    assert report.queries == 0
    assert report.truncated is True
    assert report.inconsistency_count == 0


def test_deadline_truncates_the_pair_scan():
    grouped_a = _synthetic_grouped("a", [1, 2, 3], "a-out")
    grouped_b = _synthetic_grouped("b", [1, 2, 3], "b-out")

    class TickClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            self.now += 1.0
            return self.now

    # Deadline already expired at the first read: no query runs.
    expired = find_inconsistencies(grouped_a, grouped_b, deadline=0.0,
                                   clock=TickClock())
    assert expired.queries == 0
    assert expired.truncated is True
    # Deadline after a few ticks: the scan stops partway, flagged truncated,
    # instead of solving all 9 candidate pairs.
    partial = find_inconsistencies(grouped_a, grouped_b, deadline=3.5,
                                   clock=TickClock())
    assert partial.truncated is True
    assert 0 < partial.queries < 9
    # No deadline: the injected clock is never consulted.
    full = find_inconsistencies(grouped_a, grouped_b)
    assert full.queries == 9
    assert full.truncated is False


# ---------------------------------------------------------------------------
# Equivalence with the legacy path on the seed catalog
# ---------------------------------------------------------------------------

def test_incremental_matches_legacy_on_seed_catalog():
    for test in ("stats_request", "set_config"):
        grouped = {agent: group_paths(explore_agent(agent, test))
                   for agent in AGENTS}
        engine = GroupEncoding()
        for agent_a, agent_b in itertools.combinations(AGENTS, 2):
            legacy = find_inconsistencies(grouped[agent_a], grouped[agent_b],
                                          solver=Solver(SolverConfig()))
            incremental = find_inconsistencies(grouped[agent_a], grouped[agent_b],
                                               engine=engine)
            assert _trace_pairs(incremental) == _trace_pairs(legacy)
            assert incremental.queries == legacy.queries
            assert incremental.unsat_pairs == legacy.unsat_pairs
            assert incremental.unknown_pairs == legacy.unknown_pairs
            assert incremental.solver_stats["mode"] == "incremental"
            assert legacy.solver_stats["mode"] == "legacy"
            # Every SAT example is a real model of both group conditions
            # (verified inside the engine), so divergence witnesses hold.
            for inconsistency in incremental.inconsistencies:
                assert inconsistency.example
        # The shared engine bit-blasted each agent's groups once for all
        # pairs of this test, on a single SAT backend.
        stats = engine.stats_dict()
        assert stats["backend_rebuilds"] == 1
        assert stats["encoding_reuses"] > 0


# ---------------------------------------------------------------------------
# Campaign integration: shared per-test engines
# ---------------------------------------------------------------------------

def test_encoding_cache_shares_one_engine_per_test():
    cache = EncodingCache()
    spec = get_test("stats_request")
    other = get_test("set_config")
    assert cache.engine_for(spec) is cache.engine_for(spec)
    assert cache.engine_for(spec) is not cache.engine_for(other)
    assert cache.engine_count == 2


def test_campaign_incremental_matches_legacy_and_bounds_rebuilds():
    def run(incremental):
        return (Campaign(replay_testcases=False, incremental=incremental)
                .with_tests("stats_request", "set_config")
                .with_agents(*AGENTS)
                .run())

    fast = run(True)
    slow = run(False)
    assert fast.pair_count == slow.pair_count == 6
    for report in fast.reports:
        twin = slow.report_for(report.test_key, report.agent_a, report.agent_b)
        assert _trace_pairs(report.crosscheck) == _trace_pairs(twin.crosscheck)
    # One backend per test, not one per pair query.
    assert fast.solver_stats["mode"] == "incremental"
    assert fast.solver_stats["engines"] == 2
    assert fast.solver_stats["backend_rebuilds"] == 2 < fast.pair_count
    assert fast.solver_stats["encoding_reuses"] > 0
    assert slow.solver_stats["mode"] == "legacy"
    assert slow.solver_stats["sat_backend_runs"] >= 0
    # Stats surface identically in the JSON report and the CLI table.
    assert fast.to_dict()["solver_stats"] == fast.solver_stats
    assert fast.to_dict()["incremental"] is True
    assert "phase 2b: incremental" in fast.describe()
    assert "phase 2b: legacy" in slow.describe()


def test_campaign_rerun_solver_stats_are_per_run():
    campaign = Campaign(tests=["set_config"], agents=["reference", "modified"],
                        replay_testcases=False)
    first = campaign.run()
    assert first.solver_stats["groups_encoded"] > 0
    assert first.solver_stats["backend_rebuilds"] == 1
    second = campaign.run()
    # Engines persist across runs; the report must show THIS run's work only.
    assert second.solver_stats["groups_encoded"] == 0
    assert second.solver_stats["backend_rebuilds"] == 0
    assert second.solver_stats["assumption_solves"] == 0
    assert second.solver_stats["pair_cache_hits"] == second.total_queries


def test_cli_campaign_no_incremental_flag():
    from repro.cli.main import build_parser

    args = build_parser().parse_args(["campaign", "--tests", "concrete",
                                      "--agents", "reference,ovs",
                                      "--no-incremental"])
    assert args.no_incremental is True
