"""Tests for the SAT backend, the bit-blaster and the solver front-end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.symbex.expr import FALSE, TRUE, bool_and, bool_not, bool_or, bv, bvvar, ite
from repro.symbex.interval import analyze_conjunction
from repro.symbex.simplify import evaluate_bool
from repro.symbex.solver import SATSolver, SATStatus, Solver, SolverConfig
from repro.symbex.solver.cnf import CNFBuilder


# ---------------------------------------------------------------------------
# CDCL SAT solver
# ---------------------------------------------------------------------------

def test_sat_empty_formula_is_sat():
    assert SATSolver().solve() == SATStatus.SAT


def test_sat_single_unit_clause():
    solver = SATSolver()
    a = solver.new_var()
    solver.add_clause([a])
    assert solver.solve() == SATStatus.SAT
    assert solver.model_value(a) is True


def test_sat_contradicting_units_unsat():
    solver = SATSolver()
    a = solver.new_var()
    solver.add_clause([a])
    assert solver.add_clause([-a]) is False
    assert solver.solve() == SATStatus.UNSAT


def test_sat_simple_implication_chain():
    solver = SATSolver()
    a, b, d = solver.new_var(), solver.new_var(), solver.new_var()
    solver.add_clause([-a, b])
    solver.add_clause([-b, d])
    solver.add_clause([a])
    assert solver.solve() == SATStatus.SAT
    assert solver.model_value(d) is True


def test_sat_pigeonhole_2_into_1_unsat():
    # Two pigeons, one hole: p1h1, p2h1 must both hold but conflict.
    solver = SATSolver()
    p1, p2 = solver.new_var(), solver.new_var()
    solver.add_clause([p1])
    solver.add_clause([p2])
    solver.add_clause([-p1, -p2])
    assert solver.solve() == SATStatus.UNSAT


def test_sat_xor_chain_satisfiable():
    solver = SATSolver()
    variables = [solver.new_var() for _ in range(6)]
    # Encode pairwise "at least one differs" constraints.
    for left, right in zip(variables, variables[1:]):
        solver.add_clause([left, right])
        solver.add_clause([-left, -right])
    assert solver.solve() == SATStatus.SAT
    model = solver.model()
    for left, right in zip(variables, variables[1:]):
        assert model[left] != model[right]


def test_sat_assumptions():
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([-a, b])
    assert solver.solve(assumptions=[a, -b]) == SATStatus.UNSAT
    assert solver.solve(assumptions=[a, b]) == SATStatus.SAT
    assert solver.solve() == SATStatus.SAT


def test_sat_incremental_clause_addition_between_solves():
    # Clauses may be added after a SAT answer; the instance stays reusable.
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve() == SATStatus.SAT
    solver.add_clause([-a])
    assert solver.solve() == SATStatus.SAT
    assert solver.model_value(b) is True
    solver.add_clause([-b])
    assert solver.solve() == SATStatus.UNSAT


def test_sat_conflict_budget_is_per_call():
    # Ten independent selector-guarded conflicts: under each assumption the
    # default decision heuristic provokes exactly one fresh conflict.  With a
    # per-instance budget the later calls would exhaust it and go UNKNOWN.
    solver = SATSolver()
    selectors = []
    for _ in range(10):
        s, a, b = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clause([-s, a, b])
        solver.add_clause([-s, a, -b])
        selectors.append(s)
    statuses = [solver.solve(assumptions=[s], max_conflicts=5) for s in selectors]
    assert statuses == [SATStatus.SAT] * 10
    assert solver.solves == 10


def test_sat_rejects_unallocated_literal():
    solver = SATSolver()
    with pytest.raises(SolverError):
        solver.add_clause([5])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=-6, max_value=6).filter(lambda v: v != 0),
                         min_size=1, max_size=4), min_size=1, max_size=18))
def test_prop_sat_models_satisfy_random_formulas(clauses):
    solver = SATSolver()
    for _ in range(6):
        solver.new_var()
    trivially_unsat = False
    for clause in clauses:
        if not solver.add_clause(clause):
            trivially_unsat = True
            break
    status = solver.solve() if not trivially_unsat else SATStatus.UNSAT
    if status == SATStatus.SAT:
        model = solver.model()
        for clause in clauses:
            assert any(model.get(abs(lit), False) == (lit > 0) for lit in clause)


# ---------------------------------------------------------------------------
# CNF gate helpers
# ---------------------------------------------------------------------------

def test_cnf_gate_and_or_semantics():
    cnf = CNFBuilder()
    a, b = cnf.new_var(), cnf.new_var()
    both = cnf.gate_and([a, b])
    either = cnf.gate_or([a, b])
    cnf.assert_true(a)
    cnf.assert_false(b)
    assert cnf.solver.solve() == SATStatus.SAT
    assert cnf.solver.model_value(abs(both)) == (both > 0 and False) or True  # gate literal defined
    # AND must be false, OR must be true under a=1, b=0.
    model = cnf.solver.model()
    assert (model[abs(both)] if both > 0 else not model[abs(both)]) is False
    assert (model[abs(either)] if either > 0 else not model[abs(either)]) is True


def test_cnf_gate_xor_and_ite():
    cnf = CNFBuilder()
    a, b = cnf.new_var(), cnf.new_var()
    xor = cnf.gate_xor(a, b)
    chosen = cnf.gate_ite(a, b, -b)
    cnf.assert_true(a)
    cnf.assert_true(b)
    assert cnf.solver.solve() == SATStatus.SAT
    model = cnf.solver.model()
    assert (model[abs(xor)] if xor > 0 else not model[abs(xor)]) is False
    assert (model[abs(chosen)] if chosen > 0 else not model[abs(chosen)]) is True


def test_cnf_constants():
    cnf = CNFBuilder()
    assert cnf.const(True) == cnf.true_lit
    assert cnf.const(False) == cnf.false_lit
    assert cnf.gate_and([]) == cnf.true_lit
    assert cnf.gate_or([cnf.false_lit, cnf.false_lit]) == cnf.false_lit


# ---------------------------------------------------------------------------
# Solver front-end (bit-vector queries)
# ---------------------------------------------------------------------------

def test_solver_trivial_queries():
    solver = Solver()
    assert solver.check([]).is_sat
    assert solver.check([TRUE]).is_sat
    assert solver.check([FALSE]).is_unsat


def test_solver_simple_equation():
    solver = Solver()
    x = bvvar("x", 16)
    result = solver.check([x + 3 == 10])
    assert result.is_sat
    assert result.model["x"] == 7


def test_solver_unsat_range():
    solver = Solver()
    x = bvvar("x", 16)
    assert solver.check([x < 5, x > 10]).is_unsat


def test_solver_bitmask_constraint():
    solver = Solver()
    x = bvvar("x", 16)
    result = solver.check([(x & 0x00FF) == 0x0042, x > 0x1000])
    assert result.is_sat
    assert result.model["x"] & 0xFF == 0x42
    assert result.model["x"] > 0x1000


def test_solver_disjunction():
    solver = Solver()
    x = bvvar("x", 8)
    result = solver.check([bool_or(x == 3, x == 200), x > 100])
    assert result.is_sat
    assert result.model["x"] == 200


def test_solver_multiplication():
    solver = Solver()
    x = bvvar("x", 8)
    result = solver.check([x * 3 == 30, x < 50])
    assert result.is_sat
    assert (result.model["x"] * 3) & 0xFF == 30


def test_solver_ite_constraint():
    solver = Solver()
    x, y = bvvar("x", 8), bvvar("y", 8)
    constraint = ite(x == 1, y, bv(0, 8)) == 7
    result = solver.check([constraint])
    assert result.is_sat
    assert result.model["x"] == 1 and result.model["y"] == 7


def test_solver_signed_comparison():
    solver = Solver()
    x = bvvar("x", 8)
    result = solver.check([x.slt(0), x > 0x80])
    assert result.is_sat
    assert result.model["x"] > 0x80


def test_solver_extract_concat_constraints():
    solver = Solver()
    x = bvvar("x", 16)
    result = solver.check([x.extract(15, 8) == 0xAB, x.extract(7, 0) == 0xCD])
    assert result.is_sat
    assert result.model["x"] == 0xABCD


def test_solver_cache_hits():
    solver = Solver()
    x = bvvar("x", 16)
    solver.check([x == 4])
    solver.check([x == 4])
    assert solver.stats.cache_hits >= 1


def test_solver_unknown_results_are_not_cached():
    # A conflict budget of zero forces UNKNOWN on any query that reaches the
    # SAT backend and conflicts at least once; retrying the same query on the
    # same solver with a raised budget must reach the backend again instead of
    # replaying the stale UNKNOWN from the cache.
    solver = Solver(SolverConfig(max_conflicts=0, use_interval_precheck=False))
    x = bvvar("x", 8)
    constraints = [bool_or(x == 5, x == 9)]
    first = solver.check(constraints)
    assert first.is_unknown
    assert solver.stats.unknown_cache_skips == 1
    solver.config.max_conflicts = 200_000
    second = solver.check(constraints)
    assert second.is_sat
    assert second.model["x"] in (5, 9)
    assert solver.stats.cache_hits == 0


def test_solver_model_verification_is_on_by_default():
    assert SolverConfig().verify_models is True


def test_solver_symbolic_shift():
    solver = Solver()
    x, s = bvvar("x", 16), bvvar("s", 16)
    result = solver.check([(bv(1, 16) << s) == 8, s < 16, x == (bv(0xFFFF, 16) >> s)])
    assert result.is_sat
    assert result.model["s"] == 3
    assert result.model["x"] == 0xFFFF >> 3


def test_interval_precheck_unsat_detected_without_sat_backend():
    solver = Solver()
    x = bvvar("x", 16)
    before = solver.stats.sat_backend_runs
    assert solver.check([x > 10, x < 5]).is_unsat
    assert solver.stats.sat_backend_runs == before


def test_interval_analysis_direct():
    x = bvvar("x", 16)
    outcome = analyze_conjunction([x > 4, x < 10, x != 7])
    assert not outcome.is_unsat
    assert outcome.verified
    assert 4 < outcome.candidate["x"] < 10 and outcome.candidate["x"] != 7
    assert analyze_conjunction([x < 3, x > 3]).is_unsat


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=0xFFFF))
def test_prop_solver_models_satisfy_constraints(a, b):
    solver = Solver()
    x, y = bvvar("x", 16), bvvar("y", 16)
    constraints = [x > min(a, b), y <= max(a, b), (x ^ y) != 0]
    result = solver.check(constraints)
    if result.is_sat:
        assert all(evaluate_bool(constraint, result.model) for constraint in constraints)
    else:
        # Only possible when the range is empty, i.e. min == 0xFFFF.
        assert min(a, b) == 0xFFFF
