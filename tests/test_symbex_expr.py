"""Tests for the bit-vector / boolean expression AST."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ConcretizationError,
    ExpressionError,
    NoActiveEngineError,
    WidthMismatchError,
)
from repro.symbex.expr import (
    BVConst,
    BVVar,
    BoolConst,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv,
    bvvar,
    collect_variables,
    concat,
    expr_size,
    extract,
    ite,
    sign_extend,
    structurally_equal,
    zero_extend,
)
from repro.symbex.simplify import evaluate_bool, evaluate_bv


def test_const_masks_to_width():
    assert BVConst(0x1FF, 8).value == 0xFF
    assert BVConst(-1, 16).value == 0xFFFF


def test_const_as_int_and_index():
    value = BVConst(42, 8)
    assert int(value) == 42
    assert value.extract(3, 0).as_int() == 10
    assert [10, 20, 30][value.as_int() % 3] == 10


def test_var_requires_name_and_width():
    with pytest.raises(ExpressionError):
        BVVar("", 8)
    with pytest.raises(ExpressionError):
        BVVar("x", 0)


def test_symbolic_as_int_raises():
    with pytest.raises(ConcretizationError):
        int(bvvar("x", 8))


def test_add_constant_folding():
    assert (bv(200, 8) + 100).as_int() == (300 & 0xFF)


def test_sub_and_mul_folding():
    assert (bv(5, 16) - 10).as_int() == 0xFFFB
    assert (bv(3, 8) * 7).as_int() == 21


def test_bitwise_folding():
    assert (bv(0xF0, 8) & 0x3C).as_int() == 0x30
    assert (bv(0xF0, 8) | 0x0F).as_int() == 0xFF
    assert (bv(0xFF, 8) ^ 0x0F).as_int() == 0xF0
    assert (~bv(0x0F, 8)).as_int() == 0xF0


def test_shift_folding():
    assert (bv(1, 8) << 3).as_int() == 8
    assert (bv(0x80, 8) >> 7).as_int() == 1
    assert (bv(1, 8) << 9).as_int() == 0


def test_identity_simplifications():
    x = bvvar("x", 16)
    assert (x + 0) is x
    assert (x | 0) is x
    assert (x & 0xFFFF) is x
    assert (x & 0).as_int() == 0
    assert (x * 1) is x
    assert structurally_equal(~(~x), x)


def test_width_mismatch_rejected():
    with pytest.raises(WidthMismatchError):
        bvvar("a", 8) + bvvar("b", 16)


def test_bool_operand_rejected():
    with pytest.raises(ExpressionError):
        bvvar("a", 8) + True


def test_comparison_folding():
    assert (bv(3, 8) < 5) is TRUE
    assert (bv(7, 8) < 5) is FALSE
    assert (bv(5, 8) == 5) is TRUE
    assert (bv(5, 8) != 5) is FALSE
    assert (bv(0xFF, 8) > 0) is TRUE


def test_signed_comparisons():
    assert bv(0xFF, 8).slt(0) is TRUE       # 0xFF is -1 signed
    assert bv(0x7F, 8).slt(0) is FALSE
    assert bv(0x80, 8).sle(bv(0x80, 8)) is TRUE


def test_self_comparison_simplifies():
    x = bvvar("x", 8)
    assert (x == x) is TRUE
    assert (x != x) is FALSE
    assert (x <= x) is TRUE
    assert (x < x) is FALSE


def test_symbolic_comparison_builds_atom():
    x = bvvar("x", 8)
    atom = x == 3
    assert not atom.is_concrete
    assert "x" in collect_variables(atom)


def test_extract_of_constant():
    assert extract(bv(0xABCD, 16), 15, 8).as_int() == 0xAB
    assert extract(bv(0xABCD, 16), 7, 0).as_int() == 0xCD


def test_extract_full_width_is_identity():
    x = bvvar("x", 16)
    assert extract(x, 15, 0) is x


def test_extract_of_extract_composes():
    x = bvvar("x", 32)
    inner = extract(x, 23, 8)
    outer = extract(inner, 7, 0)
    assert outer.key() == extract(x, 15, 8).key()


def test_invalid_extract_rejected():
    with pytest.raises(ExpressionError):
        extract(bvvar("x", 8), 8, 0)


def test_concat_of_constants_folds():
    assert concat(bv(0xAB, 8), bv(0xCD, 8)).as_int() == 0xABCD


def test_concat_rejoins_adjacent_extracts():
    x = bvvar("x", 16)
    high = extract(x, 15, 8)
    low = extract(x, 7, 0)
    assert concat(high, low) is x


def test_concat_width():
    value = concat(bvvar("a", 8), bvvar("b", 16), bvvar("c", 8))
    assert value.width == 32


def test_zero_extend_and_sign_extend():
    assert zero_extend(bv(0xFF, 8), 16).as_int() == 0x00FF
    assert sign_extend(bv(0xFF, 8), 16).as_int() == 0xFFFF
    x = bvvar("x", 8)
    assert zero_extend(x, 8) is x
    with pytest.raises(ExpressionError):
        zero_extend(bvvar("x", 16), 8)


def test_ite_folding():
    x = bvvar("x", 8)
    assert ite(TRUE, x, bv(0, 8)) is x
    assert ite(FALSE, x, bv(3, 8)).as_int() == 3
    assert ite(x == 1, x, x) is x


def test_bool_not_negates_comparison():
    x = bvvar("x", 8)
    negated = bool_not(x == 5)
    assert negated.key()[1] == "ne"
    assert bool_not(negated) == (x == 5)


def test_bool_and_or_folding():
    x = bvvar("x", 8)
    cond = x == 1
    assert bool_and(True, cond) == cond
    assert bool_and(False, cond) is FALSE
    assert bool_or(True, cond) is TRUE
    assert bool_or(False, cond) == cond
    assert bool_and(cond, cond) == cond


def test_bool_nary_flattening():
    x = bvvar("x", 8)
    a, b, d = x == 1, x == 2, x == 3
    nested = bool_and(a, bool_and(b, d))
    assert len(nested.operands) == 3


def test_truth_test_outside_engine_raises():
    x = bvvar("x", 8)
    with pytest.raises(NoActiveEngineError):
        bool(x == 5)
    with pytest.raises(NoActiveEngineError):
        if x:  # pragma: no cover - the branch never executes
            pass


def test_expr_size_counts_shared_subterms_once():
    x = bvvar("x", 16)
    term = (x + 1) ^ (x + 1)
    assert expr_size(term) == 4  # xor, add, x, 1


def test_collect_variables_width_conflict():
    from repro.symbex.expr import BoolAnd

    a = bvvar("v", 8) == 1
    b = bvvar("v", 16) == 2
    with pytest.raises(ExpressionError):
        collect_variables(BoolAnd([a, b]))


def test_keys_are_structural():
    assert (bvvar("x", 8) + 1).key() == (bvvar("x", 8) + 1).key()
    assert (bvvar("x", 8) + 1).key() != (bvvar("x", 8) + 2).key()


# ---------------------------------------------------------------------------
# Property-based tests: constant folding agrees with big-int evaluation
# ---------------------------------------------------------------------------

u16 = st.integers(min_value=0, max_value=0xFFFF)


@given(u16, u16)
def test_prop_add_matches_python(a, b):
    assert (bv(a, 16) + b).as_int() == (a + b) & 0xFFFF


@given(u16, u16)
def test_prop_sub_matches_python(a, b):
    assert (bv(a, 16) - b).as_int() == (a - b) & 0xFFFF


@given(u16, u16)
def test_prop_and_or_xor(a, b):
    assert (bv(a, 16) & b).as_int() == a & b
    assert (bv(a, 16) | b).as_int() == a | b
    assert (bv(a, 16) ^ b).as_int() == a ^ b


@given(u16, u16)
def test_prop_unsigned_comparisons(a, b):
    assert ((bv(a, 16) < b) is TRUE) == (a < b)
    assert ((bv(a, 16) <= b) is TRUE) == (a <= b)
    assert ((bv(a, 16) == b) is TRUE) == (a == b)


@given(u16, st.integers(min_value=0, max_value=20))
def test_prop_shifts(a, shift):
    expected_left = (a << shift) & 0xFFFF if shift < 16 else 0
    expected_right = a >> shift if shift < 16 else 0
    assert (bv(a, 16) << shift).as_int() == expected_left
    assert (bv(a, 16) >> shift).as_int() == expected_right


@given(u16)
def test_prop_extract_concat_roundtrip(a):
    value = bv(a, 16)
    assert concat(extract(value, 15, 8), extract(value, 7, 0)).as_int() == a


@given(u16, u16)
def test_prop_symbolic_evaluation_matches(a, b):
    x, y = bvvar("x", 16), bvvar("y", 16)
    term = (x + y) ^ (x & y)
    assert evaluate_bv(term, {"x": a, "y": b}) == ((a + b) & 0xFFFF) ^ (a & b)


@given(u16, u16)
def test_prop_boolean_evaluation_matches(a, b):
    x, y = bvvar("x", 16), bvvar("y", 16)
    condition = bool_or(x < y, x == y)
    assert evaluate_bool(condition, {"x": a, "y": b}) == (a <= b)
