"""Tests for the harness driver, trace normalization, events and agent context."""

import pytest

from repro.agents import AGENT_REGISTRY, make_agent
from repro.agents.common.context import RecordingContext
from repro.core.events import (
    AgentCrashEvent,
    ControllerMessageEvent,
    DataplaneOutEvent,
    ProbeDroppedEvent,
)
from repro.core.trace import OutputTrace, normalize_events, normalize_message
from repro.core.variants import concretization_spec
from repro.errors import HarnessError
from repro.harness.driver import TestDriver, run_concrete_sequence
from repro.harness.inputs import ControlMessageInput, ProbeInput
from repro.openflow import constants as c
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    ErrorMsg,
    FlowRemoved,
    GetConfigReply,
    Hello,
    PacketIn,
    QueueGetConfigReply,
    StatsReply,
)
from repro.packetlib.builder import build_tcp_packet
from repro.symbex.engine import Engine
from repro.symbex.state import PathState


# ---------------------------------------------------------------------------
# Agent registry
# ---------------------------------------------------------------------------

def test_agent_registry_contents():
    assert set(AGENT_REGISTRY) == {"reference", "ovs", "modified"}
    for name in AGENT_REGISTRY:
        agent = make_agent(name)
        assert agent.NAME == name
        assert agent.ports.count == 24
    with pytest.raises(KeyError):
        make_agent("unknown-switch")


# ---------------------------------------------------------------------------
# RecordingContext and events
# ---------------------------------------------------------------------------

def test_recording_context_records_in_order():
    ctx = RecordingContext()
    ctx.set_input_index(3)
    ctx.send_to_controller(BarrierReply(xid=1))
    ctx.output_packet(2, "flow{}", 60)
    ctx.crash("boom")
    ctx.probe_dropped()
    assert len(ctx) == 4
    kinds = [event.normalized()[0] for event in ctx.events]
    assert kinds == ["ctrl_msg", "dp_out", "crash", "probe_dropped"]
    assert all(event.normalized()[1] == 3 for event in ctx.events)


def test_context_sink_forwarding():
    forwarded = []
    ctx = RecordingContext(sink=forwarded.append)
    ctx.send_to_controller(BarrierReply())
    assert len(forwarded) == 1 and isinstance(forwarded[0], ControllerMessageEvent)


def test_event_normalization_shapes():
    crash = AgentCrashEvent(reason="why", input_index=1)
    assert crash.normalized() == ("crash", 1)  # reason wording is normalized away
    dropped = ProbeDroppedEvent(input_index=2)
    assert dropped.normalized() == ("probe_dropped", 2)
    out = DataplaneOutEvent(port=7, frame_summary="flow{}", length=10, input_index=0)
    assert out.normalized() == ("dp_out", 0, "7", "flow{}", 10)


# ---------------------------------------------------------------------------
# Message normalization
# ---------------------------------------------------------------------------

def test_normalize_error_and_echo():
    assert normalize_message(ErrorMsg(err_type=2, code=4)) == ("ERROR", "2", "4")
    assert normalize_message(EchoReply(data=b"abc")) == ("ECHO_REPLY", 3)


def test_normalize_packet_in_hides_buffer_id_values():
    first = normalize_message(PacketIn(buffer_id=1, in_port=3, reason=0, data=b"x" * 10))
    second = normalize_message(PacketIn(buffer_id=99, in_port=3, reason=0, data=b"x" * 10))
    assert first == second            # different buffer ids are not an inconsistency
    unbuffered = normalize_message(PacketIn(buffer_id=c.OFP_NO_BUFFER, in_port=3,
                                            reason=0, data=b"x" * 10))
    assert unbuffered != first


def test_normalize_xid_is_ignored():
    a = normalize_message(GetConfigReply(xid=1, flags=0, miss_send_len=128))
    b = normalize_message(GetConfigReply(xid=999, flags=0, miss_send_len=128))
    assert a == b


def test_normalize_various_reply_types():
    assert normalize_message(StatsReply(stats_type=3, summary="table(...)"))[0] == "STATS_REPLY"
    assert normalize_message(BarrierReply()) == ("BARRIER_REPLY",)
    assert normalize_message(QueueGetConfigReply(port=2, queues=[1, 2]))[2] == 2
    assert normalize_message(FlowRemoved(reason=2, priority=7)) == ("FLOW_REMOVED", "2", "7")
    assert normalize_message(Hello())[0] == "HELLO"


def test_output_trace_from_events_and_ordering_matters():
    events_a = [ControllerMessageEvent(BarrierReply(), input_index=0),
                DataplaneOutEvent(port=1, frame_summary="f", length=3, input_index=1)]
    events_b = list(reversed(events_a))
    assert OutputTrace.from_events(events_a) != OutputTrace.from_events(events_b)
    assert normalize_events(events_a)[0][0] == "ctrl_msg"


# ---------------------------------------------------------------------------
# TestDriver (symbolic program construction)
# ---------------------------------------------------------------------------

def _simple_inputs():
    def build_message(state: PathState):
        from repro.openflow.messages import EchoRequest

        return EchoRequest(xid=1, data=b"zz").pack()

    def build_probe(state: PathState):
        return 1, build_tcp_packet()

    return [ControlMessageInput("echo", build_message, symbolic=False),
            ProbeInput("probe", build_probe)]


def test_driver_program_runs_under_engine():
    driver = TestDriver(agent_factory=lambda: make_agent("reference"), inputs=_simple_inputs())
    result = Engine().explore(driver.program)
    assert result.path_count == 1
    trace = result.paths[0].result
    assert isinstance(trace, OutputTrace)
    kinds = [item[0] for item in trace.items]
    assert kinds == ["ctrl_msg", "ctrl_msg"]   # echo reply + packet_in for the probe


def test_driver_records_probe_drop_when_no_output():
    # An OVS flow that outputs back to the ingress port drops the probe.
    from repro.openflow.actions import ActionOutput
    from repro.openflow.match import Match
    from repro.openflow.messages import FlowMod

    def build_flow(state: PathState):
        match = Match(wildcards=c.OFPFW_ALL & ~c.OFPFW_IN_PORT, in_port=1)
        return FlowMod(match=match, command=c.OFPFC_ADD,
                       actions=[ActionOutput(port=1)]).pack()

    def build_probe(state: PathState):
        return 1, build_tcp_packet()

    driver = TestDriver(agent_factory=lambda: make_agent("ovs"),
                        inputs=[ControlMessageInput("flow", build_flow, symbolic=False),
                                ProbeInput("probe", build_probe)])
    result = Engine().explore(driver.program)
    assert result.path_count == 1
    assert ("probe_dropped", 1) in result.paths[0].result.items


def test_driver_rejects_unknown_input_kind():
    driver = TestDriver(agent_factory=lambda: make_agent("reference"), inputs=[object()])
    result = Engine().explore(driver.program)
    assert result.paths[0].error is not None and "HarnessError" in result.paths[0].error


def test_run_concrete_sequence_rejects_unknown_kind():
    with pytest.raises(HarnessError):
        run_concrete_sequence(make_agent("reference"), [("bogus", None)])


def test_run_concrete_sequence_without_handshake():
    result = run_concrete_sequence(make_agent("reference"), [], perform_handshake=False)
    assert result.trace.is_empty
    assert not result.crashed


def test_table5_symbolic_probe_spec_explores_multiple_paths():
    spec = concretization_spec("symbolic_probe")
    from repro.core.explorer import explore_agent

    report = explore_agent("reference", spec)
    assert report.path_count >= 1
    assert report.test_key == "table5_symbolic_probe"
