"""Compiled evaluation engine: differential sweep + cache/pickle unit tests.

The compiled register-tape evaluator (:mod:`repro.symbex.compile`) replaced
the recursive tree-walk interpreter as the one concrete-evaluation engine of
the stack, so its contract is bit-identical results.  The heart of this file
is a differential sweep: every path-condition constraint the seed catalog
produces is evaluated compiled vs interpreted under several assignments, and
``run_batch`` must equal N independent ``run`` calls.  The rest unit-tests
the process-wide :class:`CompiledCache` (bounds, eviction, stats merging)
and the pickle / process-pool behavior workers rely on.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random

import pytest

from repro.core.explorer import explore_agent
from repro.errors import ExpressionError
from repro.symbex.compile import (
    CompiledProgram,
    clear_compiled_cache,
    compile_term,
    compiled_cache_stats,
    evaluate_compiled,
    evaluate_compiled_bool,
    set_compiled_cache_limit,
)
from repro.symbex.engine import Engine, explore_parallel
from repro.symbex.expr import (
    BVBinOp,
    bool_and,
    bool_not,
    bool_or,
    bv,
    bvvar,
    concat,
    extract,
    ite,
    sign_extend,
    zero_extend,
)
from repro.symbex.simplify import evaluate_bool, evaluate_bv

SWEEP_AGENTS = ("reference", "ovs", "modified")
SWEEP_TEST = "packet_out"


def _assignments_for(program: CompiledProgram, rng: random.Random):
    """Zero, all-ones and two random assignments over the program's inputs."""

    names = list(program.variables.items())
    yield {name: 0 for name, _ in names}
    yield {name: (1 << width) - 1 for name, width in names}
    for _ in range(2):
        yield {name: rng.getrandbits(width) for name, width in names}


def test_seed_catalog_path_conditions_differential():
    """Every seed-catalog path condition: compiled == interpreted, bit for bit."""

    rng = random.Random(0x50F7)
    constraints = []
    for agent in SWEEP_AGENTS:
        report = explore_agent(agent, SWEEP_TEST)
        for outcome in report.outcomes:
            constraints.extend(outcome.constraints)
    assert constraints, "seed catalog produced no path conditions to sweep"

    checked = 0
    for constraint in constraints:
        program = compile_term(constraint)
        assignments = list(_assignments_for(program, rng))
        batch = program.run_batch(assignments)
        for assignment, batched in zip(assignments, batch):
            interpreted = int(evaluate_bool(constraint, assignment))
            assert program.run(assignment) == batched == interpreted
            checked += 1
    assert checked >= 4 * len(constraints)


def test_run_batch_equals_n_runs_on_bv_terms():
    rng = random.Random(7)
    x, y, s = bvvar("x", 16), bvvar("y", 16), bvvar("s", 4)
    terms = [
        x + y,
        x - y,
        x * y,
        BVBinOp("udiv", x, y | 1),
        BVBinOp("urem", x, y | 1),
        (x & y) ^ (x | y),
        x << zero_extend(s, 16),
        x >> zero_extend(s, 16),
        concat(extract(x, 15, 8), extract(y, 7, 0)),
        sign_extend(extract(x, 7, 0), 16),
        ite(x == y, x, y + 1),
    ]
    for term in terms:
        program = compile_term(term)
        assignments = [
            {name: rng.getrandbits(width)
             for name, width in program.variables.items()}
            for _ in range(8)
        ]
        assert program.run_batch(assignments) == \
            [program.run(a) for a in assignments]
        for assignment in assignments:
            assert program.run(assignment) == evaluate_bv(term, assignment)


def test_missing_binding_raises_unless_defaulted():
    x = bvvar("x_missing", 8)
    program = compile_term(x + 1)
    with pytest.raises(ExpressionError):
        program.run({})
    assert program.run({}, default=0) == 1
    # Defaults are masked to the variable width, like the interpreter.
    assert program.run({}, default=0x1FF) == evaluate_bv(x + 1, {}, default=0x1FF)


# ---------------------------------------------------------------------------
# Width-boundary semantics (zero-extension aliasing, shift edges)
# ---------------------------------------------------------------------------


def test_zero_extend_width_boundaries():
    x = bvvar("zx", 8)
    widened = zero_extend(x, 32)
    for value in (0, 1, 0x7F, 0x80, 0xFF):
        assert evaluate_compiled(widened, {"zx": value}) == value
        assert evaluate_compiled(widened, {"zx": value}) == \
            evaluate_bv(widened, {"zx": value})
    # Out-of-width inputs mask identically on both engines.
    assert evaluate_compiled(widened, {"zx": 0x1FF}) == \
        evaluate_bv(widened, {"zx": 0x1FF}) == 0xFF


def test_shift_edge_masking():
    x, s = bvvar("shx", 8), bvvar("shs", 8)
    shl, lshr = x << s, x >> s
    for shift in (0, 1, 7, 8, 9, 255):
        for value in (0x01, 0x80, 0xAB, 0xFF):
            assignment = {"shx": value, "shs": shift}
            for term in (shl, lshr):
                assert evaluate_compiled(term, assignment) == \
                    evaluate_bv(term, assignment)
            if shift >= 8:
                assert evaluate_compiled(shl, assignment) == 0
                assert evaluate_compiled(lshr, assignment) == 0
            else:
                assert evaluate_compiled(shl, assignment) == (value << shift) & 0xFF
                assert evaluate_compiled(lshr, assignment) == value >> shift


def test_division_by_zero_matches_interpreter():
    x, y = bvvar("dvx", 8), bvvar("dvy", 8)
    assignment = {"dvx": 0xAB, "dvy": 0}
    quotient, remainder = BVBinOp("udiv", x, y), BVBinOp("urem", x, y)
    assert evaluate_compiled(quotient, assignment) == \
        evaluate_bv(quotient, assignment) == 0xFF
    assert evaluate_compiled(remainder, assignment) == \
        evaluate_bv(remainder, assignment) == 0xAB


def test_boolean_connectives_match_interpreter():
    a, b = bvvar("ba", 8), bvvar("bb", 8)
    term = bool_or(bool_and(a == 1, bool_not(b == 2)), b > 250)
    for assignment in ({"ba": 1, "bb": 0}, {"ba": 1, "bb": 2},
                       {"ba": 0, "bb": 255}, {"ba": 0, "bb": 0}):
        assert evaluate_compiled_bool(term, assignment) == \
            evaluate_bool(term, assignment)


# ---------------------------------------------------------------------------
# CompiledCache: bounds, eviction, stats
# ---------------------------------------------------------------------------


def test_cache_bounds_and_eviction():
    previous = compiled_cache_stats()["max_entries"]
    clear_compiled_cache()
    set_compiled_cache_limit(8)
    try:
        x = bvvar("ev", 32)
        for index in range(32):
            compile_term(x + index)
        stats = compiled_cache_stats()
        assert stats["size"] <= 8
        assert stats["evictions"] > 0
        assert stats["misses"] >= 32
    finally:
        set_compiled_cache_limit(previous)
        clear_compiled_cache()


def test_cache_hits_are_per_term_and_lru():
    clear_compiled_cache()
    x = bvvar("lru", 8)
    term = x * 3 + 1
    first = compile_term(term)
    before = compiled_cache_stats()["hits"]
    assert compile_term(term) is first
    assert compile_term(x * 3 + 1) is first  # hash-consing: same term object
    assert compiled_cache_stats()["hits"] == before + 2


def test_engine_surfaces_compiled_cache_stats():
    def program(state):
        value = state.new_symbol("cachestat", 8)
        if value == 3:
            state.record_event("hit")

    result = Engine().explore(program)
    as_dict = result.stats.as_dict()
    for key in ("compiled_cache_hits", "compiled_cache_misses",
                "compiled_cache_evictions", "compiled_cache_size"):
        assert key in as_dict
    assert result.stats.compiled_cache_size > 0


def test_parallel_exploration_merges_compiled_cache_stats():
    def wide_program(state):
        a = state.new_symbol("wa", 8)
        b = state.new_symbol("wb", 8)
        if a == 1:
            state.record_event("a")
        if b == 2:
            state.record_event("b")

    result = explore_parallel(lambda index: (wide_program, None), workers=3)
    merged = result.stats.as_dict()
    for key in ("compiled_cache_hits", "compiled_cache_misses",
                "compiled_cache_evictions", "compiled_cache_size"):
        assert key in merged
        assert merged[key] >= 0
    assert result.stats.compiled_cache_size > 0


# ---------------------------------------------------------------------------
# Pickle / process-pool behavior
# ---------------------------------------------------------------------------


def test_compiled_program_pickles_by_recompiling():
    x = bvvar("pik", 16)
    term = (x + 5) * 3
    program = compile_term(term)
    clone = pickle.loads(pickle.dumps(program))
    # Recompiled from the structurally pickled expression: same-process
    # round-trips re-intern to the identical term and hit the cache.
    assert clone.expr is program.expr
    assert clone.run({"pik": 41}) == program.run({"pik": 41}) == (46 * 3) & 0xFFFF


def _eval_in_child(program, assignment):
    return program.run(assignment)


def test_compiled_program_crosses_process_boundary():
    ctx = multiprocessing.get_context("fork")
    x = bvvar("proc", 16)
    program = compile_term(x * x + 1)
    with ctx.Pool(1) as pool:
        child_value = pool.apply(_eval_in_child, (program, {"proc": 12}))
    assert child_value == program.run({"proc": 12}) == 145
