"""Integration tests of the SOFT pipeline: explore, group, crosscheck, replay.

These use the cheaper Table-1 tests (stats_request, set_config, short_symb,
concrete) plus one Packet Out run so the whole pipeline stays fast enough for
CI while still exercising every stage end to end.
"""

import pytest

from repro.baselines.fuzzer import DifferentialFuzzer
from repro.baselines.oftest import default_suite, run_suite
from repro.cli.main import main as cli_main
from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import explore_agent
from repro.core.grouping import balanced_or, group_paths
from repro.core.soft import SOFT
from repro.core.testcase import build_testcase, replay_testcase
from repro.core.tests_catalog import TABLE1_TESTS, catalog, current_scale, get_test
from repro.core.trace import OutputTrace
from repro.core.variants import TABLE5_VARIANTS, concretization_spec, flow_mod_sequence_spec
from repro.coverage.tracker import CoverageTracker
from repro.openflow import constants as c
from repro.symbex.expr import bvvar
from repro.symbex.simplify import evaluate_bool


# ---------------------------------------------------------------------------
# Catalogue and variants
# ---------------------------------------------------------------------------

def test_catalog_contains_all_table1_tests():
    specs = catalog()
    assert set(specs) == set(TABLE1_TESTS)
    for key, spec in specs.items():
        assert spec.key == key
        assert spec.message_count >= 1
        assert spec.inputs


def test_get_test_unknown_key():
    with pytest.raises(KeyError):
        get_test("no_such_test")


def test_current_scale_default_is_small(monkeypatch):
    monkeypatch.delenv("SOFT_SCALE", raising=False)
    assert current_scale() == "small"
    monkeypatch.setenv("SOFT_SCALE", "paper")
    assert current_scale() == "paper"
    # Whitespace and case are normalized silently.
    monkeypatch.setenv("SOFT_SCALE", "  Paper ")
    assert current_scale() == "paper"


def test_current_scale_warns_on_invalid_value(monkeypatch):
    monkeypatch.setenv("SOFT_SCALE", "large")
    with pytest.warns(RuntimeWarning, match="small, paper"):
        assert current_scale() == "small"


def test_cli_rejects_invalid_scale(monkeypatch, capsys):
    monkeypatch.setenv("SOFT_SCALE", "large")
    assert cli_main(["list-tests"]) == 2
    err = capsys.readouterr().err
    assert "SOFT_SCALE" in err and "small, paper" in err


def test_figure4_variants_have_increasing_message_counts():
    specs = [flow_mod_sequence_spec(n) for n in (1, 2, 3)]
    assert [s.message_count for s in specs] == [2, 3, 4]
    with pytest.raises(ValueError):
        flow_mod_sequence_spec(4)


def test_table5_variants_exist():
    for variant in TABLE5_VARIANTS:
        spec = concretization_spec(variant)
        assert spec.key == "table5_%s" % variant
    with pytest.raises(ValueError):
        concretization_spec("nonsense")


# ---------------------------------------------------------------------------
# Exploration and grouping
# ---------------------------------------------------------------------------

def test_concrete_test_has_exactly_one_path():
    report = explore_agent("reference", "concrete")
    assert report.path_count == 1
    assert report.outcomes[0].constraint_size == 0
    grouped = group_paths(report)
    assert grouped.distinct_output_count == 1


def test_stats_request_exploration_reference_vs_ovs():
    reference = explore_agent("reference", "stats_request")
    ovs = explore_agent("ovs", "stats_request")
    assert reference.path_count >= 7
    assert ovs.path_count >= reference.path_count
    assert all(outcome.ok for outcome in reference.outcomes + ovs.outcomes)
    # Every path condition is satisfiable by construction.
    from repro.symbex.solver import Solver

    solver = Solver()
    for outcome in reference.outcomes:
        model = solver.get_model(outcome.constraints)
        assert model is not None
        assert all(evaluate_bool(constraint, model) for constraint in outcome.constraints)


def test_grouping_reduces_outputs_and_covers_all_paths():
    report = explore_agent("ovs", "stats_request")
    grouped = group_paths(report)
    assert grouped.distinct_output_count <= report.path_count
    assert grouped.total_paths == sum(1 for o in report.outcomes if o.ok)
    assert grouped.agent_name == "ovs"
    for group in grouped.groups:
        assert group.path_count == len(group.path_ids)


def test_balanced_or_equivalence():
    x = bvvar("x", 8)
    terms = [x == value for value in range(5)]
    combined = balanced_or(terms)
    for value in range(5):
        assert evaluate_bool(combined, {"x": value})
    assert not evaluate_bool(combined, {"x": 7})


def test_output_trace_helpers():
    empty = OutputTrace(items=())
    assert empty.is_empty and len(empty) == 0
    assert empty.describe() == "(no observable output)"
    trace = OutputTrace(items=(("crash", 0),))
    assert not trace.is_empty
    assert "crash" in trace.short()
    assert trace == OutputTrace(items=(("crash", 0),))
    assert hash(trace) == hash(OutputTrace(items=(("crash", 0),)))


# ---------------------------------------------------------------------------
# Crosschecking and concrete test cases
# ---------------------------------------------------------------------------

def test_crosscheck_finds_stats_inconsistencies():
    grouped_ref = group_paths(explore_agent("reference", "stats_request"))
    grouped_ovs = group_paths(explore_agent("ovs", "stats_request"))
    report = find_inconsistencies(grouped_ref, grouped_ovs)
    assert report.inconsistency_count >= 1
    assert report.queries <= (grouped_ref.distinct_output_count
                              * grouped_ovs.distinct_output_count)
    for inconsistency in report.inconsistencies:
        assert inconsistency.trace_a != inconsistency.trace_b
        assert inconsistency.example


def test_crosscheck_same_agent_finds_nothing():
    grouped_a = group_paths(explore_agent("reference", "stats_request"))
    grouped_b = group_paths(explore_agent("reference", "stats_request"))
    report = find_inconsistencies(grouped_a, grouped_b)
    assert report.inconsistency_count == 0


def test_crosscheck_rejects_mismatched_tests():
    from repro.errors import CrosscheckError

    grouped_a = group_paths(explore_agent("reference", "stats_request"))
    grouped_b = group_paths(explore_agent("ovs", "concrete"))
    with pytest.raises(CrosscheckError):
        find_inconsistencies(grouped_a, grouped_b)


def test_testcase_generation_and_replay_reproduces_divergence():
    grouped_ref = group_paths(explore_agent("reference", "stats_request"))
    grouped_ovs = group_paths(explore_agent("ovs", "stats_request"))
    report = find_inconsistencies(grouped_ref, grouped_ovs)
    assert report.inconsistencies
    inconsistency = report.inconsistencies[0]
    testcase = build_testcase("stats_request", inconsistency.example, inconsistency)
    assert testcase.inputs and testcase.inputs[0][0] == "control"
    assert testcase.inputs[0][1].is_concrete
    replay = replay_testcase(testcase, "reference", "ovs", require_divergence=True)
    assert replay.diverged


def test_full_soft_run_on_set_config_matches_paper_zero_inconsistencies():
    report = SOFT().run("set_config", "reference", "ovs")
    assert report.inconsistency_count == 0
    assert report.exploration_a.path_count >= 1
    assert report.crosscheck.identical_output_pairs >= 1


def test_full_soft_run_detects_set_config_mutation():
    report = SOFT().run("set_config", "reference", "modified")
    assert report.inconsistency_count >= 1
    assert report.verified_inconsistency_count() >= 1


def test_full_soft_run_short_symb():
    report = SOFT(replay_testcases=False).run("short_symb", "reference", "ovs")
    assert report.inconsistency_count >= 1
    assert report.testcases
    description = report.describe()
    assert "short_symb" in description


# ---------------------------------------------------------------------------
# Coverage tracker
# ---------------------------------------------------------------------------

def test_coverage_tracker_reports_nonzero_agent_coverage():
    report = explore_agent("reference", "stats_request", with_coverage=True)
    assert report.coverage is not None
    assert 0.0 < report.coverage.instruction_coverage < 1.0
    assert 0.0 <= report.coverage.branch_coverage <= 1.0
    assert report.coverage.executable_line_count > 100


def test_coverage_tracker_manual_use():
    tracker = CoverageTracker(packages=["repro.agents.common"])
    from repro.agents.common.ports import SwitchPortSet

    with tracker.tracking():
        SwitchPortSet(count=4).contains(2)
    report = tracker.report()
    assert report.executed_line_count > 0
    tracker.reset()
    assert tracker.report().executed_line_count == 0


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def test_oftest_baseline_passes_on_all_agents():
    for agent in ("reference", "ovs", "modified"):
        results = run_suite(agent)
        assert len(results) == len(default_suite())
        assert all(result.passed for result in results), \
            "the manual baseline suite only checks basic functionality"


def test_differential_fuzzer_runs_and_reports():
    fuzzer = DifferentialFuzzer("reference", "ovs", seed=7)
    report = fuzzer.run(iterations=30)
    assert report.iterations == 30
    assert 0 <= report.divergence_count <= 30
    for divergence in report.divergences:
        assert divergence.trace_a != divergence.trace_b


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list_commands(capsys):
    assert cli_main(["list-tests"]) == 0
    assert "packet_out" in capsys.readouterr().out
    assert cli_main(["list-agents"]) == 0
    assert "reference" in capsys.readouterr().out


def test_cli_explore_and_oftest(capsys):
    assert cli_main(["explore", "--agent", "reference", "--test", "concrete"]) == 0
    output = capsys.readouterr().out
    assert "paths explored" in output
    assert cli_main(["oftest", "--agent", "ovs"]) == 0
    assert "cases passed" in capsys.readouterr().out


def test_cli_run_set_config(capsys):
    assert cli_main(["run", "--test", "set_config", "--agent-a", "reference",
                     "--agent-b", "ovs"]) == 0
    assert "SOFT report" in capsys.readouterr().out
