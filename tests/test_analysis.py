"""Tests for the static agent-analysis subsystem (decision maps + lints).

Covers the three analysis passes (decision maps, symbex-compatibility lint,
concurrency lint), the suppression protocol, registry validation, the
``soft lint`` CLI verb, the coverage-fraction denominator, and the
mined-constants fuzzer pool.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    RULE_NAMES,
    branch_sites_for_file,
    build_decision_map,
    decision_map_for_agent,
    lint_class,
    lint_source,
    mine_constants_from,
    run_lint,
)
from repro.analysis.findings import apply_suppressions, suppressions_in_source
from repro.cli.main import main as cli_main
from repro.core.campaign import Campaign
from repro.core.explorer import explore_agent
from repro.errors import AgentRegistrationError

AGENTS = ("reference", "modified", "ovs")

OFPP_CONTROLLER = 0xFFFD


# ---------------------------------------------------------------------------
# Decision maps
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("agent", AGENTS)
def test_decision_map_extracts_sites_and_dispatch_arms(agent):
    dmap = decision_map_for_agent(agent)
    assert dmap.site_count > 0
    assert dmap.files(), "decision map should cover at least one source file"
    # Every agent dispatches on OFPT_* message types somewhere.
    assert any(arm.constant.startswith("OFPT_") for arm in dmap.dispatch_arms)
    # Mined constants include the values the agents actually compare against.
    assert dmap.interesting_values(), "no constants mined from comparisons"


def test_decision_map_mines_rare_planted_constant():
    # The PR-6 planted bug branches on OFPP_CONTROLLER (0xfffd) — a value a
    # uniform 16-bit fuzzer hits with probability 2**-16.  The miner must
    # surface it so the fuzzer pool can draw it directly.
    dmap = decision_map_for_agent("modified")
    assert OFPP_CONTROLLER in dmap.interesting_values()


def test_decision_map_uncovered_and_roundtrip():
    dmap = decision_map_for_agent("reference")
    everything = dmap.uncovered({})
    assert len(everything) == dmap.site_count
    fully_executed = {}
    for path, line in dmap.site_keys():
        fully_executed.setdefault(path, set()).add(line)
    assert dmap.uncovered(fully_executed) == set()
    doc = dmap.to_dict()
    assert doc["format"] == "soft/decision-map/v1"
    assert doc["site_count"] == dmap.site_count


@pytest.mark.parametrize("agent", AGENTS)
def test_static_sites_superset_of_dynamic_branch_points(agent):
    """Dynamic exercise never executes a branch the decision map missed."""

    from repro.baselines.oftest import run_suite
    from repro.coverage.tracker import CoverageTracker

    packages = ["repro.agents.common", "repro.agents.%s" % agent]
    dmap = build_decision_map(packages)
    static_lines_by_file = {}
    for path, line in dmap.site_keys():
        static_lines_by_file.setdefault(path, set()).add(line)

    tracker = CoverageTracker(packages=packages)
    with tracker.tracking():
        run_suite(agent)

    executed_any = False
    for path, lines in tracker.executed.items():
        static_lines = static_lines_by_file.get(path, set())
        dynamic_branches = {
            line for line in lines
            if line in {site.line for site in branch_sites_for_file(path)}
        }
        executed_any = executed_any or bool(dynamic_branches)
        assert dynamic_branches <= static_lines, \
            "dynamic branch lines missing from decision map in %s" % path
    assert executed_any, "the suite should execute at least one branch"

    report = tracker.report()
    assert report.executed_branch_point_count <= report.branch_point_count
    assert 0 < report.coverage_fraction <= 1
    # The denominator is the static decision-site count for this agent's
    # packages, shared between tracker and decision map by construction.
    assert report.branch_point_count == dmap.site_count


def test_explore_agent_coverage_fraction_bounds():
    report = explore_agent("reference", "packet_out", with_coverage=True)
    coverage = report.coverage
    assert coverage is not None
    assert 0 < coverage.coverage_fraction <= 1


def test_coverage_fraction_survives_report_roundtrip():
    report = explore_agent("reference", "set_config", with_coverage=True)
    coverage = report.coverage
    data = coverage.as_dict()
    assert "coverage_fraction" in data and "executed_branch_points" in data
    restored = type(coverage).from_dict(data)
    assert restored.executed_branch_point_count == coverage.executed_branch_point_count
    assert restored.coverage_fraction == pytest.approx(coverage.coverage_fraction)


def test_campaign_report_exposes_coverage_fraction():
    campaign = Campaign(with_coverage=True, triage=False, replay_testcases=False)
    campaign.with_tests("set_config").with_agents("reference", "ovs")
    report = campaign.run()
    assert report.coverage is not None
    fraction = report.coverage_fraction
    assert fraction is not None
    assert 0 < fraction <= 1
    assert report.to_dict()["coverage"]["coverage_fraction"] == pytest.approx(fraction)
    assert "coverage_fraction=" in report.describe()


def test_mine_constants_from_handler():
    from repro.agents.reference.agent import ReferenceSwitch

    values = mine_constants_from(ReferenceSwitch._packet_out_output)
    assert OFPP_CONTROLLER in values

    # Builtins have no retrievable source: empty, not an exception.
    assert mine_constants_from(len) == []


# ---------------------------------------------------------------------------
# Symbex-compatibility lint
# ---------------------------------------------------------------------------

def _lint(source, path="src/repro/agents/fake.py", rules=None):
    return lint_source(textwrap.dedent(source), path, rules=rules)


def test_symbex_lint_flags_nondeterministic_calls():
    findings = _lint("""
        import random, time

        def handler(self, buf):
            if random.random() < 0.5:
                return time.time()
    """)
    rules = {f.rule for f in findings}
    assert "symbex-compat" in rules
    messages = " ".join(f.message for f in findings)
    assert "random" in messages and "time" in messages


def test_symbex_lint_flags_io_and_unordered_iteration():
    findings = _lint("""
        def handler(self, buf):
            print(buf)
            for port in set(self.ports):
                pass
            while hash(buf) & 1:
                break
    """)
    messages = [f.message for f in findings if f.rule == "symbex-compat"]
    assert any("print" in m for m in messages)
    assert any("unordered" in m for m in messages)
    assert any("hash" in m for m in messages)


def test_symbex_lint_only_applies_under_agents_tree(tmp_path):
    source = textwrap.dedent("""
        import random

        def helper():
            if random.random() < 0.5:
                return 1
    """)
    agents_dir = tmp_path / "repro" / "agents"
    agents_dir.mkdir(parents=True)
    (agents_dir / "x.py").write_text(source)
    hybrid_dir = tmp_path / "repro" / "hybrid"
    hybrid_dir.mkdir(parents=True)
    (hybrid_dir / "x.py").write_text(source)

    report = run_lint([str(tmp_path)])
    by_path = {}
    for finding in report.findings:
        by_path.setdefault(finding.path, []).append(finding.rule)
    assert "symbex-compat" in by_path[str(agents_dir / "x.py")]
    assert str(hybrid_dir / "x.py") not in by_path


def test_lint_class_on_clean_agents():
    from repro.agents import make_agent

    for agent in AGENTS:
        cls = type(make_agent(agent))
        assert lint_class(cls) == [], "agent %r should be symbex-clean" % agent


# ---------------------------------------------------------------------------
# Concurrency lint
# ---------------------------------------------------------------------------

def test_concurrency_lint_flags_unlocked_public_mutation():
    findings = _lint("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                self._data[key] = value

            def get(self, key):
                with self._lock:
                    return self._data.get(key)

            def _helper(self):
                self._data.clear()
    """, path="src/repro/core/fake.py")
    concurrency = [f for f in findings if f.rule == "unlocked-shared-state"]
    assert len(concurrency) == 1
    assert concurrency[0].message.startswith("assignment to shared attribute")


def test_concurrency_lint_accepts_locked_and_self_calls():
    findings = _lint("""
        import threading

        class Index:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def add_all(self, items):
                for item in items:
                    self.add(item)
    """, path="src/repro/core/fake.py")
    assert not [f for f in findings if f.rule == "unlocked-shared-state"]


def test_concurrency_lint_thread_safety_claim_without_lock():
    findings = _lint("""
        class Table:
            '''A thread-safe table (allegedly).'''

            def put(self, key, value):
                self.data[key] = value
    """, path="src/repro/core/fake.py")
    concurrency = [f for f in findings if f.rule == "unlocked-shared-state"]
    assert len(concurrency) == 1
    assert "claiming thread-safety" in concurrency[0].message


# ---------------------------------------------------------------------------
# Broad-except lint + suppression protocol
# ---------------------------------------------------------------------------

def test_broad_except_flagged_and_typed_excepts_pass():
    findings = _lint("""
        def f():
            try:
                g()
            except Exception:
                pass
            try:
                g()
            except (ValueError, KeyError):
                pass
            try:
                g()
            except:
                pass
    """, path="src/repro/core/fake.py")
    broad = [f for f in findings if f.rule == "broad-except"]
    assert len(broad) == 2


def test_suppression_requires_reason():
    no_reason = _lint("""
        def f():
            try:
                g()
            except Exception:  # soft-lint: disable=broad-except
                pass
    """, path="src/repro/core/fake.py")
    assert [f for f in no_reason if not f.suppressed], \
        "a reason-less disable comment must not suppress"

    with_reason = _lint("""
        def f():
            try:
                g()
            except Exception:  # soft-lint: disable=broad-except -- g is third-party
                pass
    """, path="src/repro/core/fake.py")
    broad = [f for f in with_reason if f.rule == "broad-except"]
    assert broad and all(f.suppressed for f in broad)
    assert broad[0].suppress_reason == "g is third-party"


def test_suppression_preceding_line_and_disable_all():
    findings = _lint("""
        def f():
            try:
                g()
            # soft-lint: disable=all -- legacy shim, scheduled for removal
            except Exception:
                pass
    """, path="src/repro/core/fake.py")
    broad = [f for f in findings if f.rule == "broad-except"]
    assert broad and all(f.suppressed for f in broad)


def test_suppressions_in_source_parsing():
    source = ("x = 1  # soft-lint: disable=broad-except,symbex-compat -- why not\n"
              "y = 2  # soft-lint: disable=broad-except\n")
    table = suppressions_in_source(source)
    assert 1 in table and table[1][0] == {"broad-except", "symbex-compat"}
    assert 2 not in table  # reason-less comment dropped

    from repro.analysis.findings import Finding

    finding = Finding(rule="broad-except", path="p", line=1, message="m")
    (suppressed,) = apply_suppressions([finding], source)
    assert suppressed.suppressed and suppressed.suppress_reason == "why not"


def test_lint_source_rejects_unknown_rule_and_reports_syntax_errors():
    with pytest.raises(ValueError):
        lint_source("x = 1", "p.py", rules=["no-such-rule"])
    findings = lint_source("def broken(:\n", "p.py")
    assert findings and findings[0].rule == "parse-error"


# ---------------------------------------------------------------------------
# Registry validation + strict symbex gate
# ---------------------------------------------------------------------------

def _cleanup(name):
    from repro.agents import registry

    registry.AGENT_REGISTRY.pop(name, None)
    registry._INFO.pop(name, None)


def test_register_agent_validates_metadata():
    from repro.agents import registry

    class NoHandler:
        """Has a description but no handler."""

    with pytest.raises(AgentRegistrationError):
        registry.register_agent("bad_stub")(NoHandler)

    class NoDescription:
        def handle_control_buffer(self, buf):
            return []

    try:
        with pytest.raises(AgentRegistrationError):
            registry.register_agent("bad_stub")(NoDescription)
        # validate=False keeps the permissive path for scaffolding.
        registry.register_agent("bad_stub", validate=False)(NoDescription)
        assert "bad_stub" in registry.AGENT_REGISTRY
    finally:
        _cleanup("bad_stub")


def test_register_agent_rejects_duplicates_unless_replace():
    from repro.agents import registry

    class StubA:
        """First registration."""

        def handle_control_buffer(self, buf):
            return []

    class StubB:
        """Second registration."""

        def handle_control_buffer(self, buf):
            return []

    try:
        registry.register_agent("dup_stub")(StubA)
        with pytest.raises(AgentRegistrationError):
            registry.register_agent("dup_stub")(StubB)
        registry.register_agent("dup_stub", replace=True)(StubB)
        assert registry.AGENT_REGISTRY["dup_stub"] is StubB
    finally:
        _cleanup("dup_stub")


def test_strict_registration_rejects_nondeterministic_handler():
    from repro.agents import registry

    class RandomAgent:
        """Branches on random.random(): unmodelable by the symbex engine."""

        def handle_control_buffer(self, buf):
            import random

            if random.random() < 0.5:
                return [b"heads"]
            return [b"tails"]

    try:
        with pytest.raises(AgentRegistrationError) as excinfo:
            registry.register_agent("rng_stub", strict=True)(RandomAgent)
        assert "random" in str(excinfo.value)
        assert "rng_stub" not in registry.AGENT_REGISTRY

        # Non-strict mode records the findings instead of rejecting.
        registry.register_agent("rng_stub")(RandomAgent)
        info = registry._INFO["rng_stub"]
        assert info.lint_findings
        assert any("random" in finding for finding in info.lint_findings)
    finally:
        _cleanup("rng_stub")


def test_real_agents_register_without_lint_findings():
    from repro.agents import agent_registry

    for name, info in agent_registry().items():
        assert info.lint_findings == (), \
            "agent %r carries symbex-compat findings" % name


# ---------------------------------------------------------------------------
# run_lint + CLI verb
# ---------------------------------------------------------------------------

def test_run_lint_on_real_sources_is_clean():
    import repro
    import os

    report = run_lint([os.path.dirname(os.path.abspath(repro.__file__))])
    assert report.rules == list(RULE_NAMES) or tuple(report.rules) == RULE_NAMES
    assert report.files_scanned > 50
    assert report.ok, "unsuppressed findings in src/repro:\n%s" % "\n".join(
        "%s:%d: %s" % (f.path, f.line, f.message) for f in report.unsuppressed())


def test_cli_lint_clean_and_dirty(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f():\n    return 1\n")
    assert cli_main(["lint", "--path", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f():\n    try:\n        g()\n"
                     "    except Exception:\n        pass\n")
    out_json = tmp_path / "lint.json"
    assert cli_main(["lint", "--path", str(dirty),
                     "--json", str(out_json)]) == 1
    data = json.loads(out_json.read_text())
    assert data["format"] == "soft/lint-report/v1"
    assert data["unsuppressed_count"] == 1
    assert data["findings"][0]["rule"] == "broad-except"

    assert cli_main(["lint", "--path", str(clean), "--rules", "bogus"]) == 2


# ---------------------------------------------------------------------------
# Mined-constants fuzzer pool
# ---------------------------------------------------------------------------

def test_fuzzer_pool_preserves_rng_sequence_when_empty():
    from repro.baselines.fuzzer import DifferentialFuzzer

    plain = DifferentialFuzzer("reference", "ovs", seed=7)
    pooled = DifferentialFuzzer("reference", "ovs", seed=7, interesting_values=[])
    report_a = plain.run(iterations=25)
    report_b = pooled.run(iterations=25)
    assert report_a.divergence_count == report_b.divergence_count
    assert ([d.description for d in report_a.divergences]
            == [d.description for d in report_b.divergences])


def test_fuzzer_pool_draws_mined_constants():
    from repro.baselines.fuzzer import DifferentialFuzzer

    pool = decision_map_for_agent("modified").interesting_values()
    fuzzer = DifferentialFuzzer("reference", "modified", seed=1,
                                interesting_values=pool, interesting_prob=1.0)
    seen = {fuzzer._field(16) for _ in range(64)}
    allowed = {value & 0xFFFF for value in pool}
    assert seen <= allowed
    assert OFPP_CONTROLLER in allowed


# ---------------------------------------------------------------------------
# compare_bench tolerance (a baseline metric absent from a fresh run skips)
# ---------------------------------------------------------------------------

def test_compare_bench_tolerates_metric_absent_from_current_run(tmp_path, capsys):
    import importlib.util
    import os
    import sys

    spec = importlib.util.spec_from_file_location(
        "compare_bench",
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                     "benchmarks", "compare_bench.py"))
    compare_bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(compare_bench)

    baseline_dir = tmp_path / "baseline"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir()
    current_dir.mkdir()
    (baseline_dir / "BENCH_solver.json").write_text(json.dumps({
        "sat_core": {"decisions_per_sec": 1000.0,
                     "propagations_per_sec": 5000.0},
        "intern": {"hit_rate": 0.9},
        "end_to_end": {"speedup": 2.0},
    }))
    # Fresh run emits sat_core but the intern/end_to_end keys were retired.
    (current_dir / "BENCH_solver.json").write_text(json.dumps({
        "sat_core": {"decisions_per_sec": 1100.0,
                     "propagations_per_sec": 5100.0},
    }))

    rc = compare_bench.main([str(baseline_dir), str(current_dir)])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "skipped (absent from current run)" in out
    assert "MISSING" not in out

    # A genuine regression still fails.
    (current_dir / "BENCH_solver.json").write_text(json.dumps({
        "sat_core": {"decisions_per_sec": 100.0,
                     "propagations_per_sec": 5100.0},
    }))
    rc = compare_bench.main([str(baseline_dir), str(current_dir)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSED" in out
