"""Tests of Phase-1 artifact serialization and the vendor save/load workflow."""

import json

import pytest

from repro.cli.main import main as cli_main
from repro.core.artifacts import load_exploration_artifact, save_exploration_artifact
from repro.core.campaign import Campaign
from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import GroupedResults, group_paths
from repro.core.trace import OutputTrace
from repro.errors import ArtifactError, ExpressionError
from repro.symbex.expr import (
    BoolAnd,
    bool_and,
    bool_not,
    bool_or,
    bvvar,
    concat,
    ite,
    structurally_equal,
)
from repro.symbex.serialize import bool_expr_from_obj, expr_from_obj, expr_to_obj


# ---------------------------------------------------------------------------
# Expression serialization
# ---------------------------------------------------------------------------

def test_expr_round_trip_covers_all_node_kinds():
    x = bvvar("x", 16)
    y = bvvar("y", 16)
    samples = [
        (x + 3) * y,
        ~(x ^ y) - (x << 2),
        concat(x, y).extract(23, 8),
        x.zext(32) + 1,
        x.sext(32),
        ite(x == y, x & 0xFF, y | 1),
        bool_and(x < y, bool_not(x == 3), bool_or(y >= 5, x.sle(0))),
    ]
    for expr in samples:
        rebuilt = expr_from_obj(json.loads(json.dumps(expr_to_obj(expr))))
        assert structurally_equal(expr, rebuilt), expr.pretty()


def test_expr_deserialize_rejects_garbage():
    with pytest.raises(ExpressionError):
        expr_from_obj(["warp", 1, 2])
    with pytest.raises(ExpressionError):
        expr_from_obj([])
    with pytest.raises(ExpressionError):
        expr_from_obj("not-a-node")
    with pytest.raises(ExpressionError):
        bool_expr_from_obj(["const", 8, 1])  # bit-vector where a bool is needed


def test_bool_nary_round_trip_preserves_operands():
    x = bvvar("x", 8)
    expr = BoolAnd([x == 1, x != 2, x < 9])
    rebuilt = bool_expr_from_obj(expr_to_obj(expr))
    assert structurally_equal(expr, rebuilt)


# ---------------------------------------------------------------------------
# Exploration artifact round trip
# ---------------------------------------------------------------------------

def test_exploration_report_dict_round_trip_identical_crosscheck():
    original = explore_agent("reference", "stats_request")
    rebuilt = AgentExplorationReport.from_dict(
        json.loads(json.dumps(original.to_dict())))

    assert rebuilt.agent_name == original.agent_name
    assert rebuilt.test_key == original.test_key
    assert rebuilt.path_count == original.path_count
    assert [o.trace for o in rebuilt.outcomes] == [o.trace for o in original.outcomes]

    against = group_paths(explore_agent("ovs", "stats_request"))
    fresh = find_inconsistencies(group_paths(original), against)
    loaded = find_inconsistencies(group_paths(rebuilt), against)
    assert loaded.inconsistency_count == fresh.inconsistency_count
    assert loaded.queries == fresh.queries
    assert (sorted((i.trace_a.items, i.trace_b.items) for i in loaded.inconsistencies)
            == sorted((i.trace_a.items, i.trace_b.items) for i in fresh.inconsistencies))


def test_grouped_results_dict_round_trip():
    grouped = group_paths(explore_agent("ovs", "set_config"))
    rebuilt = GroupedResults.from_dict(json.loads(json.dumps(grouped.to_dict())))
    assert rebuilt.distinct_output_count == grouped.distinct_output_count
    assert rebuilt.traces() == grouped.traces()
    for old, new in zip(grouped.groups, rebuilt.groups):
        assert structurally_equal(old.condition, new.condition)
        assert old.path_ids == new.path_ids


def test_output_trace_obj_round_trip_hash_equal():
    trace = OutputTrace(items=(("ctrl_msg", 0, ("ERROR", "1", "2")), ("crash", 1)))
    rebuilt = OutputTrace.from_obj(json.loads(json.dumps(trace.to_obj())))
    assert rebuilt == trace
    assert hash(rebuilt) == hash(trace)


def test_artifact_file_save_load_and_errors(tmp_path):
    report = explore_agent("reference", "concrete")
    path = tmp_path / "reference_concrete.json"
    save_exploration_artifact(report, path)
    loaded = load_exploration_artifact(path)
    assert loaded.agent_name == "reference" and loaded.test_key == "concrete"

    with pytest.raises(ArtifactError):
        load_exploration_artifact(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ArtifactError):
        load_exploration_artifact(bad)
    wrong_format = tmp_path / "wrong.json"
    wrong_format.write_text(json.dumps({"format": "soft/other/v9", "agent": "a", "test": "t"}))
    with pytest.raises(ArtifactError):
        load_exploration_artifact(wrong_format)


def test_coverage_survives_artifact_round_trip():
    report = explore_agent("reference", "concrete", with_coverage=True)
    rebuilt = AgentExplorationReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.coverage is not None
    assert rebuilt.coverage.instruction_coverage == report.coverage.instruction_coverage


# ---------------------------------------------------------------------------
# Vendor workflow: explore in-house, ship JSON, crosscheck without re-exploring
# ---------------------------------------------------------------------------

def test_campaign_seeded_from_artifact_skips_exploration(tmp_path, monkeypatch):
    import repro.core.campaign as campaign_module

    vendor_report = explore_agent("ovs", "stats_request")
    path = tmp_path / "vendor_ovs.json"
    save_exploration_artifact(vendor_report, path)

    calls = []
    original = campaign_module.explore_agent

    def recorder(agent, spec, **kwargs):
        calls.append((agent, spec.key))
        return original(agent, spec, **kwargs)

    monkeypatch.setattr(campaign_module, "explore_agent", recorder)

    report = (Campaign()
              .with_tests("stats_request")
              .with_agents("reference")
              .load_artifact(str(path))
              .run())
    # Only the local agent was explored; the vendor's artifact was used as-is.
    assert calls == [("reference", "stats_request")]
    assert report.explorations_loaded == 1
    assert report.agents == ["reference", "ovs"]
    pair = report.report_for("stats_request", "reference", "ovs")
    fresh = find_inconsistencies(group_paths(explore_agent("reference", "stats_request")),
                                 group_paths(vendor_report))
    assert pair.inconsistency_count == fresh.inconsistency_count


def test_artifact_scale_round_trips_and_seeds_campaign():
    from repro.core.tests_catalog import get_test
    from repro.errors import CampaignError

    ref = explore_agent("reference", get_test("set_config", scale="paper"))
    ovs = explore_agent("ovs", get_test("set_config", scale="paper"))
    assert ref.scale == "paper"
    rebuilt = AgentExplorationReport.from_dict(json.loads(json.dumps(ref.to_dict())))
    assert rebuilt.scale == "paper"

    # Paper-scale artifacts cover Phase 1 completely — nothing re-explored.
    report = Campaign().add_artifact(rebuilt).add_artifact(ovs).run()
    assert report.explorations_run == 0
    assert report.explorations_loaded == 2

    # The CLI flow adds the test as a bare key first; the artifact's concrete
    # spec must win so the campaign crosschecks at the artifact's scale.
    report = (Campaign().with_tests("set_config")
              .add_artifact(ref).add_artifact(ovs).run())
    assert report.explorations_run == 0

    # But a test pinned to a concrete spec at another scale is refused rather
    # than silently re-explored at the wrong scale.
    with pytest.raises(CampaignError):
        (Campaign().with_tests(get_test("set_config", scale="small"))
         .add_artifact(ref).with_agents("ovs").run())


def test_campaign_pair_times_amortize_shared_explorations():
    report = Campaign(tests=["set_config"], agents=["reference", "ovs", "modified"]).run()
    # Each exploration is shared by two pairs; summing per-pair times must
    # not double-count Phase 1, so the sum stays within the campaign wall.
    assert sum(r.total_time for r in report.reports) <= report.total_time + 0.05


def test_cli_explore_save_load_round_trip(tmp_path, capsys):
    path = tmp_path / "artifact.json"
    assert cli_main(["explore", "--agent", "reference", "--test", "concrete",
                     "--save", str(path)]) == 0
    capsys.readouterr()
    assert cli_main(["explore", "--load", str(path)]) == 0
    out = capsys.readouterr().out
    assert "agent=reference test=concrete" in out
    assert cli_main(["explore"]) == 2  # neither --load nor --agent/--test
    assert "--agent and --test are required" in capsys.readouterr().err


def test_cli_campaign_with_artifact(tmp_path, capsys):
    path = tmp_path / "ovs.json"
    save_exploration_artifact(explore_agent("ovs", "set_config"), path)
    code = cli_main(["campaign", "--tests", "set_config", "--agents", "reference",
                     "--artifact", str(path), "--json", "-", "--quiet"])
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["explorations_loaded"] == 1
    assert data["pair_reports"][0]["agent_b"] == "ovs"


def test_cli_surfaces_artifact_errors(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("42")
    assert cli_main(["explore", "--load", str(bad)]) == 2
    assert "artifact" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Registry metadata regression (list-agents used to crash on empty docstrings)
# ---------------------------------------------------------------------------

def test_first_doc_line_handles_missing_and_empty_docstrings():
    from repro.agents.registry import first_doc_line

    class NoDoc:
        pass

    class EmptyDoc:
        """"""

    class WhitespaceDoc:
        """   """

    assert first_doc_line(NoDoc) == ""
    assert first_doc_line(EmptyDoc) == ""
    assert first_doc_line(WhitespaceDoc) == ""
    assert first_doc_line(OutputTrace).startswith("A normalized")


def test_list_agents_survives_agent_with_empty_docstring(capsys):
    from repro.agents import registry
    from repro.errors import AgentRegistrationError

    class DoclessStub:
        pass

    # Registry validation (PR 7) rejects metadata-free agents by default...
    with pytest.raises(AgentRegistrationError):
        registry.register_agent("docless_stub")(DoclessStub)

    # ...but validate=False keeps the old permissive path, and the CLI
    # must still render the missing description without crashing.
    registry.register_agent("docless_stub", validate=False)(DoclessStub)
    try:
        assert cli_main(["list-agents"]) == 0
        out = capsys.readouterr().out
        assert "docless_stub" in out
        assert "(no description)" in out
    finally:
        registry.AGENT_REGISTRY.pop("docless_stub", None)
        registry._INFO.pop("docless_stub", None)
