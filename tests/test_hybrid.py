"""Tests for the hybrid concolic hunt engine (seed pool, scheduler, pipeline).

The centerpiece is the planted rare-constant experiment: an agent pair that
diverges *only* when a 16-bit PACKET_OUT port equals ``OFPP_CONTROLLER``
(0xFFFD).  Random fuzzing hits that value with probability 2^-16 per draw, so
a fuzz-only hunt finds nothing within the test budget, while the hybrid
hunt's concolic stage flips the comparison branch and lands on the constant
directly — the motivating scenario for the whole subsystem.
"""

import random
import tempfile

import pytest

from repro.agents.reference.agent import ReferenceSwitch
from repro.baselines.fuzzer import DifferentialFuzzer, promote_divergence
from repro.core.corpus import WitnessCorpus
from repro.core.tests_catalog import TestSpec
from repro.core.witness import TriageIndex
from repro.coverage.tracker import CoverageTracker
from repro.errors import CampaignError
from repro.harness.inputs import ControlMessageInput
from repro.hybrid import HybridConfig, HybridHunt, SeedPool
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput
from repro.openflow.messages import PacketOut
from repro.packetlib.builder import build_tcp_packet, build_udp_packet


# ---------------------------------------------------------------------------
# Seed pool
# ---------------------------------------------------------------------------


def test_seed_pool_dedupes_and_scores_novelty():
    pool = SeedPool()
    fp1 = frozenset({("a.py", 1), ("a.py", 2)})
    fp2 = frozenset({("a.py", 2), ("a.py", 3)})
    seed1 = pool.add({"x": 1}, "fuzz", fingerprint=fp1)
    assert seed1 is not None and seed1.novelty == 2
    # Second admission is scored against the union so far: only line 3 is new.
    seed2 = pool.add({"x": 2}, "fuzz", fingerprint=fp2)
    assert seed2 is not None and seed2.novelty == 1
    assert pool.covered_units == 3
    # Same assignment again: duplicate, regardless of fingerprint.
    assert pool.add({"x": 1}, "concolic", fingerprint=fp2) is None
    assert pool.rejected_duplicates == 1


def test_seed_pool_require_novel_rejects_stale_inputs():
    pool = SeedPool()
    fp = frozenset({("a.py", 1)})
    assert pool.add({"x": 1}, "fuzz", fingerprint=fp, require_novel=True)
    assert pool.add({"x": 2}, "fuzz", fingerprint=fp, require_novel=True) is None
    assert pool.rejected_stale == 1
    # Without the flag the stale input is still admitted (novelty 0).
    seed = pool.add({"x": 3}, "fuzz", fingerprint=fp)
    assert seed is not None and seed.novelty == 0


def test_seed_pool_expansion_walks_best_first():
    pool = SeedPool()
    pool.add({"x": 1}, "fuzz", fingerprint=frozenset({("a.py", 1)}))
    pool.add({"x": 2}, "fuzz",
             fingerprint=frozenset({("b.py", 1), ("b.py", 2)}))
    # x=2 added two units vs one: it is expanded first; the expansion counter
    # then rotates selection instead of hammering the single best seed.
    first = pool.next_for_expansion()
    second = pool.next_for_expansion()
    assert first.assignment == {"x": 2}
    assert second.assignment == {"x": 1}


# ---------------------------------------------------------------------------
# Coverage fingerprints (tracker satellite)
# ---------------------------------------------------------------------------


def _tracked_run(fn):
    tracker = CoverageTracker(packages=["repro.packetlib"])
    with tracker.tracking():
        fn()
    return tracker


def test_fingerprint_is_stable_across_identical_runs():
    tracker = _tracked_run(build_tcp_packet)
    fp1 = tracker.fingerprint()
    tracker.reset()
    with tracker.tracking():
        build_tcp_packet()
    assert tracker.fingerprint() == fp1
    assert fp1  # the builder executes instrumented lines


def test_merge_unions_fingerprints_and_novel_vs_counts_difference():
    tcp = _tracked_run(build_tcp_packet)
    udp = _tracked_run(build_udp_packet)
    assert udp.novel_vs(tcp) > 0          # UDP builder runs lines TCP did not
    assert tcp.novel_vs(tcp.fingerprint()) == 0
    merged = _tracked_run(build_tcp_packet)
    merged.merge_from(udp)
    assert merged.fingerprint() == tcp.fingerprint() | udp.fingerprint()
    assert udp.novel_vs(merged) == 0      # merged tracker covers both


# ---------------------------------------------------------------------------
# Planted rare-constant pair: diverges only at port == OFPP_CONTROLLER
# ---------------------------------------------------------------------------


class PlantedReference(ReferenceSwitch):
    NAME = "planted-ref"


class PlantedBuggy(ReferenceSwitch):
    """Reference switch with one planted bug: controller output is dropped."""

    NAME = "planted-buggy"

    def handle_packet_out(self, buf, header):
        if len(buf) >= c.OFP_PACKET_OUT_LEN:
            _, _, actions, _ = self.parse_packet_out_fields(buf)
            for action in actions:
                if (isinstance(action, ActionOutput)
                        and action.port == c.OFPP_CONTROLLER):
                    return  # planted: silently swallow controller output
        super().handle_packet_out(buf, header)


def _build_planted_packet_out(state):
    out_port = state.new_symbol("pb.out_port", 16)
    message = PacketOut(
        xid=1,
        buffer_id=c.OFP_NO_BUFFER,
        in_port=c.OFPP_NONE,
        actions=[ActionOutput(port=out_port, max_len=128)],
        data=build_tcp_packet(tp_src=1234, tp_dst=80).to_bytes(),
    )
    return message.pack()


def planted_spec():
    return TestSpec(
        key="planted_rare_port",
        title="Planted rare-constant PACKET_OUT",
        description="One symbolic 16-bit output port; the pair diverges only "
                    "when it equals OFPP_CONTROLLER (0xFFFD).",
        inputs=[ControlMessageInput("planted_packet_out",
                                    _build_planted_packet_out)],
        message_count=1,
    )


def _planted_config(stages, seed=11, max_slices=10):
    return HybridConfig(
        budget=60.0,                # never binds: max_slices ends the hunt
        slice_time=0.5,
        seed=seed,
        stages=stages,
        fuzz_per_slice=6,
        flips_per_slice=10,
        max_slices=max_slices,
        coverage_packages=("repro.agents.common", "repro.agents.reference"),
    )


def test_hybrid_finds_planted_rare_branch_within_budget():
    hunt = HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                      config=_planted_config(stages=("fuzz", "concolic")))
    report = hunt.run()
    assert report.cluster_count >= 1
    assert any(w.assignment.get("pb.out_port") == c.OFPP_CONTROLLER
               for w in report.witnesses)
    assert report.stats.stages["concolic"].divergences >= 1


def test_fuzz_only_misses_planted_rare_branch_at_equal_budget():
    hunt = HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                      config=_planted_config(stages=("fuzz",)))
    report = hunt.run()
    assert report.cluster_count == 0
    assert not report.witnesses
    # The fuzz stage did real work — it just cannot win a 2^-16 lottery.
    assert report.stats.stages["fuzz"].inputs_run > 0


# ---------------------------------------------------------------------------
# Scheduler accounting under a fake clock
# ---------------------------------------------------------------------------


class FakeClock:
    """Deterministic clock: every read advances time by a fixed tick."""

    def __init__(self, tick=0.01):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def test_scheduler_slice_accounting_under_fake_clock():
    clock = FakeClock(tick=0.01)
    config = HybridConfig(budget=1.0, slice_time=0.2, seed=2,
                          stages=("fuzz",), fuzz_per_slice=3,
                          coverage_packages=("repro.agents.common",))
    hunt = HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                      config=config, clock=clock)
    report = hunt.run()
    fuzz = report.stats.stages["fuzz"]
    assert report.stats.slices == fuzz.slices > 0
    # Each slice ran its full complement: the 0.01 ticks spent inside a slice
    # never reach the 0.2s slice deadline.
    assert fuzz.inputs_run == 3 * fuzz.slices
    # Time accounting: stage time is measured on the same clock and the loop
    # only exits once the budget is consumed.
    assert report.stats.wall_time >= config.budget
    assert fuzz.time_spent <= report.stats.wall_time
    assert fuzz.time_spent > 0


def test_symbex_slice_respects_the_wall_clock_budget():
    # Regression: the symbex slice's crosscheck used to run the whole pair
    # matrix unbounded, so one slice could blow far past the global budget
    # (observed 5-7s of a 6s hunt), starving every other stage.  The scan is
    # now deadline-bounded, so the hunt must end close to its budget even
    # though packet_out exploration alone would happily run much longer.
    config = HybridConfig(budget=1.5, slice_time=0.25, seed=0,
                          stages=("symbex",))
    report = HybridHunt("packet_out", "reference", "modified",
                        config=config).run()
    assert report.stats.wall_time < config.budget * 1.5
    symbex = report.stats.stages["symbex"]
    assert symbex.slices >= 2  # preemption: budget spread over several slices


def test_scheduler_max_slices_caps_the_hunt():
    clock = FakeClock(tick=0.0)          # frozen clock: budget never expires
    config = HybridConfig(budget=1.0, slice_time=0.2, seed=2,
                          stages=("fuzz",), fuzz_per_slice=2, max_slices=4,
                          coverage_packages=("repro.agents.common",))
    hunt = HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                      config=config, clock=clock)
    report = hunt.run()
    assert report.stats.slices == 4


def test_unknown_stage_is_rejected():
    with pytest.raises(CampaignError):
        HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                   config=HybridConfig(stages=("fuzz", "warp")))


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def _deterministic_hunt():
    hunt = HybridHunt(planted_spec(), PlantedReference, PlantedBuggy,
                      config=_planted_config(stages=("fuzz", "concolic"),
                                             seed=3, max_slices=6),
                      clock=FakeClock(tick=0.001))
    return hunt.run()


def test_hunt_is_deterministic_under_fixed_seed_and_clock():
    first = _deterministic_hunt()
    second = _deterministic_hunt()
    assert first.stats.slices == second.stats.slices
    assert ([w.signature.key() for w in first.witnesses]
            == [w.signature.key() for w in second.witnesses])
    assert ([w.assignment for w in first.witnesses]
            == [w.assignment for w in second.witnesses])
    for name, stage in first.stats.stages.items():
        other = second.stats.stages[name]
        assert (stage.slices, stage.inputs_run, stage.divergences) == \
            (other.slices, other.inputs_run, other.divergences)


# ---------------------------------------------------------------------------
# Fuzz divergence -> Witness -> corpus round-trip (fuzzer satellite)
# ---------------------------------------------------------------------------


def test_fuzzer_rng_injection_is_deterministic():
    run1 = DifferentialFuzzer("reference", "modified",
                              rng=random.Random(5)).run(iterations=30)
    run2 = DifferentialFuzzer("reference", "modified",
                              rng=random.Random(5)).run(iterations=30)
    assert ([d.description for d in run1.divergences]
            == [d.description for d in run2.divergences])


def test_fuzz_divergence_promotes_to_witness_and_corpus_roundtrip():
    fuzzer = DifferentialFuzzer("reference", "modified", seed=5)
    report = fuzzer.run(iterations=120)
    assert report.divergence_count >= 1
    divergence = report.divergences[0]
    assert divergence.inputs  # the concrete inputs ride along

    witness = promote_divergence(divergence, "reference", "modified")
    assert witness.confirmed
    assert witness.testcase.inputs == divergence.inputs

    index = TriageIndex()
    index.add(witness)
    triage = index.report()
    assert triage.cluster_count == 1

    with tempfile.TemporaryDirectory() as tmp:
        saved = WitnessCorpus(tmp).add_clusters(triage.clusters)
        assert saved == 1
        loaded = WitnessCorpus(tmp, create=False).load()
        assert len(loaded) == 1
        assert loaded[0].test_key == witness.test_key
        assert loaded[0].signature.key() == witness.signature.key()
