#!/usr/bin/env python3
"""The planted rare-constant experiment: why hybrid hunting exists.

Two switch builds behave identically except for one planted bug: the buggy
build silently swallows a PACKET_OUT whose output action targets exactly
``OFPP_CONTROLLER`` (0xFFFD).  A random fuzzer has a 2^-16 chance per draw
of hitting that constant in the 16-bit port field — at a few-second budget
it essentially never does.  The hybrid hunt's concolic stage replays one
fuzzed input *symbolically*, sees the untaken ``port == OFPP_CONTROLLER``
branch in its path condition, and asks the solver for an input that flips
it: one query, bug found.

The script runs both hunts at the same wall-clock budget and prints the
score.  Then it does the same on the real seed catalog (reference vs
modified) with all four stages enabled.

    python examples/hybrid_hunt.py
"""

from repro.agents.reference.agent import ReferenceSwitch
from repro.core.tests_catalog import TestSpec
from repro.harness.inputs import ControlMessageInput
from repro.hybrid import HybridConfig, HybridHunt
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput
from repro.openflow.messages import PacketOut
from repro.packetlib.builder import build_tcp_packet

BUDGET = 6.0


class PlantedReference(ReferenceSwitch):
    NAME = "planted-ref"


class PlantedBuggy(ReferenceSwitch):
    """Reference switch plus one planted bug: controller output is dropped."""

    NAME = "planted-buggy"

    def handle_packet_out(self, buf, header):
        if len(buf) >= c.OFP_PACKET_OUT_LEN:
            _, _, actions, _ = self.parse_packet_out_fields(buf)
            for action in actions:
                if (isinstance(action, ActionOutput)
                        and action.port == c.OFPP_CONTROLLER):
                    return  # the planted bug
        super().handle_packet_out(buf, header)


def _build_planted_packet_out(state):
    out_port = state.new_symbol("pb.out_port", 16)
    message = PacketOut(
        xid=1, buffer_id=c.OFP_NO_BUFFER, in_port=c.OFPP_NONE,
        actions=[ActionOutput(port=out_port, max_len=128)],
        data=build_tcp_packet(tp_src=1234, tp_dst=80).to_bytes(),
    )
    return message.pack()


PLANTED_SPEC = TestSpec(
    key="planted_rare_port",
    title="Planted rare-constant PACKET_OUT",
    description="Diverges only when the 16-bit port equals OFPP_CONTROLLER.",
    inputs=[ControlMessageInput("planted_packet_out", _build_planted_packet_out)],
    message_count=1,
)


def hunt(stages):
    config = HybridConfig(
        budget=BUDGET, slice_time=0.5, seed=7, stages=stages,
        coverage_packages=("repro.agents.common", "repro.agents.reference"))
    return HybridHunt(PLANTED_SPEC, PlantedReference, PlantedBuggy,
                      config=config).run()


def main() -> None:
    print("Planted bug: divergence only at port == OFPP_CONTROLLER (0xFFFD)")
    print("Budget per hunt: %.0fs\n" % BUDGET)

    fuzz_only = hunt(("fuzz",))
    print("fuzz only:    %d cluster(s) after %d random inputs"
          % (fuzz_only.cluster_count,
             fuzz_only.stats.stages["fuzz"].inputs_run))

    hybrid = hunt(("fuzz", "concolic"))
    print("fuzz+concolic: %d cluster(s); rare constant recovered by flips: %s"
          % (hybrid.cluster_count,
             any(w.assignment.get("pb.out_port") == c.OFPP_CONTROLLER
                 for w in hybrid.witnesses)))
    print()
    print(hybrid.describe())

    print("\nFull roster on the seed catalog (reference vs modified):")
    report = HybridHunt("packet_out", "reference", "modified",
                        config=HybridConfig(budget=BUDGET, seed=7)).run()
    print(report.describe())


if __name__ == "__main__":
    main()
