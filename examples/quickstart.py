#!/usr/bin/env python3
"""Quickstart: find inconsistencies between two OpenFlow agents with SOFT.

Runs the full pipeline (symbolic exploration of each agent, grouping of path
conditions by output, solver-based crosschecking, concrete test-case
generation and replay) for the Packet Out test of the paper's Table 1.

    python examples/quickstart.py
"""

from repro import SOFT


def main() -> None:
    soft = SOFT()
    report = soft.run("packet_out", "reference", "ovs")

    print(report.describe())
    print()
    print("Generated %d concrete test cases; %d replayed to a confirmed divergence."
          % (len(report.testcases), report.verified_inconsistency_count()))

    if report.testcases:
        print()
        print("First reproducing test case:")
        print(report.testcases[0].describe())


if __name__ == "__main__":
    main()
