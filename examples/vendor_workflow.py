#!/usr/bin/env python3
"""Two-phase vendor workflow (paper §2.4), with serialized artifacts.

Phase 1 runs independently per vendor: each vendor symbolically executes its
own agent and *saves the intermediate result to a JSON artifact* — path
conditions plus normalized output traces, but no source code.  Only that file
leaves the vendor's premises.  Phase 2 — run by a third party such as the
ONF, or under an inter-vendor NDA — loads the artifacts into a
:class:`repro.Campaign` and crosschecks them without re-exploring anything,
handing each vendor a concrete reproducing test case per inconsistency.

The same flow is available on the command line::

    soft explore --agent reference --test stats_request --save vendor_a.json
    soft explore --agent ovs       --test stats_request --save vendor_b.json
    soft campaign --tests stats_request --artifact vendor_a.json \\
                  --artifact vendor_b.json --json report.json

Run this script with::

    python examples/vendor_workflow.py
"""

import tempfile

from repro import Campaign, explore_agent, save_exploration_artifact

TEST = "stats_request"


def vendor_phase(agent_name: str, artifact_path: str) -> None:
    """What a single vendor runs in-house: explore, then save the artifact."""

    print("[vendor:%s] exploring agent with test %r ..." % (agent_name, TEST))
    exploration = explore_agent(agent_name, TEST)
    save_exploration_artifact(exploration, artifact_path)
    print("[vendor:%s] %d paths explored (%.2fs cpu); artifact saved to %s"
          % (agent_name, exploration.path_count, exploration.cpu_time, artifact_path))


def interop_event(artifact_a: str, artifact_b: str) -> None:
    """What the interoperability event / third party runs: load and crosscheck."""

    print("[interop] loading artifacts and crosschecking (no re-exploration) ...")
    report = (Campaign()
              .load_artifact(artifact_a)
              .load_artifact(artifact_b)
              .run())
    assert report.explorations_run == 0, "artifacts fully covered Phase 1"
    pair = report.reports[0]
    print("[interop] %d solver queries, %d inconsistencies (%d replay-verified)"
          % (pair.crosscheck.queries, pair.inconsistency_count,
             pair.verified_inconsistency_count()))
    for index, inconsistency in enumerate(pair.inconsistencies, start=1):
        print("\n--- inconsistency %d ---" % index)
        print(inconsistency.describe())
    for testcase, replay in zip(pair.testcases, pair.replays):
        print("replay of %s confirms divergence: %s"
              % (testcase.test_key, replay.diverged))


def main() -> None:
    with tempfile.TemporaryDirectory() as exchange_dir:
        artifact_a = "%s/vendor_reference.json" % exchange_dir
        artifact_b = "%s/vendor_ovs.json" % exchange_dir
        vendor_phase("reference", artifact_a)
        vendor_phase("ovs", artifact_b)
        interop_event(artifact_a, artifact_b)


if __name__ == "__main__":
    main()
