#!/usr/bin/env python3
"""Two-phase vendor workflow (paper §2.4).

Phase 1 runs independently per vendor: each vendor symbolically executes its
own agent and produces an intermediate result (input-space partitions grouped
by output) *without* sharing source code.  Phase 2 — run by a third party such
as the ONF, or under an inter-vendor NDA — crosschecks the intermediate
results and hands each vendor a concrete reproducing test case per
inconsistency.

    python examples/vendor_workflow.py
"""

from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import explore_agent
from repro.core.grouping import group_paths
from repro.core.testcase import build_testcase, replay_testcase

TEST = "stats_request"


def vendor_phase(agent_name: str):
    """What a single vendor runs in-house: explore, then group."""

    print("[vendor:%s] exploring agent with test %r ..." % (agent_name, TEST))
    exploration = explore_agent(agent_name, TEST)
    grouped = group_paths(exploration)
    print("[vendor:%s] %d paths -> %d distinct observable outputs (%.2fs cpu)"
          % (agent_name, exploration.path_count, grouped.distinct_output_count,
             exploration.cpu_time))
    # Only the grouped intermediate result leaves the vendor's premises.
    return grouped


def interop_event(grouped_a, grouped_b) -> None:
    """What the interoperability event / third party runs."""

    print("[interop] crosschecking %s vs %s ..." % (grouped_a.agent_name, grouped_b.agent_name))
    report = find_inconsistencies(grouped_a, grouped_b)
    print("[interop] %d solver queries, %d inconsistencies"
          % (report.queries, report.inconsistency_count))
    for index, inconsistency in enumerate(report.inconsistencies, start=1):
        print("\n--- inconsistency %d ---" % index)
        print(inconsistency.describe())
        testcase = build_testcase(TEST, inconsistency.example, inconsistency)
        replay = replay_testcase(testcase, grouped_a.agent_name, grouped_b.agent_name)
        print("replay confirms divergence: %s" % replay.diverged)


def main() -> None:
    grouped_reference = vendor_phase("reference")
    grouped_ovs = vendor_phase("ovs")
    interop_event(grouped_reference, grouped_ovs)


if __name__ == "__main__":
    main()
