#!/usr/bin/env python3
"""Regression testing of a modified firmware build (paper §5.1.1 scenario).

A vendor ships a new build of its agent ("modified") and wants to know
whether its externally visible behaviour changed relative to the previous
release ("reference").  The modern workflow is two-tier:

1. **Hunt** (slow, symbolic): one campaign over the interesting test
   specifications.  The default witness triage turns the raw inconsistency
   list into something actionable — every divergence is confirmed by
   concrete replay, delta-minimized to the few variables that matter, and
   clustered by divergence signature, so dozens of raw reports collapse to
   a handful of root causes.  The confirmed cluster representatives are
   persisted as witness bundles (`soft triage --corpus`).
2. **Guard** (fast, concrete): from then on, every new build replays the
   stored corpus (`soft corpus run`) — pure concrete execution, zero solver
   queries — and fails the moment a stored witness stops diverging, i.e.
   the moment behaviour moved again.

The manual OFTest-style baseline passes on both builds and sees nothing.

    python examples/regression_hunt.py
"""

import shutil
import tempfile

from repro.agents.modified.mutations import MUTATIONS
from repro.baselines.oftest import run_suite
from repro.core.campaign import Campaign
from repro.core.corpus import WitnessCorpus

TESTS = ("packet_out", "stats_request", "set_config", "flow_mod")


def main() -> None:
    print("Manual baseline (OFTest-style) on both builds:")
    for agent in ("reference", "modified"):
        results = run_suite(agent)
        print("  %-10s %d/%d cases pass" % (agent, sum(r.passed for r in results), len(results)))
    print("  -> the manual suite cannot tell the builds apart.\n")

    corpus_dir = tempfile.mkdtemp(prefix="soft_corpus_")
    try:
        # Tier 1: the symbolic hunt.  Triage runs by default; corpus_dir
        # persists one minimized witness bundle per divergence signature.
        print("SOFT campaign (reference vs modified) with witness triage:")
        report = (Campaign(corpus_dir=corpus_dir)
                  .with_tests(*TESTS)
                  .with_agents("reference", "modified")
                  .with_workers(4)
                  .run())
        for row in report.summary_rows():
            print("  %-14s %3d inconsistencies (%d replay-verified, %.1fs)"
                  % (row["test"], row["inconsistencies"],
                     row["replay_verified"], row["total_time"]))
        triage = report.triage
        print("\n" + triage.describe())
        print("\n%d raw inconsistencies -> %d clusters; %d bundle(s) saved to corpus"
              % (triage.raw_witnesses, triage.cluster_count, report.corpus_saved))

        # Which injected modifications did the clusters reach?
        surfaced_tests = {c.signature.test_key for c in triage.clusters}
        print("\nInjected modifications and whether these test sequences reach them:")
        for mutation in MUTATIONS:
            reachable = bool(set(mutation.surfaced_by) & surfaced_tests)
            status = "surfaced" if reachable else (
                "not reachable by SOFT inputs" if not mutation.detectable
                else "not surfaced by the selected tests")
            print("  - %-32s %s" % (mutation.key, status))

        # Tier 2: the fast guard.  Replaying the corpus needs no solver and
        # no symbolic exploration — this is what CI runs on every build.
        print("\nSolver-free corpus replay (the per-build regression gate):")
        run = WitnessCorpus(corpus_dir).run()
        print("  %d witness(es) replayed in %.2fs (%.0f/s), ok=%s, 0 solver queries"
              % (run.replayed, run.wall_time, run.witnesses_per_sec, run.ok))
        assert run.ok, "a stored witness stopped diverging: behaviour moved again"
    finally:
        shutil.rmtree(corpus_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
