#!/usr/bin/env python3
"""Regression testing of a modified firmware build (paper §5.1.1 scenario).

A vendor ships a new build of its agent ("modified") and wants to know whether
its externally visible behaviour changed relative to the previous release
("reference").  SOFT is run over several test specifications; every reported
inconsistency is a behavioural regression candidate, and the generated
concrete test case is the bug report.  The example also shows the two kinds of
change SOFT structurally cannot see (handshake-only and timer-driven
behaviour), and contrasts the result with the manual OFTest-style baseline,
which passes on both builds.

    python examples/regression_hunt.py
"""

from repro.agents.modified.mutations import MUTATIONS
from repro.baselines.oftest import run_suite
from repro.core.soft import SOFT

TESTS = ("packet_out", "stats_request", "set_config", "flow_mod")


def main() -> None:
    print("Manual baseline (OFTest-style) on both builds:")
    for agent in ("reference", "modified"):
        results = run_suite(agent)
        print("  %-10s %d/%d cases pass" % (agent, sum(r.passed for r in results), len(results)))
    print("  -> the manual suite cannot tell the builds apart.\n")

    soft = SOFT(replay_testcases=True)
    total = 0
    surfaced_tests = set()
    for test in TESTS:
        report = soft.run(test, "reference", "modified")
        total += report.inconsistency_count
        if report.inconsistency_count:
            surfaced_tests.add(test)
        print("SOFT %-14s %3d inconsistencies (%d replay-verified, %.1fs)"
              % (test, report.inconsistency_count,
                 report.verified_inconsistency_count(), report.total_time))

    print("\n%d behavioural differences reported in total.\n" % total)
    print("Injected modifications and whether these test sequences can reach them:")
    for mutation in MUTATIONS:
        reachable = bool(set(mutation.surfaced_by) & surfaced_tests)
        status = "surfaced" if reachable else (
            "not reachable by SOFT inputs" if not mutation.detectable else "not surfaced by the selected tests")
        print("  - %-32s %s" % (mutation.key, status))


if __name__ == "__main__":
    main()
