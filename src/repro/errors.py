"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError` so that
applications embedding the tooling can catch a single base class.  Errors are
grouped by subsystem (symbolic execution, protocol, agents, harness, core
pipeline) which keeps ``except`` clauses precise without forcing callers to
import deep modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Symbolic execution engine
# ---------------------------------------------------------------------------

class SymbexError(ReproError):
    """Base class for symbolic-execution related errors."""


class ExpressionError(SymbexError):
    """An expression was constructed or combined in an invalid way."""


class WidthMismatchError(ExpressionError):
    """Two bit-vector operands of different widths were combined."""


class ConcretizationError(SymbexError):
    """A symbolic value was used where a concrete value is required."""


class SolverError(SymbexError):
    """The constraint solver failed or was mis-used."""


class SolverTimeoutError(SolverError):
    """The constraint solver exceeded its configured budget."""


class UnknownResultError(SolverError):
    """The solver returned an inconclusive answer where a decision is needed."""


class EngineError(SymbexError):
    """The path-exploration engine detected an internal inconsistency."""


class NoActiveEngineError(EngineError):
    """A symbolic boolean was branched on outside of an exploration context."""


class PathDivergedError(EngineError):
    """Replay of a decision schedule took a different branch than recorded.

    This indicates non-determinism in the program under test (e.g. iteration
    over an unordered container keyed by object identity) and is surfaced
    loudly because silent divergence would corrupt path conditions.
    """


class PathLimitExceeded(EngineError):
    """Exploration hit the configured maximum number of paths."""


class DecisionLimitExceeded(EngineError):
    """A single path hit the configured maximum number of symbolic branches."""


# ---------------------------------------------------------------------------
# OpenFlow protocol / packets
# ---------------------------------------------------------------------------

class ProtocolError(ReproError):
    """Base class for OpenFlow wire-format errors."""


class MessageParseError(ProtocolError):
    """A byte buffer could not be parsed as the expected OpenFlow message."""


class MessageBuildError(ProtocolError):
    """A message object could not be serialized (missing/invalid fields)."""


class PacketError(ReproError):
    """Base class for data-plane packet construction/parsing errors."""


class PacketParseError(PacketError):
    """A byte buffer could not be parsed as the expected packet header."""


# ---------------------------------------------------------------------------
# Agents under test
# ---------------------------------------------------------------------------

class AgentError(ReproError):
    """Base class for errors raised *by* an agent implementation.

    Note: an *uncaught* exception escaping an agent handler is treated by the
    harness as an agent crash (an observable output), not as a harness error.
    """


class AgentCrash(AgentError):
    """Deliberate signal that the agent aborted (models a C-level crash)."""

    def __init__(self, reason: str = "agent aborted") -> None:
        super().__init__(reason)
        self.reason = reason


class AgentRegistrationError(AgentError):
    """An agent failed registration-time validation.

    Raised for metadata problems (empty description, duplicate name,
    missing ``handle_control_buffer``) and, under ``strict=True``, for
    symbex-compatibility lint findings in the agent's source.
    """


class UnknownAgentError(AgentError, KeyError):
    """A name was looked up in the agent registry but nothing is registered.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError`` call
    sites keep working; new code should catch :class:`AgentError` (or
    :class:`ReproError`) instead.
    """

    def __str__(self) -> str:  # KeyError repr()s its message; undo that.
        return self.args[0] if self.args else KeyError.__str__(self)


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class AnalysisError(ReproError):
    """A static-analysis pass (decision map or lint) was driven incorrectly."""


# ---------------------------------------------------------------------------
# Harness / core pipeline
# ---------------------------------------------------------------------------

class HarnessError(ReproError):
    """The test harness was driven incorrectly."""


class PipelineError(ReproError):
    """Base class for SOFT-pipeline (explore/group/crosscheck) errors."""


class TraceError(PipelineError):
    """An output trace could not be normalized or compared."""


class CrosscheckError(PipelineError):
    """The inconsistency finder was invoked with incompatible inputs."""


class ReplayMismatchError(PipelineError):
    """Concrete replay of a generated test case did not reproduce the traces."""


class ArtifactError(PipelineError):
    """A saved Phase-1 artifact could not be parsed or fails validation."""


class CampaignError(PipelineError):
    """A campaign was configured inconsistently (agents, tests or pairs)."""


class CellTimeoutError(PipelineError):
    """A campaign cell (one Phase-1 unit, crosscheck pair or hybrid hunt)
    exceeded its wall-clock deadline and was abandoned by the supervisor."""


class WorkerCrashError(PipelineError):
    """A campaign worker died (killed process, broken pool, injected kill).

    Distinct from :class:`CellTimeoutError` and from an ordinary in-cell
    exception: the *executor*, not the cell's own code, failed.  Campaigns
    record cells that keep crashing as terminal state ``crashed``.
    """


class CheckpointError(PipelineError):
    """A campaign checkpoint could not be created, read or resumed from
    (unwritable directory, truncated journal, incompatible fingerprint)."""


class WitnessError(PipelineError):
    """A witness could not be built, minimized or round-tripped."""


class CorpusError(PipelineError):
    """A persistent witness corpus could not be read, written or replayed."""
