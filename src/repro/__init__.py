"""SOFT: Systematic OpenFlow switch interoperability Testing.

A from-scratch Python reproduction of "A SOFT Way for OpenFlow Switch
Interoperability Testing" (Kuzniar et al., CoNEXT 2012), including every
substrate the system needs:

* :mod:`repro.symbex` — a symbolic execution engine with a bit-vector
  constraint solver (the Cloud9 + STP replacement);
* :mod:`repro.wire`, :mod:`repro.openflow`, :mod:`repro.packetlib` — the
  OpenFlow 1.0 wire protocol and data-plane packets, symbolic-aware;
* :mod:`repro.agents` — three OpenFlow agent implementations to crosscheck
  (Reference Switch, Open vSwitch-style, Modified Switch);
* :mod:`repro.harness` — the emulated controller / data-plane test driver;
* :mod:`repro.core` — SOFT itself: per-agent exploration, grouping of path
  conditions by output, solver-based crosschecking, and concrete test-case
  generation with replay;
* :mod:`repro.coverage` — instruction/branch coverage of agent code;
* :mod:`repro.baselines` — an OFTest-style manual suite and a random fuzzer
  for comparison.

Quickstart::

    from repro import Campaign

    report = (Campaign()
              .with_tests("packet_out", "stats_request")
              .with_agents("reference", "ovs", "modified")
              .with_workers(4)
              .run())
    print(report.describe())

or, for a single pair on a single test::

    from repro import SOFT

    report = SOFT().run("packet_out", "reference", "ovs")
    print(report.describe())
"""

from repro.version import __version__
from repro.core.soft import SOFT, SoftReport
from repro.core.campaign import Campaign, CampaignReport, EncodingCache, ExplorationCache
from repro.core.artifacts import (
    load_exploration_artifact,
    load_exploration_artifacts,
    save_exploration_artifact,
)
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import group_paths
from repro.core.crosscheck import find_inconsistencies
from repro.core.testcase import build_testcase, replay_testcase
from repro.core.witness import (
    DivergenceSignature,
    TriageReport,
    Witness,
    WitnessCluster,
    build_witness,
    minimize_witness,
)
from repro.core.corpus import CorpusRunReport, WitnessCorpus
from repro.core.tests_catalog import catalog, get_test
from repro.hybrid import HuntReport, HybridConfig, HybridHunt
from repro.agents import agent_registry, make_agent, register_agent

__all__ = [
    "__version__",
    "SOFT",
    "SoftReport",
    "Campaign",
    "CampaignReport",
    "EncodingCache",
    "ExplorationCache",
    "AgentExplorationReport",
    "save_exploration_artifact",
    "load_exploration_artifact",
    "load_exploration_artifacts",
    "explore_agent",
    "group_paths",
    "find_inconsistencies",
    "build_testcase",
    "replay_testcase",
    "Witness",
    "WitnessCluster",
    "DivergenceSignature",
    "TriageReport",
    "build_witness",
    "minimize_witness",
    "WitnessCorpus",
    "CorpusRunReport",
    "HybridConfig",
    "HybridHunt",
    "HuntReport",
    "catalog",
    "get_test",
    "make_agent",
    "register_agent",
    "agent_registry",
]
