"""OpenFlow 1.0 protocol constants.

Values follow the OpenFlow Switch Specification version 1.0.0 (wire protocol
0x01).  Only names actually referenced by the agents, the harness or the tests
carry semantics here, but the enumerations are kept complete so that symbolic
exploration of the type-dispatch code sees the same branching structure a real
agent has.
"""

from __future__ import annotations

OFP_VERSION = 0x01
OFP_HEADER_LEN = 8
OFP_MAX_PORT_NAME_LEN = 16
OFP_ETH_ALEN = 6

# ---------------------------------------------------------------------------
# Message types (ofp_type)
# ---------------------------------------------------------------------------

OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_VENDOR = 4
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_GET_CONFIG_REQUEST = 7
OFPT_GET_CONFIG_REPLY = 8
OFPT_SET_CONFIG = 9
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PORT_STATUS = 12
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_PORT_MOD = 15
OFPT_STATS_REQUEST = 16
OFPT_STATS_REPLY = 17
OFPT_BARRIER_REQUEST = 18
OFPT_BARRIER_REPLY = 19
OFPT_QUEUE_GET_CONFIG_REQUEST = 20
OFPT_QUEUE_GET_CONFIG_REPLY = 21

OFPT_MAX = OFPT_QUEUE_GET_CONFIG_REPLY

MESSAGE_TYPE_NAMES = {
    OFPT_HELLO: "HELLO",
    OFPT_ERROR: "ERROR",
    OFPT_ECHO_REQUEST: "ECHO_REQUEST",
    OFPT_ECHO_REPLY: "ECHO_REPLY",
    OFPT_VENDOR: "VENDOR",
    OFPT_FEATURES_REQUEST: "FEATURES_REQUEST",
    OFPT_FEATURES_REPLY: "FEATURES_REPLY",
    OFPT_GET_CONFIG_REQUEST: "GET_CONFIG_REQUEST",
    OFPT_GET_CONFIG_REPLY: "GET_CONFIG_REPLY",
    OFPT_SET_CONFIG: "SET_CONFIG",
    OFPT_PACKET_IN: "PACKET_IN",
    OFPT_FLOW_REMOVED: "FLOW_REMOVED",
    OFPT_PORT_STATUS: "PORT_STATUS",
    OFPT_PACKET_OUT: "PACKET_OUT",
    OFPT_FLOW_MOD: "FLOW_MOD",
    OFPT_PORT_MOD: "PORT_MOD",
    OFPT_STATS_REQUEST: "STATS_REQUEST",
    OFPT_STATS_REPLY: "STATS_REPLY",
    OFPT_BARRIER_REQUEST: "BARRIER_REQUEST",
    OFPT_BARRIER_REPLY: "BARRIER_REPLY",
    OFPT_QUEUE_GET_CONFIG_REQUEST: "QUEUE_GET_CONFIG_REQUEST",
    OFPT_QUEUE_GET_CONFIG_REPLY: "QUEUE_GET_CONFIG_REPLY",
}

# ---------------------------------------------------------------------------
# Port numbers (ofp_port)
# ---------------------------------------------------------------------------

OFPP_MAX = 0xFF00
OFPP_IN_PORT = 0xFFF8
OFPP_TABLE = 0xFFF9
OFPP_NORMAL = 0xFFFA
OFPP_FLOOD = 0xFFFB
OFPP_ALL = 0xFFFC
OFPP_CONTROLLER = 0xFFFD
OFPP_LOCAL = 0xFFFE
OFPP_NONE = 0xFFFF

PORT_NAMES = {
    OFPP_IN_PORT: "IN_PORT",
    OFPP_TABLE: "TABLE",
    OFPP_NORMAL: "NORMAL",
    OFPP_FLOOD: "FLOOD",
    OFPP_ALL: "ALL",
    OFPP_CONTROLLER: "CONTROLLER",
    OFPP_LOCAL: "LOCAL",
    OFPP_NONE: "NONE",
}

# ---------------------------------------------------------------------------
# Action types (ofp_action_type)
# ---------------------------------------------------------------------------

OFPAT_OUTPUT = 0
OFPAT_SET_VLAN_VID = 1
OFPAT_SET_VLAN_PCP = 2
OFPAT_STRIP_VLAN = 3
OFPAT_SET_DL_SRC = 4
OFPAT_SET_DL_DST = 5
OFPAT_SET_NW_SRC = 6
OFPAT_SET_NW_DST = 7
OFPAT_SET_NW_TOS = 8
OFPAT_SET_TP_SRC = 9
OFPAT_SET_TP_DST = 10
OFPAT_ENQUEUE = 11
OFPAT_VENDOR = 0xFFFF

ACTION_TYPE_NAMES = {
    OFPAT_OUTPUT: "OUTPUT",
    OFPAT_SET_VLAN_VID: "SET_VLAN_VID",
    OFPAT_SET_VLAN_PCP: "SET_VLAN_PCP",
    OFPAT_STRIP_VLAN: "STRIP_VLAN",
    OFPAT_SET_DL_SRC: "SET_DL_SRC",
    OFPAT_SET_DL_DST: "SET_DL_DST",
    OFPAT_SET_NW_SRC: "SET_NW_SRC",
    OFPAT_SET_NW_DST: "SET_NW_DST",
    OFPAT_SET_NW_TOS: "SET_NW_TOS",
    OFPAT_SET_TP_SRC: "SET_TP_SRC",
    OFPAT_SET_TP_DST: "SET_TP_DST",
    OFPAT_ENQUEUE: "ENQUEUE",
    OFPAT_VENDOR: "VENDOR",
}

#: Wire length of the fixed part of each action type (multiple of 8).
ACTION_LENGTHS = {
    OFPAT_OUTPUT: 8,
    OFPAT_SET_VLAN_VID: 8,
    OFPAT_SET_VLAN_PCP: 8,
    OFPAT_STRIP_VLAN: 8,
    OFPAT_SET_DL_SRC: 16,
    OFPAT_SET_DL_DST: 16,
    OFPAT_SET_NW_SRC: 8,
    OFPAT_SET_NW_DST: 8,
    OFPAT_SET_NW_TOS: 8,
    OFPAT_SET_TP_SRC: 8,
    OFPAT_SET_TP_DST: 8,
    OFPAT_ENQUEUE: 16,
    OFPAT_VENDOR: 8,
}

# ---------------------------------------------------------------------------
# Flow Mod commands and flags (ofp_flow_mod_command / ofp_flow_mod_flags)
# ---------------------------------------------------------------------------

OFPFC_ADD = 0
OFPFC_MODIFY = 1
OFPFC_MODIFY_STRICT = 2
OFPFC_DELETE = 3
OFPFC_DELETE_STRICT = 4

FLOW_MOD_COMMAND_NAMES = {
    OFPFC_ADD: "ADD",
    OFPFC_MODIFY: "MODIFY",
    OFPFC_MODIFY_STRICT: "MODIFY_STRICT",
    OFPFC_DELETE: "DELETE",
    OFPFC_DELETE_STRICT: "DELETE_STRICT",
}

OFPFF_SEND_FLOW_REM = 1 << 0
OFPFF_CHECK_OVERLAP = 1 << 1
OFPFF_EMERG = 1 << 2

# ---------------------------------------------------------------------------
# Wildcard bits (ofp_flow_wildcards)
# ---------------------------------------------------------------------------

OFPFW_IN_PORT = 1 << 0
OFPFW_DL_VLAN = 1 << 1
OFPFW_DL_SRC = 1 << 2
OFPFW_DL_DST = 1 << 3
OFPFW_DL_TYPE = 1 << 4
OFPFW_NW_PROTO = 1 << 5
OFPFW_TP_SRC = 1 << 6
OFPFW_TP_DST = 1 << 7
OFPFW_NW_SRC_SHIFT = 8
OFPFW_NW_SRC_BITS = 6
OFPFW_NW_SRC_MASK = ((1 << OFPFW_NW_SRC_BITS) - 1) << OFPFW_NW_SRC_SHIFT
OFPFW_NW_SRC_ALL = 32 << OFPFW_NW_SRC_SHIFT
OFPFW_NW_DST_SHIFT = 14
OFPFW_NW_DST_BITS = 6
OFPFW_NW_DST_MASK = ((1 << OFPFW_NW_DST_BITS) - 1) << OFPFW_NW_DST_SHIFT
OFPFW_NW_DST_ALL = 32 << OFPFW_NW_DST_SHIFT
OFPFW_DL_VLAN_PCP = 1 << 20
OFPFW_NW_TOS = 1 << 21
OFPFW_ALL = (1 << 22) - 1

# ---------------------------------------------------------------------------
# Error types and codes (ofp_error_type / codes)
# ---------------------------------------------------------------------------

OFPET_HELLO_FAILED = 0
OFPET_BAD_REQUEST = 1
OFPET_BAD_ACTION = 2
OFPET_FLOW_MOD_FAILED = 3
OFPET_PORT_MOD_FAILED = 4
OFPET_QUEUE_OP_FAILED = 5

ERROR_TYPE_NAMES = {
    OFPET_HELLO_FAILED: "HELLO_FAILED",
    OFPET_BAD_REQUEST: "BAD_REQUEST",
    OFPET_BAD_ACTION: "BAD_ACTION",
    OFPET_FLOW_MOD_FAILED: "FLOW_MOD_FAILED",
    OFPET_PORT_MOD_FAILED: "PORT_MOD_FAILED",
    OFPET_QUEUE_OP_FAILED: "QUEUE_OP_FAILED",
}

# ofp_hello_failed_code
OFPHFC_INCOMPATIBLE = 0
OFPHFC_EPERM = 1

# ofp_bad_request_code
OFPBRC_BAD_VERSION = 0
OFPBRC_BAD_TYPE = 1
OFPBRC_BAD_STAT = 2
OFPBRC_BAD_VENDOR = 3
OFPBRC_BAD_SUBTYPE = 4
OFPBRC_EPERM = 5
OFPBRC_BAD_LEN = 6
OFPBRC_BUFFER_EMPTY = 7
OFPBRC_BUFFER_UNKNOWN = 8

# ofp_bad_action_code
OFPBAC_BAD_TYPE = 0
OFPBAC_BAD_LEN = 1
OFPBAC_BAD_VENDOR = 2
OFPBAC_BAD_VENDOR_TYPE = 3
OFPBAC_BAD_OUT_PORT = 4
OFPBAC_BAD_ARGUMENT = 5
OFPBAC_EPERM = 6
OFPBAC_TOO_MANY = 7
OFPBAC_BAD_QUEUE = 8

# ofp_flow_mod_failed_code
OFPFMFC_ALL_TABLES_FULL = 0
OFPFMFC_OVERLAP = 1
OFPFMFC_EPERM = 2
OFPFMFC_BAD_EMERG_TIMEOUT = 3
OFPFMFC_BAD_COMMAND = 4
OFPFMFC_UNSUPPORTED = 5

# ofp_port_mod_failed_code
OFPPMFC_BAD_PORT = 0
OFPPMFC_BAD_HW_ADDR = 1

# ofp_queue_op_failed_code
OFPQOFC_BAD_PORT = 0
OFPQOFC_BAD_QUEUE = 1
OFPQOFC_EPERM = 2

ERROR_CODE_NAMES = {
    OFPET_HELLO_FAILED: {0: "INCOMPATIBLE", 1: "EPERM"},
    OFPET_BAD_REQUEST: {
        0: "BAD_VERSION", 1: "BAD_TYPE", 2: "BAD_STAT", 3: "BAD_VENDOR",
        4: "BAD_SUBTYPE", 5: "EPERM", 6: "BAD_LEN", 7: "BUFFER_EMPTY",
        8: "BUFFER_UNKNOWN",
    },
    OFPET_BAD_ACTION: {
        0: "BAD_TYPE", 1: "BAD_LEN", 2: "BAD_VENDOR", 3: "BAD_VENDOR_TYPE",
        4: "BAD_OUT_PORT", 5: "BAD_ARGUMENT", 6: "EPERM", 7: "TOO_MANY",
        8: "BAD_QUEUE",
    },
    OFPET_FLOW_MOD_FAILED: {
        0: "ALL_TABLES_FULL", 1: "OVERLAP", 2: "EPERM", 3: "BAD_EMERG_TIMEOUT",
        4: "BAD_COMMAND", 5: "UNSUPPORTED",
    },
    OFPET_PORT_MOD_FAILED: {0: "BAD_PORT", 1: "BAD_HW_ADDR"},
    OFPET_QUEUE_OP_FAILED: {0: "BAD_PORT", 1: "BAD_QUEUE", 2: "EPERM"},
}

# ---------------------------------------------------------------------------
# Stats types (ofp_stats_types)
# ---------------------------------------------------------------------------

OFPST_DESC = 0
OFPST_FLOW = 1
OFPST_AGGREGATE = 2
OFPST_TABLE = 3
OFPST_PORT = 4
OFPST_QUEUE = 5
OFPST_VENDOR = 0xFFFF

STATS_TYPE_NAMES = {
    OFPST_DESC: "DESC",
    OFPST_FLOW: "FLOW",
    OFPST_AGGREGATE: "AGGREGATE",
    OFPST_TABLE: "TABLE",
    OFPST_PORT: "PORT",
    OFPST_QUEUE: "QUEUE",
    OFPST_VENDOR: "VENDOR",
}

# ---------------------------------------------------------------------------
# Config flags, capabilities, packet-in reasons, misc
# ---------------------------------------------------------------------------

OFPC_FRAG_NORMAL = 0
OFPC_FRAG_DROP = 1
OFPC_FRAG_REASM = 2
OFPC_FRAG_MASK = 3

OFPC_FLOW_STATS = 1 << 0
OFPC_TABLE_STATS = 1 << 1
OFPC_PORT_STATS = 1 << 2
OFPC_STP = 1 << 3
OFPC_RESERVED = 1 << 4
OFPC_IP_REASM = 1 << 5
OFPC_QUEUE_STATS = 1 << 6
OFPC_ARP_MATCH_IP = 1 << 7

OFPR_NO_MATCH = 0
OFPR_ACTION = 1

OFPRR_IDLE_TIMEOUT = 0
OFPRR_HARD_TIMEOUT = 1
OFPRR_DELETE = 2

OFPPR_ADD = 0
OFPPR_DELETE = 1
OFPPR_MODIFY = 2

OFP_NO_BUFFER = 0xFFFFFFFF
OFP_DEFAULT_PRIORITY = 0x8000
OFP_VLAN_NONE = 0xFFFF
OFP_DEFAULT_MISS_SEND_LEN = 128
OFPQ_ALL = 0xFFFFFFFF

OFP_FLOW_PERMANENT = 0

# Ethernet types used by the match / packet code.
ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100

# IP protocol numbers.
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# Fixed wire sizes of full messages / structures (bytes).
OFP_MATCH_LEN = 40
OFP_FLOW_MOD_LEN = 72           # header + match + fixed fields, without actions
OFP_PACKET_OUT_LEN = 16         # header + fixed fields, without actions/data
OFP_SWITCH_CONFIG_LEN = 12
OFP_STATS_REQUEST_LEN = 12      # header + type + flags, without body
OFP_PHY_PORT_LEN = 48
OFP_SWITCH_FEATURES_LEN = 32    # without ports
OFP_ACTION_HEADER_LEN = 4
OFP_ERROR_MSG_LEN = 12          # without data
OFP_PACKET_IN_LEN = 18          # without packet data
OFP_FLOW_REMOVED_LEN = 88
OFP_PORT_STATUS_LEN = 64
OFP_QUEUE_GET_CONFIG_REQUEST_LEN = 12
OFP_QUEUE_GET_CONFIG_REPLY_LEN = 16
OFP_FLOW_STATS_REQUEST_LEN = 44
OFP_PORT_STATS_REQUEST_LEN = 8
OFP_QUEUE_STATS_REQUEST_LEN = 8
