"""OpenFlow 1.0 control messages.

Every message supports ``pack()`` into a (possibly symbolic)
:class:`~repro.wire.buffer.SymBuffer` and a classmethod ``unpack`` from one.
The message *structure* (type code, total length, number and size of actions)
is always concrete — the paper's key scalability insight (§3.2.1) — while the
individual field values may be symbolic bit-vectors.

Agents receive the packed buffers on their control channel and run their own
parsing/validation code over them; they respond with message *objects*, which
the harness records in the output trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.errors import MessageBuildError
from repro.openflow import constants as c
from repro.openflow.actions import Action, pack_actions, unpack_actions
from repro.openflow.match import Match
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, as_field, field_repr

__all__ = [
    "OpenFlowMessage",
    "Hello",
    "ErrorMsg",
    "EchoRequest",
    "EchoReply",
    "Vendor",
    "FeaturesRequest",
    "FeaturesReply",
    "GetConfigRequest",
    "GetConfigReply",
    "SetConfig",
    "PacketIn",
    "FlowRemoved",
    "PortStatus",
    "PacketOut",
    "FlowMod",
    "PortMod",
    "StatsRequest",
    "StatsReply",
    "BarrierRequest",
    "BarrierReply",
    "QueueGetConfigRequest",
    "QueueGetConfigReply",
    "PhyPort",
]

DataLike = Union[bytes, SymBuffer]


def _data_buffer(data: DataLike) -> SymBuffer:
    if isinstance(data, SymBuffer):
        return data
    return SymBuffer(data)


@dataclass
class OpenFlowMessage:
    """Common header fields of every OpenFlow message."""

    TYPE = -1

    xid: FieldValue = 0
    version: FieldValue = c.OFP_VERSION

    def body(self) -> SymBuffer:
        """Serialize the message body (everything after the 8-byte header)."""

        return SymBuffer()

    def pack(self) -> SymBuffer:
        """Serialize header plus body; the length field is always concrete."""

        body = self.body()
        buf = SymBuffer()
        buf.write_u8(self.version)
        buf.write_u8(self.TYPE)
        buf.write_u16(c.OFP_HEADER_LEN + len(body))
        buf.write_u32(self.xid)
        buf.write_bytes(body)
        return buf

    @property
    def type_name(self) -> str:
        return c.MESSAGE_TYPE_NAMES.get(self.TYPE, "UNKNOWN(%d)" % self.TYPE)

    def describe(self) -> str:
        """Stable, human-readable one-line rendering (used in traces)."""

        return "%s(xid=%s)" % (self.type_name, field_repr(self.xid))


@dataclass
class Hello(OpenFlowMessage):
    """OFPT_HELLO: version negotiation at connection setup."""

    TYPE = c.OFPT_HELLO


@dataclass
class ErrorMsg(OpenFlowMessage):
    """OFPT_ERROR: the switch rejects or fails to process a request."""

    TYPE = c.OFPT_ERROR

    err_type: FieldValue = 0
    code: FieldValue = 0
    data: DataLike = b""

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.err_type)
        buf.write_u16(self.code)
        buf.write_bytes(_data_buffer(self.data))
        return buf

    def describe(self) -> str:
        type_name = c.ERROR_TYPE_NAMES.get(self.err_type, str(self.err_type)) \
            if isinstance(self.err_type, int) else field_repr(self.err_type)
        if isinstance(self.err_type, int) and isinstance(self.code, int):
            code_name = c.ERROR_CODE_NAMES.get(self.err_type, {}).get(self.code, str(self.code))
        else:
            code_name = field_repr(self.code)
        return "ERROR(type=%s,code=%s)" % (type_name, code_name)


@dataclass
class EchoRequest(OpenFlowMessage):
    """OFPT_ECHO_REQUEST: keep-alive probe from the controller."""

    TYPE = c.OFPT_ECHO_REQUEST

    data: DataLike = b""

    def body(self) -> SymBuffer:
        return _data_buffer(self.data).copy()

    def describe(self) -> str:
        return "ECHO_REQUEST(%d bytes)" % len(_data_buffer(self.data))


@dataclass
class EchoReply(OpenFlowMessage):
    """OFPT_ECHO_REPLY: answer to an echo request, echoing its payload."""

    TYPE = c.OFPT_ECHO_REPLY

    data: DataLike = b""

    def body(self) -> SymBuffer:
        return _data_buffer(self.data).copy()

    def describe(self) -> str:
        return "ECHO_REPLY(%d bytes)" % len(_data_buffer(self.data))


@dataclass
class Vendor(OpenFlowMessage):
    """OFPT_VENDOR: vendor extension container."""

    TYPE = c.OFPT_VENDOR

    vendor: FieldValue = 0
    data: DataLike = b""

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u32(self.vendor)
        buf.write_bytes(_data_buffer(self.data))
        return buf

    def describe(self) -> str:
        return "VENDOR(id=%s)" % field_repr(self.vendor)


@dataclass
class FeaturesRequest(OpenFlowMessage):
    """OFPT_FEATURES_REQUEST: ask the switch for its datapath description."""

    TYPE = c.OFPT_FEATURES_REQUEST


@dataclass
class PhyPort:
    """``ofp_phy_port``: description of one physical port."""

    port_no: FieldValue = 0
    hw_addr: FieldValue = 0
    name: str = ""
    config: FieldValue = 0
    state: FieldValue = 0
    curr: FieldValue = 0
    advertised: FieldValue = 0
    supported: FieldValue = 0
    peer: FieldValue = 0

    def pack(self) -> SymBuffer:
        from repro.openflow.match import _mac_bytes

        buf = SymBuffer()
        buf.write_u16(self.port_no)
        buf.write_bytes(_mac_bytes(self.hw_addr))
        name_bytes = self.name.encode("ascii")[: c.OFP_MAX_PORT_NAME_LEN]
        buf.write_bytes(name_bytes)
        buf.pad(c.OFP_MAX_PORT_NAME_LEN - len(name_bytes))
        buf.write_u32(self.config)
        buf.write_u32(self.state)
        buf.write_u32(self.curr)
        buf.write_u32(self.advertised)
        buf.write_u32(self.supported)
        buf.write_u32(self.peer)
        return buf

    def describe(self) -> str:
        return "port(no=%s,name=%s)" % (field_repr(self.port_no), self.name)


@dataclass
class FeaturesReply(OpenFlowMessage):
    """OFPT_FEATURES_REPLY: datapath id, table/buffer counts and port list."""

    TYPE = c.OFPT_FEATURES_REPLY

    datapath_id: FieldValue = 0
    n_buffers: FieldValue = 0
    n_tables: FieldValue = 1
    capabilities: FieldValue = 0
    actions: FieldValue = 0
    ports: List[PhyPort] = field(default_factory=list)

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u64(self.datapath_id)
        buf.write_u32(self.n_buffers)
        buf.write_u8(self.n_tables)
        buf.pad(3)
        buf.write_u32(self.capabilities)
        buf.write_u32(self.actions)
        for port in self.ports:
            buf.write_bytes(port.pack())
        return buf

    def describe(self) -> str:
        return "FEATURES_REPLY(dpid=%s,ports=%d)" % (field_repr(self.datapath_id), len(self.ports))


@dataclass
class GetConfigRequest(OpenFlowMessage):
    """OFPT_GET_CONFIG_REQUEST."""

    TYPE = c.OFPT_GET_CONFIG_REQUEST


@dataclass
class _SwitchConfig(OpenFlowMessage):
    """Shared body of GET_CONFIG_REPLY and SET_CONFIG."""

    flags: FieldValue = 0
    miss_send_len: FieldValue = c.OFP_DEFAULT_MISS_SEND_LEN

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.flags)
        buf.write_u16(self.miss_send_len)
        return buf

    def describe(self) -> str:
        return "%s(flags=%s,miss_send_len=%s)" % (
            self.type_name, field_repr(self.flags), field_repr(self.miss_send_len))


@dataclass
class GetConfigReply(_SwitchConfig):
    """OFPT_GET_CONFIG_REPLY."""

    TYPE = c.OFPT_GET_CONFIG_REPLY


@dataclass
class SetConfig(_SwitchConfig):
    """OFPT_SET_CONFIG: fragment handling flags and miss_send_len."""

    TYPE = c.OFPT_SET_CONFIG


@dataclass
class PacketIn(OpenFlowMessage):
    """OFPT_PACKET_IN: the switch hands a packet to the controller."""

    TYPE = c.OFPT_PACKET_IN

    buffer_id: FieldValue = c.OFP_NO_BUFFER
    total_len: FieldValue = 0
    in_port: FieldValue = 0
    reason: FieldValue = c.OFPR_NO_MATCH
    data: DataLike = b""

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u32(self.buffer_id)
        buf.write_u16(self.total_len)
        buf.write_u16(self.in_port)
        buf.write_u8(self.reason)
        buf.pad(1)
        buf.write_bytes(_data_buffer(self.data))
        return buf

    def describe(self) -> str:
        return "PACKET_IN(in_port=%s,reason=%s,len=%d)" % (
            field_repr(self.in_port), field_repr(self.reason), len(_data_buffer(self.data)))


@dataclass
class FlowRemoved(OpenFlowMessage):
    """OFPT_FLOW_REMOVED: a flow entry expired or was deleted."""

    TYPE = c.OFPT_FLOW_REMOVED

    match: Match = field(default_factory=Match)
    cookie: FieldValue = 0
    priority: FieldValue = 0
    reason: FieldValue = c.OFPRR_IDLE_TIMEOUT
    duration_sec: FieldValue = 0
    duration_nsec: FieldValue = 0
    idle_timeout: FieldValue = 0
    packet_count: FieldValue = 0
    byte_count: FieldValue = 0

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_bytes(self.match.pack())
        buf.write_u64(self.cookie)
        buf.write_u16(self.priority)
        buf.write_u8(self.reason)
        buf.pad(1)
        buf.write_u32(self.duration_sec)
        buf.write_u32(self.duration_nsec)
        buf.write_u16(self.idle_timeout)
        buf.pad(2)
        buf.write_u64(self.packet_count)
        buf.write_u64(self.byte_count)
        return buf

    def describe(self) -> str:
        return "FLOW_REMOVED(reason=%s,priority=%s)" % (
            field_repr(self.reason), field_repr(self.priority))


@dataclass
class PortStatus(OpenFlowMessage):
    """OFPT_PORT_STATUS: a port was added, removed or modified."""

    TYPE = c.OFPT_PORT_STATUS

    reason: FieldValue = c.OFPPR_MODIFY
    desc: PhyPort = field(default_factory=PhyPort)

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u8(self.reason)
        buf.pad(7)
        buf.write_bytes(self.desc.pack())
        return buf

    def describe(self) -> str:
        return "PORT_STATUS(reason=%s,%s)" % (field_repr(self.reason), self.desc.describe())


@dataclass
class PacketOut(OpenFlowMessage):
    """OFPT_PACKET_OUT: the controller asks the switch to emit a packet."""

    TYPE = c.OFPT_PACKET_OUT

    buffer_id: FieldValue = c.OFP_NO_BUFFER
    in_port: FieldValue = c.OFPP_NONE
    actions: List[Action] = field(default_factory=list)
    data: DataLike = b""

    def body(self) -> SymBuffer:
        actions = pack_actions(self.actions)
        buf = SymBuffer()
        buf.write_u32(self.buffer_id)
        buf.write_u16(self.in_port)
        buf.write_u16(len(actions))
        buf.write_bytes(actions)
        buf.write_bytes(_data_buffer(self.data))
        return buf

    def describe(self) -> str:
        return "PACKET_OUT(buffer_id=%s,in_port=%s,actions=[%s],data=%d bytes)" % (
            field_repr(self.buffer_id),
            field_repr(self.in_port),
            ",".join(a.describe() for a in self.actions),
            len(_data_buffer(self.data)),
        )


@dataclass
class FlowMod(OpenFlowMessage):
    """OFPT_FLOW_MOD: add, modify or delete a flow table entry."""

    TYPE = c.OFPT_FLOW_MOD

    match: Match = field(default_factory=Match)
    cookie: FieldValue = 0
    command: FieldValue = c.OFPFC_ADD
    idle_timeout: FieldValue = 0
    hard_timeout: FieldValue = 0
    priority: FieldValue = c.OFP_DEFAULT_PRIORITY
    buffer_id: FieldValue = c.OFP_NO_BUFFER
    out_port: FieldValue = c.OFPP_NONE
    flags: FieldValue = 0
    actions: List[Action] = field(default_factory=list)

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_bytes(self.match.pack())
        buf.write_u64(self.cookie)
        buf.write_u16(self.command)
        buf.write_u16(self.idle_timeout)
        buf.write_u16(self.hard_timeout)
        buf.write_u16(self.priority)
        buf.write_u32(self.buffer_id)
        buf.write_u16(self.out_port)
        buf.write_u16(self.flags)
        buf.write_bytes(pack_actions(self.actions))
        return buf

    def describe(self) -> str:
        command = c.FLOW_MOD_COMMAND_NAMES.get(self.command, str(self.command)) \
            if isinstance(self.command, int) else field_repr(self.command)
        return "FLOW_MOD(cmd=%s,priority=%s,actions=[%s])" % (
            command, field_repr(self.priority), ",".join(a.describe() for a in self.actions))


@dataclass
class PortMod(OpenFlowMessage):
    """OFPT_PORT_MOD: modify the configuration of a physical port."""

    TYPE = c.OFPT_PORT_MOD

    port_no: FieldValue = 0
    hw_addr: FieldValue = 0
    config: FieldValue = 0
    mask: FieldValue = 0
    advertise: FieldValue = 0

    def body(self) -> SymBuffer:
        from repro.openflow.match import _mac_bytes

        buf = SymBuffer()
        buf.write_u16(self.port_no)
        buf.write_bytes(_mac_bytes(self.hw_addr))
        buf.write_u32(self.config)
        buf.write_u32(self.mask)
        buf.write_u32(self.advertise)
        buf.pad(4)
        return buf

    def describe(self) -> str:
        return "PORT_MOD(port=%s)" % field_repr(self.port_no)


@dataclass
class StatsRequest(OpenFlowMessage):
    """OFPT_STATS_REQUEST: request one class of statistics."""

    TYPE = c.OFPT_STATS_REQUEST

    stats_type: FieldValue = c.OFPST_DESC
    flags: FieldValue = 0
    stats_body: DataLike = b""

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.stats_type)
        buf.write_u16(self.flags)
        buf.write_bytes(_data_buffer(self.stats_body))
        return buf

    def describe(self) -> str:
        name = c.STATS_TYPE_NAMES.get(self.stats_type, str(self.stats_type)) \
            if isinstance(self.stats_type, int) else field_repr(self.stats_type)
        return "STATS_REQUEST(type=%s)" % name


@dataclass
class StatsReply(OpenFlowMessage):
    """OFPT_STATS_REPLY: statistics response (body is type-specific)."""

    TYPE = c.OFPT_STATS_REPLY

    stats_type: FieldValue = c.OFPST_DESC
    flags: FieldValue = 0
    stats_body: DataLike = b""
    #: Optional structured rendering used for trace comparison (set by agents).
    summary: str = ""

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.stats_type)
        buf.write_u16(self.flags)
        buf.write_bytes(_data_buffer(self.stats_body))
        return buf

    def describe(self) -> str:
        name = c.STATS_TYPE_NAMES.get(self.stats_type, str(self.stats_type)) \
            if isinstance(self.stats_type, int) else field_repr(self.stats_type)
        if self.summary:
            return "STATS_REPLY(type=%s,%s)" % (name, self.summary)
        return "STATS_REPLY(type=%s,%d bytes)" % (name, len(_data_buffer(self.stats_body)))


@dataclass
class BarrierRequest(OpenFlowMessage):
    """OFPT_BARRIER_REQUEST."""

    TYPE = c.OFPT_BARRIER_REQUEST


@dataclass
class BarrierReply(OpenFlowMessage):
    """OFPT_BARRIER_REPLY."""

    TYPE = c.OFPT_BARRIER_REPLY


@dataclass
class QueueGetConfigRequest(OpenFlowMessage):
    """OFPT_QUEUE_GET_CONFIG_REQUEST: ask for the queues configured on a port."""

    TYPE = c.OFPT_QUEUE_GET_CONFIG_REQUEST

    port: FieldValue = 0

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.port)
        buf.pad(2)
        return buf

    def describe(self) -> str:
        return "QUEUE_GET_CONFIG_REQUEST(port=%s)" % field_repr(self.port)


@dataclass
class QueueGetConfigReply(OpenFlowMessage):
    """OFPT_QUEUE_GET_CONFIG_REPLY."""

    TYPE = c.OFPT_QUEUE_GET_CONFIG_REPLY

    port: FieldValue = 0
    queues: List[int] = field(default_factory=list)

    def body(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.port)
        buf.pad(6)
        for queue_id in self.queues:
            buf.write_u32(queue_id)
            buf.write_u16(8)
            buf.pad(2)
        return buf

    def describe(self) -> str:
        return "QUEUE_GET_CONFIG_REPLY(port=%s,queues=%d)" % (field_repr(self.port), len(self.queues))
