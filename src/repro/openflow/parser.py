"""Parsing of OpenFlow messages from byte buffers.

The agents embed their own dispatch-on-type logic (that is where behavioural
differences live), but they share these low-level helpers for reading the
fixed header and the structured bodies, the same way the C implementations
share ``openflow.h`` struct definitions.  The module is also used by the
replay tooling to turn concrete test-case bytes back into message objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import MessageParseError
from repro.openflow import constants as c
from repro.openflow.actions import unpack_actions
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesRequest,
    FlowMod,
    GetConfigRequest,
    Hello,
    OpenFlowMessage,
    PacketOut,
    PortMod,
    QueueGetConfigRequest,
    SetConfig,
    StatsRequest,
    Vendor,
)
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_int

__all__ = ["Header", "parse_header", "parse_message"]


@dataclass
class Header:
    """The fixed 8-byte ``ofp_header``."""

    version: FieldValue
    msg_type: FieldValue
    length: FieldValue
    xid: FieldValue


def parse_header(buf: SymBuffer) -> Header:
    """Read the fixed header; raises when the buffer is shorter than 8 bytes."""

    if len(buf) < c.OFP_HEADER_LEN:
        raise MessageParseError(
            "buffer of %d bytes is too short for an OpenFlow header" % len(buf)
        )
    return Header(
        version=buf.read_u8(0),
        msg_type=buf.read_u8(1),
        length=buf.read_u16(2),
        xid=buf.read_u32(4),
    )


def parse_message(buf: SymBuffer) -> OpenFlowMessage:
    """Parse a full controller-to-switch message with a *concrete* type field.

    Replay and test tooling uses this; agents use their own dispatch so that
    symbolic type fields drive symbolic branching inside agent code.
    """

    header = parse_header(buf)
    msg_type = field_int(header.msg_type)
    xid = header.xid
    body_len = len(buf) - c.OFP_HEADER_LEN

    if msg_type == c.OFPT_HELLO:
        return Hello(xid=xid)
    if msg_type == c.OFPT_ERROR:
        return ErrorMsg(xid=xid, err_type=buf.read_u16(8), code=buf.read_u16(10),
                        data=buf.read_bytes(12, len(buf) - 12))
    if msg_type == c.OFPT_ECHO_REQUEST:
        return EchoRequest(xid=xid, data=buf.read_bytes(8, body_len))
    if msg_type == c.OFPT_ECHO_REPLY:
        return EchoReply(xid=xid, data=buf.read_bytes(8, body_len))
    if msg_type == c.OFPT_VENDOR:
        if body_len < 4:
            raise MessageParseError("VENDOR message shorter than its vendor id")
        return Vendor(xid=xid, vendor=buf.read_u32(8), data=buf.read_bytes(12, len(buf) - 12))
    if msg_type == c.OFPT_FEATURES_REQUEST:
        return FeaturesRequest(xid=xid)
    if msg_type == c.OFPT_GET_CONFIG_REQUEST:
        return GetConfigRequest(xid=xid)
    if msg_type == c.OFPT_SET_CONFIG:
        if body_len < 4:
            raise MessageParseError("SET_CONFIG message truncated")
        return SetConfig(xid=xid, flags=buf.read_u16(8), miss_send_len=buf.read_u16(10))
    if msg_type == c.OFPT_PACKET_OUT:
        return _parse_packet_out(buf, xid)
    if msg_type == c.OFPT_FLOW_MOD:
        return _parse_flow_mod(buf, xid)
    if msg_type == c.OFPT_PORT_MOD:
        if body_len < 24:
            raise MessageParseError("PORT_MOD message truncated")
        return PortMod(xid=xid, port_no=buf.read_u16(8),
                       hw_addr=_read_mac(buf, 10),
                       config=buf.read_u32(16), mask=buf.read_u32(20),
                       advertise=buf.read_u32(24))
    if msg_type == c.OFPT_STATS_REQUEST:
        if body_len < 4:
            raise MessageParseError("STATS_REQUEST message truncated")
        return StatsRequest(xid=xid, stats_type=buf.read_u16(8), flags=buf.read_u16(10),
                            stats_body=buf.read_bytes(12, len(buf) - 12))
    if msg_type == c.OFPT_BARRIER_REQUEST:
        return BarrierRequest(xid=xid)
    if msg_type == c.OFPT_BARRIER_REPLY:
        return BarrierReply(xid=xid)
    if msg_type == c.OFPT_QUEUE_GET_CONFIG_REQUEST:
        if body_len < 2:
            raise MessageParseError("QUEUE_GET_CONFIG_REQUEST message truncated")
        return QueueGetConfigRequest(xid=xid, port=buf.read_u16(8))
    raise MessageParseError("cannot parse message type %d" % msg_type)


def _read_mac(buf: SymBuffer, offset: int) -> FieldValue:
    from repro.openflow.match import _read_mac as read_mac

    return read_mac(buf, offset)


def _parse_packet_out(buf: SymBuffer, xid: FieldValue) -> PacketOut:
    if len(buf) < c.OFP_PACKET_OUT_LEN:
        raise MessageParseError("PACKET_OUT message truncated")
    actions_len = field_int(buf.read_u16(14))
    if c.OFP_PACKET_OUT_LEN + actions_len > len(buf):
        raise MessageParseError("PACKET_OUT actions overrun the message")
    actions = unpack_actions(buf, c.OFP_PACKET_OUT_LEN, actions_len)
    data_offset = c.OFP_PACKET_OUT_LEN + actions_len
    return PacketOut(
        xid=xid,
        buffer_id=buf.read_u32(8),
        in_port=buf.read_u16(12),
        actions=actions,
        data=buf.read_bytes(data_offset, len(buf) - data_offset),
    )


def _parse_flow_mod(buf: SymBuffer, xid: FieldValue) -> FlowMod:
    if len(buf) < c.OFP_FLOW_MOD_LEN:
        raise MessageParseError("FLOW_MOD message truncated")
    match = Match.unpack(buf, 8)
    actions = unpack_actions(buf, c.OFP_FLOW_MOD_LEN, len(buf) - c.OFP_FLOW_MOD_LEN)
    return FlowMod(
        xid=xid,
        match=match,
        cookie=buf.read_u64(48),
        command=buf.read_u16(56),
        idle_timeout=buf.read_u16(58),
        hard_timeout=buf.read_u16(60),
        priority=buf.read_u16(62),
        buffer_id=buf.read_u32(64),
        out_port=buf.read_u16(68),
        flags=buf.read_u16(70),
        actions=actions,
    )
