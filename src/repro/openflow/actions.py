"""OpenFlow 1.0 action structures.

Actions appear inside ``Flow Mod`` and ``Packet Out`` messages.  Each action
is a fixed-size structure whose length is a multiple of 8 bytes; action lists
concatenate them back to back.  As with :class:`~repro.openflow.match.Match`,
these classes carry data and wire format only — validation and application
semantics belong to the agents (and differ between them, which is the point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConcretizationError, MessageParseError
from repro.openflow import constants as c
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, as_field, field_int, field_repr

__all__ = [
    "Action",
    "ActionOutput",
    "ActionSetVlanVid",
    "ActionSetVlanPcp",
    "ActionStripVlan",
    "ActionSetDlSrc",
    "ActionSetDlDst",
    "ActionSetNwSrc",
    "ActionSetNwDst",
    "ActionSetNwTos",
    "ActionSetTpSrc",
    "ActionSetTpDst",
    "ActionEnqueue",
    "ActionVendor",
    "RawAction",
    "pack_actions",
    "unpack_actions",
    "action_list_length",
]


@dataclass
class Action:
    """Base class of all actions; concrete subclasses define ``TYPE``/``LENGTH``."""

    TYPE = -1
    LENGTH = 8

    def pack(self) -> SymBuffer:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def _header(self, length: Optional[int] = None) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.TYPE)
        buf.write_u16(length if length is not None else self.LENGTH)
        return buf


@dataclass
class ActionOutput(Action):
    """Send the packet out of ``port`` (``max_len`` applies to CONTROLLER output)."""

    port: FieldValue = 0
    max_len: FieldValue = 0

    TYPE = c.OFPAT_OUTPUT
    LENGTH = 8

    def __post_init__(self) -> None:
        self.port = as_field(self.port, 16)
        self.max_len = as_field(self.max_len, 16)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u16(self.port)
        buf.write_u16(self.max_len)
        return buf

    def describe(self) -> str:
        return "output(port=%s,max_len=%s)" % (field_repr(self.port), field_repr(self.max_len))


@dataclass
class ActionSetVlanVid(Action):
    """Set the VLAN identifier (12 significant bits on the wire)."""

    vlan_vid: FieldValue = 0

    TYPE = c.OFPAT_SET_VLAN_VID
    LENGTH = 8

    def __post_init__(self) -> None:
        self.vlan_vid = as_field(self.vlan_vid, 16)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u16(self.vlan_vid)
        buf.pad(2)
        return buf

    def describe(self) -> str:
        return "set_vlan_vid(%s)" % field_repr(self.vlan_vid)


@dataclass
class ActionSetVlanPcp(Action):
    """Set the VLAN priority (3 significant bits)."""

    vlan_pcp: FieldValue = 0

    TYPE = c.OFPAT_SET_VLAN_PCP
    LENGTH = 8

    def __post_init__(self) -> None:
        self.vlan_pcp = as_field(self.vlan_pcp, 8)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u8(self.vlan_pcp)
        buf.pad(3)
        return buf

    def describe(self) -> str:
        return "set_vlan_pcp(%s)" % field_repr(self.vlan_pcp)


@dataclass
class ActionStripVlan(Action):
    """Remove any VLAN tag."""

    TYPE = c.OFPAT_STRIP_VLAN
    LENGTH = 8

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.pad(4)
        return buf

    def describe(self) -> str:
        return "strip_vlan()"


@dataclass
class _ActionSetDl(Action):
    """Common base of the set-Ethernet-address actions."""

    dl_addr: FieldValue = 0

    LENGTH = 16

    def __post_init__(self) -> None:
        self.dl_addr = as_field(self.dl_addr, 48)

    def pack(self) -> SymBuffer:
        from repro.openflow.match import _mac_bytes

        buf = self._header()
        buf.write_bytes(_mac_bytes(self.dl_addr))
        buf.pad(6)
        return buf


@dataclass
class ActionSetDlSrc(_ActionSetDl):
    """Set the Ethernet source address."""

    TYPE = c.OFPAT_SET_DL_SRC

    def describe(self) -> str:
        return "set_dl_src(%s)" % field_repr(self.dl_addr)


@dataclass
class ActionSetDlDst(_ActionSetDl):
    """Set the Ethernet destination address."""

    TYPE = c.OFPAT_SET_DL_DST

    def describe(self) -> str:
        return "set_dl_dst(%s)" % field_repr(self.dl_addr)


@dataclass
class _ActionSetNw(Action):
    """Common base of the set-IP-address actions."""

    nw_addr: FieldValue = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        self.nw_addr = as_field(self.nw_addr, 32)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u32(self.nw_addr)
        return buf


@dataclass
class ActionSetNwSrc(_ActionSetNw):
    """Set the IPv4 source address."""

    TYPE = c.OFPAT_SET_NW_SRC

    def describe(self) -> str:
        return "set_nw_src(%s)" % field_repr(self.nw_addr)


@dataclass
class ActionSetNwDst(_ActionSetNw):
    """Set the IPv4 destination address."""

    TYPE = c.OFPAT_SET_NW_DST

    def describe(self) -> str:
        return "set_nw_dst(%s)" % field_repr(self.nw_addr)


@dataclass
class ActionSetNwTos(Action):
    """Set the IP Type-of-Service byte (the two ECN bits must stay zero)."""

    nw_tos: FieldValue = 0

    TYPE = c.OFPAT_SET_NW_TOS
    LENGTH = 8

    def __post_init__(self) -> None:
        self.nw_tos = as_field(self.nw_tos, 8)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u8(self.nw_tos)
        buf.pad(3)
        return buf

    def describe(self) -> str:
        return "set_nw_tos(%s)" % field_repr(self.nw_tos)


@dataclass
class _ActionSetTp(Action):
    """Common base of the set-transport-port actions."""

    tp_port: FieldValue = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        self.tp_port = as_field(self.tp_port, 16)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u16(self.tp_port)
        buf.pad(2)
        return buf


@dataclass
class ActionSetTpSrc(_ActionSetTp):
    """Set the TCP/UDP source port."""

    TYPE = c.OFPAT_SET_TP_SRC

    def describe(self) -> str:
        return "set_tp_src(%s)" % field_repr(self.tp_port)


@dataclass
class ActionSetTpDst(_ActionSetTp):
    """Set the TCP/UDP destination port."""

    TYPE = c.OFPAT_SET_TP_DST

    def describe(self) -> str:
        return "set_tp_dst(%s)" % field_repr(self.tp_port)


@dataclass
class ActionEnqueue(Action):
    """Output the packet through a specific queue attached to ``port``."""

    port: FieldValue = 0
    queue_id: FieldValue = 0

    TYPE = c.OFPAT_ENQUEUE
    LENGTH = 16

    def __post_init__(self) -> None:
        self.port = as_field(self.port, 16)
        self.queue_id = as_field(self.queue_id, 32)

    def pack(self) -> SymBuffer:
        buf = self._header()
        buf.write_u16(self.port)
        buf.pad(6)
        buf.write_u32(self.queue_id)
        return buf

    def describe(self) -> str:
        return "enqueue(port=%s,queue=%s)" % (field_repr(self.port), field_repr(self.queue_id))


@dataclass
class ActionVendor(Action):
    """A vendor-defined action (opaque body)."""

    vendor: FieldValue = 0
    body: bytes = b""

    TYPE = c.OFPAT_VENDOR
    LENGTH = 8

    def __post_init__(self) -> None:
        self.vendor = as_field(self.vendor, 32)

    def pack(self) -> SymBuffer:
        length = 8 + len(self.body)
        if length % 8:
            raise MessageParseError("vendor action body must keep 8-byte alignment")
        buf = self._header(length)
        buf.write_u32(self.vendor)
        buf.write_bytes(self.body)
        return buf

    def describe(self) -> str:
        return "vendor(%s,%d bytes)" % (field_repr(self.vendor), len(self.body))


@dataclass
class RawAction(Action):
    """An action whose *type field itself* is symbolic or unknown.

    The structured symbolic tests make the 16-bit action type a free variable,
    so at message-construction time the action cannot be given a concrete
    class.  A ``RawAction`` carries the symbolic type plus the argument words;
    agents branch on the type during validation, exactly like their C
    counterparts branch on ``ntohs(ah->type)``.
    """

    action_type: FieldValue = 0
    length: int = 8
    arg16_a: FieldValue = 0
    arg16_b: FieldValue = 0

    def __post_init__(self) -> None:
        self.action_type = as_field(self.action_type, 16)
        self.arg16_a = as_field(self.arg16_a, 16)
        self.arg16_b = as_field(self.arg16_b, 16)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.action_type)
        buf.write_u16(self.length)
        buf.write_u16(self.arg16_a)
        buf.write_u16(self.arg16_b)
        if self.length > 8:
            buf.pad(self.length - 8)
        return buf

    def describe(self) -> str:
        return "raw_action(type=%s,a=%s,b=%s)" % (
            field_repr(self.action_type),
            field_repr(self.arg16_a),
            field_repr(self.arg16_b),
        )


# ---------------------------------------------------------------------------
# Action list (de)serialization
# ---------------------------------------------------------------------------

_FIXED_ACTION_PARSERS = {
    c.OFPAT_OUTPUT: lambda buf, off: ActionOutput(buf.read_u16(off + 4), buf.read_u16(off + 6)),
    c.OFPAT_SET_VLAN_VID: lambda buf, off: ActionSetVlanVid(buf.read_u16(off + 4)),
    c.OFPAT_SET_VLAN_PCP: lambda buf, off: ActionSetVlanPcp(buf.read_u8(off + 4)),
    c.OFPAT_STRIP_VLAN: lambda buf, off: ActionStripVlan(),
    c.OFPAT_SET_NW_SRC: lambda buf, off: ActionSetNwSrc(buf.read_u32(off + 4)),
    c.OFPAT_SET_NW_DST: lambda buf, off: ActionSetNwDst(buf.read_u32(off + 4)),
    c.OFPAT_SET_NW_TOS: lambda buf, off: ActionSetNwTos(buf.read_u8(off + 4)),
    c.OFPAT_SET_TP_SRC: lambda buf, off: ActionSetTpSrc(buf.read_u16(off + 4)),
    c.OFPAT_SET_TP_DST: lambda buf, off: ActionSetTpDst(buf.read_u16(off + 4)),
}


def pack_actions(actions: List[Action]) -> SymBuffer:
    """Serialize an action list back to back."""

    buf = SymBuffer()
    for action in actions:
        buf.write_bytes(action.pack())
    return buf


def action_list_length(actions: List[Action]) -> int:
    """Total wire length of an action list in bytes."""

    return len(pack_actions(actions))


def unpack_actions(buf: SymBuffer, offset: int, length: int) -> List[Action]:
    """Parse *length* bytes of actions starting at *offset*.

    The action *type* must be concrete to be dispatched to a specific class;
    when it is symbolic the bytes are wrapped in a :class:`RawAction` so the
    agents themselves perform the (symbolic) type dispatch.
    """

    actions: List[Action] = []
    end = offset + length
    while offset < end:
        if end - offset < 4:
            raise MessageParseError("truncated action header")
        action_type = buf.read_u16(offset)
        action_len_field = buf.read_u16(offset + 2)
        try:
            action_len = field_int(action_len_field)
        except ConcretizationError as exc:
            raise MessageParseError("action length field must be concrete: %s" % exc) from exc
        if action_len < 8 or action_len % 8 or offset + action_len > end:
            raise MessageParseError("invalid action length %d" % action_len)
        if isinstance(action_type, int):
            parser = _FIXED_ACTION_PARSERS.get(action_type)
            if parser is not None and action_len == 8:
                actions.append(parser(buf, offset))
            elif action_type == c.OFPAT_SET_DL_SRC and action_len == 16:
                from repro.openflow.match import _read_mac

                actions.append(ActionSetDlSrc(_read_mac(buf, offset + 4)))
            elif action_type == c.OFPAT_SET_DL_DST and action_len == 16:
                from repro.openflow.match import _read_mac

                actions.append(ActionSetDlDst(_read_mac(buf, offset + 4)))
            elif action_type == c.OFPAT_ENQUEUE and action_len == 16:
                actions.append(ActionEnqueue(buf.read_u16(offset + 4), buf.read_u32(offset + 12)))
            elif action_type == c.OFPAT_VENDOR and action_len >= 8:
                body = buf.read_bytes(offset + 8, action_len - 8)
                actions.append(ActionVendor(buf.read_u32(offset + 4),
                                            body.to_bytes() if body.is_concrete else b""))
            else:
                actions.append(RawAction(action_type, action_len,
                                         buf.read_u16(offset + 4), buf.read_u16(offset + 6)))
        else:
            actions.append(RawAction(action_type, action_len,
                                     buf.read_u16(offset + 4), buf.read_u16(offset + 6)))
        offset += action_len
    return actions
