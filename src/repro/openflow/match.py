"""The OpenFlow 1.0 ``ofp_match`` structure.

A match describes which packets a flow entry applies to.  Fields may be
concrete integers or symbolic bit-vectors; the ``wildcards`` bitmap states
which fields are ignored.  Matching *semantics* (how an agent interprets the
wildcards, how it masks the IP prefixes, ...) live in the agent
implementations because that is precisely where the paper found behavioural
differences — this class only carries the data and the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict

from repro.openflow import constants as c
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, as_field, field_repr, is_symbolic_field

__all__ = ["Match", "MATCH_FIELD_WIDTHS"]

#: Width in bits of each match field (wire order).
MATCH_FIELD_WIDTHS = {
    "wildcards": 32,
    "in_port": 16,
    "dl_src": 48,
    "dl_dst": 48,
    "dl_vlan": 16,
    "dl_vlan_pcp": 8,
    "dl_type": 16,
    "nw_tos": 8,
    "nw_proto": 8,
    "nw_src": 32,
    "nw_dst": 32,
    "tp_src": 16,
    "tp_dst": 16,
}


@dataclass
class Match:
    """``ofp_match``: flow match fields plus the wildcard bitmap."""

    wildcards: FieldValue = c.OFPFW_ALL
    in_port: FieldValue = 0
    dl_src: FieldValue = 0
    dl_dst: FieldValue = 0
    dl_vlan: FieldValue = 0
    dl_vlan_pcp: FieldValue = 0
    dl_type: FieldValue = 0
    nw_tos: FieldValue = 0
    nw_proto: FieldValue = 0
    nw_src: FieldValue = 0
    nw_dst: FieldValue = 0
    tp_src: FieldValue = 0
    tp_dst: FieldValue = 0

    def __post_init__(self) -> None:
        for name, width in MATCH_FIELD_WIDTHS.items():
            setattr(self, name, as_field(getattr(self, name), width))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def wildcard_all(cls) -> "Match":
        """A match that matches every packet."""

        return cls(wildcards=c.OFPFW_ALL)

    @classmethod
    def exact_tcp(cls, in_port: int, dl_src: int, dl_dst: int, nw_src: int,
                  nw_dst: int, tp_src: int, tp_dst: int) -> "Match":
        """An exact match on a (VLAN-less) TCP flow — used by concrete tests."""

        return cls(
            wildcards=0,
            in_port=in_port,
            dl_src=dl_src,
            dl_dst=dl_dst,
            dl_vlan=c.OFP_VLAN_NONE,
            dl_vlan_pcp=0,
            dl_type=c.ETH_TYPE_IP,
            nw_tos=0,
            nw_proto=c.IPPROTO_TCP,
            nw_src=nw_src,
            nw_dst=nw_dst,
            tp_src=tp_src,
            tp_dst=tp_dst,
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u32(self.wildcards)
        buf.write_u16(self.in_port)
        buf.write_bytes(_mac_bytes(self.dl_src))
        buf.write_bytes(_mac_bytes(self.dl_dst))
        buf.write_u16(self.dl_vlan)
        buf.write_u8(self.dl_vlan_pcp)
        buf.pad(1)
        buf.write_u16(self.dl_type)
        buf.write_u8(self.nw_tos)
        buf.write_u8(self.nw_proto)
        buf.pad(2)
        buf.write_u32(self.nw_src)
        buf.write_u32(self.nw_dst)
        buf.write_u16(self.tp_src)
        buf.write_u16(self.tp_dst)
        assert len(buf) == c.OFP_MATCH_LEN
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int = 0) -> "Match":
        return cls(
            wildcards=buf.read_u32(offset),
            in_port=buf.read_u16(offset + 4),
            dl_src=_read_mac(buf, offset + 6),
            dl_dst=_read_mac(buf, offset + 12),
            dl_vlan=buf.read_u16(offset + 18),
            dl_vlan_pcp=buf.read_u8(offset + 20),
            dl_type=buf.read_u16(offset + 22),
            nw_tos=buf.read_u8(offset + 24),
            nw_proto=buf.read_u8(offset + 25),
            nw_src=buf.read_u32(offset + 28),
            nw_dst=buf.read_u32(offset + 32),
            tp_src=buf.read_u16(offset + 36),
            tp_dst=buf.read_u16(offset + 38),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def field_values(self) -> Dict[str, FieldValue]:
        """All fields as a name -> value dictionary (wire order)."""

        return {name: getattr(self, name) for name in MATCH_FIELD_WIDTHS}

    def has_symbolic_fields(self) -> bool:
        return any(is_symbolic_field(value) for value in self.field_values().values())

    def describe(self) -> str:
        """Stable textual rendering used by trace normalization.

        Symbolic fields are rendered as ``*`` so that traces do not split into
        one equivalence class per symbolic expression shape.
        """

        parts = []
        for name, value in self.field_values().items():
            rendered = "*" if is_symbolic_field(value) else field_repr(value)
            parts.append("%s=%s" % (name, rendered))
        return "match{%s}" % ",".join(parts)

    def copy(self) -> "Match":
        return Match(**self.field_values())


def _mac_bytes(value: FieldValue) -> SymBuffer:
    buf = SymBuffer()
    if isinstance(value, int):
        for shift in range(5, -1, -1):
            buf.write_u8((value >> (shift * 8)) & 0xFF)
        return buf
    from repro.symbex.expr import bv, extract

    expr = bv(value, 48)
    for shift in range(5, -1, -1):
        buf.write_u8(extract(expr, shift * 8 + 7, shift * 8))
    return buf


def _read_mac(buf: SymBuffer, offset: int) -> FieldValue:
    high = buf.read_u16(offset)
    low = buf.read_u32(offset + 2)
    if isinstance(high, int) and isinstance(low, int):
        return (high << 32) | low
    from repro.symbex.expr import bv, concat

    return concat(bv(high, 16), bv(low, 32))
