"""OpenFlow 1.0 protocol substrate.

This package implements the OpenFlow Switch Specification 1.0.0 wire protocol
as used by the agents under test and the SOFT harness:

* :mod:`repro.openflow.constants` — message types, ports, action types, error
  codes, wildcard bits and other protocol enumerations.
* :mod:`repro.openflow.match` — the ``ofp_match`` structure with wildcards.
* :mod:`repro.openflow.actions` — the action list container types.
* :mod:`repro.openflow.messages` — every OpenFlow 1.0 control message, with
  symbolic-aware ``pack``/``unpack``.
* :mod:`repro.openflow.parser` — header parsing and message dispatch from a
  (possibly symbolic) byte buffer.
* :mod:`repro.openflow.builder` — construction of the structured symbolic
  messages used as test inputs (§3.2 of the paper).
"""

from repro.openflow import constants
from repro.openflow.match import Match
from repro.openflow.actions import (
    Action,
    ActionEnqueue,
    ActionOutput,
    ActionSetDlDst,
    ActionSetDlSrc,
    ActionSetNwDst,
    ActionSetNwSrc,
    ActionSetNwTos,
    ActionSetTpDst,
    ActionSetTpSrc,
    ActionSetVlanPcp,
    ActionSetVlanVid,
    ActionStripVlan,
    ActionVendor,
)
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PhyPort,
    PortMod,
    PortStatus,
    QueueGetConfigReply,
    QueueGetConfigRequest,
    SetConfig,
    StatsReply,
    StatsRequest,
    Vendor,
)
from repro.openflow.parser import parse_header, parse_message

__all__ = [
    "constants",
    "Match",
    "Action",
    "ActionOutput",
    "ActionSetVlanVid",
    "ActionSetVlanPcp",
    "ActionStripVlan",
    "ActionSetDlSrc",
    "ActionSetDlDst",
    "ActionSetNwSrc",
    "ActionSetNwDst",
    "ActionSetNwTos",
    "ActionSetTpSrc",
    "ActionSetTpDst",
    "ActionEnqueue",
    "ActionVendor",
    "OpenFlowMessage",
    "Hello",
    "ErrorMsg",
    "EchoRequest",
    "EchoReply",
    "Vendor",
    "FeaturesRequest",
    "FeaturesReply",
    "GetConfigRequest",
    "GetConfigReply",
    "SetConfig",
    "PacketIn",
    "FlowRemoved",
    "PortStatus",
    "PacketOut",
    "FlowMod",
    "PortMod",
    "StatsRequest",
    "StatsReply",
    "BarrierRequest",
    "BarrierReply",
    "QueueGetConfigRequest",
    "QueueGetConfigReply",
    "PhyPort",
    "parse_header",
    "parse_message",
]
