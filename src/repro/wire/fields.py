"""Helpers for protocol fields that may be concrete or symbolic.

Message and packet classes store their fields as either plain ``int`` values
or :class:`~repro.symbex.expr.BVExpr` terms.  These helpers centralize the
small amount of glue needed to treat both uniformly: width coercion, equality
that yields either a Python bool or a symbolic condition, and concrete
extraction for replay/normalization code that requires plain integers.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ConcretizationError
from repro.symbex.expr import BoolExpr, BVConst, BVExpr, bv

__all__ = ["FieldValue", "as_field", "field_int", "field_equals", "is_symbolic_field", "field_repr"]

FieldValue = Union[int, BVExpr]


def as_field(value: FieldValue, width: int) -> FieldValue:
    """Coerce *value* to either a masked int or a *width*-bit expression."""

    if isinstance(value, bool):
        raise ConcretizationError("refusing to use a Python bool as a protocol field")
    if isinstance(value, int):
        return value & ((1 << width) - 1)
    if isinstance(value, BVExpr):
        coerced = bv(value, width)
        if isinstance(coerced, BVConst):
            return coerced.value
        return coerced
    raise ConcretizationError("cannot use %r as a protocol field" % (value,))


def is_symbolic_field(value: FieldValue) -> bool:
    """True when the field still carries symbolic bits."""

    return isinstance(value, BVExpr) and not isinstance(value, BVConst)


def field_int(value: FieldValue) -> int:
    """Return the concrete integer value of a field (raises when symbolic)."""

    if isinstance(value, int):
        return value
    if isinstance(value, BVConst):
        return value.value
    if isinstance(value, BVExpr):
        raise ConcretizationError("field %r is symbolic; concretize it first" % (value,))
    raise ConcretizationError("cannot read %r as an integer field" % (value,))


def field_equals(a: FieldValue, b: FieldValue, width: int) -> Union[bool, BoolExpr]:
    """Equality over two fields; symbolic when either side is symbolic."""

    a = as_field(a, width)
    b = as_field(b, width)
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, int):
        a = bv(a, width)
    if isinstance(b, int):
        b = bv(b, width)
    return a == b


def field_repr(value) -> str:
    """Stable printable form used by normalized output traces.

    Accepts ints, bit-vector expressions and the symbolic logical port names
    ("FLOOD", "NORMAL", ...) that agents use for non-numbered outputs.
    """

    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return "%d" % value
    if isinstance(value, BVConst):
        return "%d" % value.value
    if isinstance(value, BVExpr):
        return "sym(%s)" % value.pretty()
    return repr(value)
