"""Symbolic-aware wire format substrate.

OpenFlow agents parse byte buffers received from the control channel and the
data plane.  To let *symbolic* message fields flow through the agents' parsing
and validation code unchanged, buffers are modelled as sequences of 8-bit
values where each byte is either a concrete ``int`` or an 8-bit symbolic
bit-vector.  Multi-byte reads concatenate bytes into wider expressions (and
simplify back to the original field variable when possible), so a field that
the test harness made symbolic re-emerges on the agent side as the very same
variable — exactly the property the Cloud9 POSIX model gave the original SOFT
prototype.
"""

from repro.wire.buffer import SymBuffer
from repro.wire.fields import as_field, field_equals, field_int, is_symbolic_field

__all__ = ["SymBuffer", "as_field", "field_equals", "field_int", "is_symbolic_field"]
