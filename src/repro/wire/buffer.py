"""Byte buffers whose individual bytes may be symbolic.

A :class:`SymBuffer` behaves like an immutable-width, mutable-content byte
array.  Every byte is either a Python ``int`` in ``[0, 255]`` or an 8-bit
:class:`~repro.symbex.expr.BVExpr`.  Network byte order (big endian) is used
throughout — both the harness' writers and the agents' readers use this module
so there is no double byte-shuffling, mirroring the paper's neutralization of
``ntohs``/``htons`` (§4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.errors import PacketError
from repro.symbex.expr import BVConst, BVExpr, bv, concat, extract

__all__ = ["SymBuffer", "ByteLike"]

ByteLike = Union[int, BVExpr]


def _check_byte(value: ByteLike) -> ByteLike:
    if isinstance(value, bool):
        raise PacketError("refusing to store a Python bool as a byte")
    if isinstance(value, int):
        if not 0 <= value <= 0xFF:
            raise PacketError("byte value %r out of range" % (value,))
        return value
    if isinstance(value, BVExpr):
        if value.width != 8:
            raise PacketError("symbolic byte must be 8 bits wide, got %d" % value.width)
        if isinstance(value, BVConst):
            return value.value
        return value
    raise PacketError("cannot store %r in a byte buffer" % (value,))


class SymBuffer:
    """A growable byte buffer supporting concrete and symbolic bytes."""

    __slots__ = ("_bytes",)

    def __init__(self, data: Union[bytes, Iterable[ByteLike], None] = None) -> None:
        self._bytes: List[ByteLike] = []
        if data is not None:
            if isinstance(data, (bytes, bytearray)):
                self._bytes.extend(data)
            elif isinstance(data, SymBuffer):
                self._bytes.extend(data._bytes)
            else:
                for value in data:
                    self._bytes.append(_check_byte(value))

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bytes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            view = SymBuffer()
            view._bytes = self._bytes[index]
            return view
        return self._bytes[index]

    def __iter__(self):
        return iter(self._bytes)

    def __add__(self, other: "SymBuffer") -> "SymBuffer":
        result = SymBuffer()
        result._bytes = list(self._bytes)
        if isinstance(other, SymBuffer):
            result._bytes.extend(other._bytes)
        elif isinstance(other, (bytes, bytearray)):
            result._bytes.extend(other)
        else:
            raise PacketError("cannot concatenate SymBuffer with %r" % (other,))
        return result

    def copy(self) -> "SymBuffer":
        clone = SymBuffer()
        clone._bytes = list(self._bytes)
        return clone

    @property
    def is_concrete(self) -> bool:
        """True when every byte is a plain integer."""

        return all(isinstance(b, int) for b in self._bytes)

    def to_bytes(self) -> bytes:
        """Return concrete ``bytes``; raises if any byte is symbolic."""

        if not self.is_concrete:
            raise PacketError("buffer contains symbolic bytes and cannot be concretized")
        return bytes(self._bytes)  # type: ignore[arg-type]

    def symbolic_byte_count(self) -> int:
        return sum(1 for b in self._bytes if not isinstance(b, int))

    # ------------------------------------------------------------------
    # Writers (big endian)
    # ------------------------------------------------------------------

    def write_u8(self, value: Union[int, BVExpr]) -> "SymBuffer":
        self._write_uint(value, 1)
        return self

    def write_u16(self, value: Union[int, BVExpr]) -> "SymBuffer":
        self._write_uint(value, 2)
        return self

    def write_u32(self, value: Union[int, BVExpr]) -> "SymBuffer":
        self._write_uint(value, 4)
        return self

    def write_u64(self, value: Union[int, BVExpr]) -> "SymBuffer":
        self._write_uint(value, 8)
        return self

    def write_bytes(self, data: Union[bytes, "SymBuffer", Iterable[ByteLike]]) -> "SymBuffer":
        if isinstance(data, SymBuffer):
            self._bytes.extend(data._bytes)
        elif isinstance(data, (bytes, bytearray)):
            self._bytes.extend(data)
        else:
            for value in data:
                self._bytes.append(_check_byte(value))
        return self

    def pad(self, count: int, fill: int = 0) -> "SymBuffer":
        """Append *count* concrete fill bytes."""

        if count < 0:
            raise PacketError("cannot pad by a negative amount")
        self._bytes.extend([fill] * count)
        return self

    def _write_uint(self, value: Union[int, BVExpr], size: int) -> None:
        width = size * 8
        if isinstance(value, bool):
            raise PacketError("refusing to serialize a Python bool")
        if isinstance(value, int):
            if value < 0 or value >= (1 << width):
                raise PacketError("value %r does not fit in %d bytes" % (value, size))
            for shift in range(size - 1, -1, -1):
                self._bytes.append((value >> (shift * 8)) & 0xFF)
            return
        if isinstance(value, BVExpr):
            expr = bv(value, width)
            for shift in range(size - 1, -1, -1):
                self._bytes.append(_check_byte(extract(expr, shift * 8 + 7, shift * 8)))
            return
        raise PacketError("cannot serialize %r" % (value,))

    # ------------------------------------------------------------------
    # Readers (big endian)
    # ------------------------------------------------------------------

    def read_u8(self, offset: int) -> ByteLike:
        return self._read_uint(offset, 1)

    def read_u16(self, offset: int) -> ByteLike:
        return self._read_uint(offset, 2)

    def read_u32(self, offset: int) -> ByteLike:
        return self._read_uint(offset, 4)

    def read_u64(self, offset: int) -> ByteLike:
        return self._read_uint(offset, 8)

    def read_bytes(self, offset: int, length: int) -> "SymBuffer":
        self._check_range(offset, length)
        return self[offset:offset + length]

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(self._bytes):
            raise PacketError(
                "read of %d bytes at offset %d exceeds buffer of %d bytes"
                % (length, offset, len(self._bytes))
            )

    def _read_uint(self, offset: int, size: int) -> ByteLike:
        self._check_range(offset, size)
        chunk = self._bytes[offset:offset + size]
        if all(isinstance(b, int) for b in chunk):
            value = 0
            for byte in chunk:
                value = (value << 8) | byte  # type: ignore[operator]
            return value
        parts = []
        for byte in chunk:
            parts.append(bv(byte, 8) if isinstance(byte, int) else byte)
        result = concat(*parts)
        if isinstance(result, BVConst):
            return result.value
        return result

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------

    def hex(self) -> str:
        """Hex dump with ``??`` marking symbolic bytes."""

        rendered = []
        for byte in self._bytes:
            rendered.append("%02x" % byte if isinstance(byte, int) else "??")
        return "".join(rendered)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "SymBuffer(%d bytes, %d symbolic)" % (len(self), self.symbolic_byte_count())
