"""Single source of truth for the package version."""

__version__ = "1.0.0"

#: Version of the OpenFlow specification the protocol substrate implements.
OPENFLOW_WIRE_VERSION = 0x01
OPENFLOW_SPEC_VERSION = "1.0.0"
