"""Command line interface (the ``soft`` entry point)."""

from repro.cli.main import main

__all__ = ["main"]
