"""The ``soft`` command line tool.

Mirrors the three tools of the paper's prototype (§4) plus convenience
commands::

    soft list-tests                 # the Table-1 catalogue
    soft list-agents                # registered agents under test
    soft explore --agent reference --test packet_out --save ref_po.json
    soft explore --load ref_po.json
    soft run --test packet_out --agent-a reference --agent-b ovs
    soft campaign --tests all --agents reference,ovs,modified --workers 4 \\
                  --json out.json
    soft campaign --tests stats_request --agents reference \\
                  --artifact vendor_ovs.json
    soft triage --tests flow_mod --agents reference,modified \\
                --corpus corpus/   # cluster + minimize witnesses, persist them
    soft corpus run --dir corpus/  # solver-free regression replay
    soft oftest --agent ovs         # the manual baseline suite
    soft fuzz --agent-a reference --agent-b ovs --iterations 200
    soft lint                       # static analysis over the repro stack
    soft bench --suite eval,explore # benchmarks vs committed baselines
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.agents import AGENT_REGISTRY, agent_registry
from repro.baselines.fuzzer import DifferentialFuzzer
from repro.baselines.oftest import run_suite
from repro.core.artifacts import load_exploration_artifact, save_exploration_artifact
from repro.core.campaign import Campaign
from repro.core.corpus import WitnessCorpus
from repro.core.explorer import explore_agent
from repro.core.grouping import group_paths
from repro.core.soft import SOFT
from repro.core.tests_catalog import TABLE1_TESTS, VALID_SCALES, catalog, get_test
from repro.errors import (
    ArtifactError,
    CampaignError,
    CheckpointError,
    CorpusError,
    WitnessError,
)
from repro.hybrid.scheduler import ALL_STAGES, HybridConfig, HybridHunt
from repro.symbex.solver import SolverConfig, backend_names
from repro.symbex.strategies import strategy_names

__all__ = ["main", "build_parser"]

#: ``soft bench`` suites: name -> (pytest file, JSON trajectory point).
BENCH_SUITES = {
    "explore": ("benchmarks/test_exploration.py", "BENCH_explore.json"),
    "crosscheck": ("benchmarks/test_incremental_crosscheck.py",
                   "BENCH_crosscheck.json"),
    "solver": ("benchmarks/test_solver_core.py", "BENCH_solver.json"),
    "triage": ("benchmarks/test_triage_corpus.py", "BENCH_triage.json"),
    "hybrid": ("benchmarks/test_hybrid_hunt.py", "BENCH_hybrid.json"),
    "eval": ("benchmarks/test_eval_core.py", "BENCH_eval.json"),
}


def _split_csv(value: str) -> List[str]:
    """Split a comma-separated CLI list, dropping empty items."""

    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soft",
        description="SOFT: systematic OpenFlow switch interoperability testing "
                    "(CoNEXT 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-tests", help="list the Table-1 test specifications")
    subparsers.add_parser("list-agents", help="list the registered agents under test")

    explore = subparsers.add_parser("explore", help="Phase 1: symbolically execute one agent")
    explore.add_argument("--agent", choices=sorted(AGENT_REGISTRY),
                         help="agent to explore (required unless --load is given)")
    explore.add_argument("--test", choices=TABLE1_TESTS,
                         help="test to explore (required unless --load is given)")
    explore.add_argument("--coverage", action="store_true",
                         help="also report instruction/branch coverage")
    explore.add_argument("--backend", choices=backend_names(), default=None,
                         help="solver backend for Phase-1 queries (default cdcl; "
                              "'interval' is semi-decision and may give up on "
                              "queries outside its fragment)")
    explore.add_argument("--strategy", choices=strategy_names(), default=None,
                         help="frontier discipline for Phase 1 (default: dfs); "
                              "all strategies explore the same path set")
    explore.add_argument("--workers", type=int, default=1,
                         help="split this exploration's frontier across N thread "
                              "engines (GIL-bound: bounds per-engine state, not a "
                              "CPU speedup; see campaign --executor process)")
    explore.add_argument("--profile", nargs="?", const=25, type=int, default=None,
                         metavar="N",
                         help="profile the exploration with cProfile and print "
                              "the top N functions by cumulative time "
                              "(default N: 25)")
    explore.add_argument("--save", metavar="FILE",
                         help="save the Phase-1 artifact (vendor exchange format) as JSON")
    explore.add_argument("--load", metavar="FILE",
                         help="load and summarize a saved artifact instead of exploring")

    run = subparsers.add_parser("run", help="full pipeline: explore, group, crosscheck, replay")
    run.add_argument("--test", required=True, choices=TABLE1_TESTS)
    run.add_argument("--agent-a", default="reference", choices=sorted(AGENT_REGISTRY))
    run.add_argument("--agent-b", default="ovs", choices=sorted(AGENT_REGISTRY))
    run.add_argument("--no-replay", action="store_true",
                     help="skip concrete replay of generated test cases")

    campaign = subparsers.add_parser(
        "campaign",
        help="N tests x M agents: explore once per (agent, test), crosscheck all pairs")
    campaign.add_argument("--tests", default="all",
                          help="comma-separated test keys, or 'all' (default)")
    campaign.add_argument("--agents", default="",
                          help="comma-separated agent names (>= 2 unless --artifact "
                               "or --pairs supplies more)")
    campaign.add_argument("--pairs", default="",
                          help="explicit a:b pairs (comma-separated) instead of all-pairs")
    campaign.add_argument("--artifact", action="append", default=[], metavar="FILE",
                          help="seed Phase 1 from a saved artifact (repeatable); the "
                               "artifact's agent joins the campaign")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker pool width for exploration and pair crosschecks")
    campaign.add_argument("--executor", choices=("thread", "process"), default="thread",
                          help="pool kind for Phase 1 (process = true CPU parallelism)")
    campaign.add_argument("--no-replay", action="store_true",
                          help="skip concrete replay of generated test cases")
    campaign.add_argument("--no-incremental", action="store_true",
                          help="crosscheck with a fresh solver per pair instead of "
                               "the shared incremental SAT engine")
    campaign.add_argument("--no-triage", action="store_true",
                          help="skip the witness pipeline (replay confirmation, "
                               "minimization, clustering)")
    campaign.add_argument("--no-minimize", action="store_true",
                          help="triage without delta-minimization of witnesses")
    campaign.add_argument("--backend", choices=backend_names(), default=None,
                          help="solver backend for every phase (default cdcl, "
                               "the reference CDCL configuration)")
    campaign.add_argument("--portfolio", nargs="?", const="default", default=None,
                          metavar="NAME[,NAME...]",
                          help="race solver backends per query; with no value "
                               "uses the model-deterministic default "
                               "(interval,cdcl), a comma-separated list names "
                               "explicit members")
    campaign.add_argument("--strategy", choices=strategy_names(), default=None,
                          help="Phase-1 frontier discipline (default: dfs)")
    campaign.add_argument("--cell-timeout", type=float, default=None,
                          metavar="SECONDS", dest="cell_timeout",
                          help="per-cell wall-clock deadline; a cell still running "
                               "at the deadline is recorded as timed_out instead "
                               "of hanging the whole campaign")
    campaign.add_argument("--retries", type=int, default=1,
                          help="extra attempts per cell after a crash or failure "
                               "(default 1; exponential backoff between attempts)")
    campaign.add_argument("--checkpoint", metavar="DIR", default=None,
                          help="journal every finished cell into DIR so an "
                               "interrupted campaign can be resumed")
    campaign.add_argument("--resume", action="store_true",
                          help="skip cells already completed in the --checkpoint "
                               "directory (requires --checkpoint)")
    campaign.add_argument("--fault-plan", metavar="FILE", dest="fault_plan",
                          default=None,
                          help="install a JSON fault-injection plan (testing "
                               "only: deterministic hangs/crashes/corruption "
                               "at named sites)")
    campaign.add_argument("--corpus", metavar="DIR", default=None,
                          help="persist confirmed witnesses into DIR as "
                               "regression bundles")
    campaign.add_argument("--json", metavar="FILE", dest="json_out",
                          help="write the machine-readable report to FILE ('-' = stdout)")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress the human-readable table")

    triage = subparsers.add_parser(
        "triage",
        help="campaign + witness triage: replay-confirm, minimize and cluster "
             "every inconsistency; optionally persist the corpus")
    triage.add_argument("--tests", default="all",
                        help="comma-separated test keys, or 'all' (default)")
    triage.add_argument("--agents", default="",
                        help="comma-separated agent names (>= 2)")
    triage.add_argument("--pairs", default="",
                        help="explicit a:b pairs (comma-separated) instead of all-pairs")
    triage.add_argument("--workers", type=int, default=1,
                        help="worker pool width for exploration and pair crosschecks")
    triage.add_argument("--strategy", choices=strategy_names(), default=None,
                        help="Phase-1 frontier discipline (default: dfs)")
    triage.add_argument("--no-minimize", action="store_true",
                        help="skip delta-minimization of witnesses")
    triage.add_argument("--minimize-budget", type=int, default=96,
                        help="max replay-oracle runs per witness (default 96)")
    triage.add_argument("--corpus", metavar="DIR",
                        help="persist confirmed cluster representatives as witness "
                             "bundles into DIR")
    triage.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write the machine-readable triage report to FILE "
                             "('-' = stdout)")
    triage.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable table")

    corpus = subparsers.add_parser(
        "corpus", help="operate on a persistent witness corpus")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_run = corpus_sub.add_parser(
        "run", help="replay every stored witness solver-free against the "
                    "current agents; non-zero exit on any non-diverging witness")
    corpus_run.add_argument("--dir", required=True, metavar="DIR",
                            help="corpus directory of witness bundles")
    corpus_run.add_argument("--json", metavar="FILE", dest="json_out",
                            help="write the machine-readable run report to FILE "
                                 "('-' = stdout)")
    corpus_run.add_argument("--quiet", action="store_true",
                            help="suppress the per-witness table")
    corpus_list = corpus_sub.add_parser(
        "list", help="list the witness bundles stored in a corpus directory")
    corpus_list.add_argument("--dir", required=True, metavar="DIR",
                             help="corpus directory of witness bundles")

    oftest = subparsers.add_parser("oftest", help="run the OFTest-style manual baseline suite")
    oftest.add_argument("--agent", required=True, choices=sorted(AGENT_REGISTRY))

    fuzz = subparsers.add_parser("fuzz", help="differential random fuzzing baseline")
    fuzz.add_argument("--agent-a", default="reference", choices=sorted(AGENT_REGISTRY))
    fuzz.add_argument("--agent-b", default="ovs", choices=sorted(AGENT_REGISTRY))
    fuzz.add_argument("--iterations", type=int, default=100)
    fuzz.add_argument("--seed", type=int, default=0,
                      help="RNG seed; the same seed replays the same campaign")
    fuzz.add_argument("--mine-constants", action="store_true",
                      help="bias random fields toward constants mined from the "
                           "agents' branch comparisons (decision-map analysis)")

    hunt = subparsers.add_parser(
        "hunt",
        help="hybrid concolic hunt: budgeted fuzz/concolic/symbex/replay "
             "scheduler over one agent pair")
    hunt.add_argument("--test", required=True, choices=TABLE1_TESTS)
    hunt.add_argument("--agent-a", default="reference", choices=sorted(AGENT_REGISTRY))
    hunt.add_argument("--agent-b", default="ovs", choices=sorted(AGENT_REGISTRY))
    hunt.add_argument("--budget", type=float, default=10.0,
                      help="global wall-clock budget in seconds (default 10)")
    hunt.add_argument("--slice", type=float, default=0.5, dest="slice_time",
                      help="target scheduler slice length in seconds (default 0.5)")
    hunt.add_argument("--seed", type=int, default=0,
                      help="RNG seed; one seed reproduces the whole hunt")
    hunt.add_argument("--stages", default=",".join(ALL_STAGES),
                      help="comma-separated stage subset (default: %s); e.g. "
                           "--stages fuzz for the pure-fuzz baseline" % ",".join(ALL_STAGES))
    hunt.add_argument("--no-minimize", action="store_true",
                      help="skip delta-minimization of witnesses")
    hunt.add_argument("--mine-constants", action="store_true",
                      help="bias fuzz-stage draws toward constants mined from "
                           "the agents' branch comparisons")
    hunt.add_argument("--corpus", metavar="DIR",
                      help="load historical witnesses from DIR and persist new "
                           "confirmed clusters back into it")
    hunt.add_argument("--profile", nargs="?", const=25, type=int, default=None,
                      metavar="N",
                      help="profile the hunt with cProfile and print the top N "
                           "functions by cumulative time (default N: 25)")
    hunt.add_argument("--json", metavar="FILE", dest="json_out",
                      help="write the machine-readable hunt report to FILE ('-' = stdout)")
    hunt.add_argument("--quiet", action="store_true",
                      help="suppress the human-readable summary")

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: broad excepts, symbex-incompatible agent "
             "constructs, unlocked shared state; non-zero exit on findings")
    lint.add_argument("--path", action="append", default=[], metavar="PATH",
                      help="file or directory to lint (repeatable; default: "
                           "the installed repro package)")
    lint.add_argument("--rules", default="",
                      help="comma-separated rule subset (default: all rules)")
    lint.add_argument("--json", metavar="FILE", dest="json_out",
                      help="write the machine-readable lint report to FILE "
                           "('-' = stdout)")
    lint.add_argument("--quiet", action="store_true",
                      help="suppress the human-readable table")

    bench = subparsers.add_parser(
        "bench",
        help="run the benchmark suite and compare against the committed "
             "BENCH_*.json baselines; non-zero exit on a >threshold regression")
    bench.add_argument("--suite", default="all",
                       help="comma-separated benchmark subset (%s) or 'all'"
                            % ",".join(sorted(BENCH_SUITES)))
    bench.add_argument("--threshold", type=float, default=0.20,
                       help="relative regression that fails the comparison "
                            "(default: 0.20)")
    bench.add_argument("--keep-json", action="store_true",
                       help="keep the freshly generated BENCH_*.json files in "
                            "the repo root instead of restoring the committed "
                            "baselines afterwards")

    return parser


def _run_profiled(top: int, fn):
    """Run *fn* under cProfile, printing the top-N cumulative-time functions.

    The profile goes to stderr so ``--json -`` output on stdout stays
    machine-parseable.
    """

    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        print("\n-- cProfile: top %d functions by cumulative time --" % top,
              file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        stats.print_stats(top)


def _cmd_list_tests() -> int:
    for key, spec in catalog().items():
        print("%-14s %-12s %s" % (key, "(%d msgs)" % spec.message_count, spec.description))
    return 0


def _cmd_list_agents() -> int:
    for name, info in sorted(agent_registry().items()):
        description = info.description or "(no description)"
        print("%-12s %s" % (name, description))
        if info.vendor:
            print("%-12s   models: %s" % ("", info.vendor))
        for finding in info.lint_findings:
            print("%-12s   symbex-compat: %s" % ("", finding))
    return 0


def _print_exploration_summary(report, grouped) -> None:
    print("agent=%s test=%s" % (report.agent_name, report.test_key))
    print("  paths explored:        %d" % report.path_count)
    print("  distinct outputs:      %d" % grouped.distinct_output_count)
    print("  cpu time:              %.2fs" % report.cpu_time)
    engine_stats = report.engine_stats or {}
    if engine_stats.get("strategy"):
        print("  strategy:              %s (workers=%d)"
              % (engine_stats["strategy"], int(engine_stats.get("workers") or 1)))
    if engine_stats.get("solver_queries") is not None:
        print("  solver queries:        %d" % engine_stats["solver_queries"])
    print("  avg constraint size:   %.1f" % report.average_constraint_size())
    print("  max constraint size:   %d" % report.max_constraint_size())
    if report.coverage is not None:
        print("  instruction coverage:  %.1f%%" % (100 * report.coverage.instruction_coverage))
        print("  branch coverage:       %.1f%%" % (100 * report.coverage.branch_coverage))
    for group in grouped.groups:
        print("  output group: %s" % group.describe())


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.load:
        report = load_exploration_artifact(args.load)
        print("loaded artifact %s" % args.load)
    else:
        if not args.agent or not args.test:
            print("error: --agent and --test are required unless --load is given",
                  file=sys.stderr)
            return 2

        solver_config = (SolverConfig(backend=args.backend)
                         if args.backend else None)

        def run_exploration():
            return explore_agent(args.agent, args.test,
                                 solver_config=solver_config,
                                 with_coverage=args.coverage,
                                 strategy=args.strategy, workers=args.workers)

        if args.profile:
            report = _run_profiled(args.profile, run_exploration)
        else:
            report = run_exploration()
    grouped = group_paths(report)
    _print_exploration_summary(report, grouped)
    if args.save:
        save_exploration_artifact(report, args.save)
        print("saved artifact to %s" % args.save)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    soft = SOFT(replay_testcases=not args.no_replay)
    report = soft.run(args.test, args.agent_a, args.agent_b)
    print(report.describe())
    return 0


def _configure_campaign(campaign: Campaign, args: argparse.Namespace) -> Optional[int]:
    """Apply the shared --tests/--agents/--pairs options; exit code on error."""

    tests = _split_csv(args.tests) or ["all"]
    campaign.with_tests(*tests)
    agents = _split_csv(args.agents)
    if agents:
        campaign.with_agents(*agents)
    pairs = _split_csv(args.pairs)
    if pairs:
        parsed = []
        for pair in pairs:
            halves = pair.split(":")
            if len(halves) != 2 or not halves[0] or not halves[1]:
                print("error: --pairs entries must look like agentA:agentB, got %r"
                      % pair, file=sys.stderr)
                return 2
            parsed.append((halves[0], halves[1]))
        campaign.with_pairs(*parsed)
    return None


def _write_json(rendered: str, json_out: str, quiet: bool) -> int:
    if json_out == "-":
        print(rendered)
        return 0
    try:
        with open(json_out, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
    except OSError as exc:
        print("error: cannot write JSON report: %s" % exc, file=sys.stderr)
        return 2
    if not quiet:
        print("wrote JSON report to %s" % json_out)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        from repro.testing.faults import load_fault_plan

        try:
            fault_plan = load_fault_plan(args.fault_plan)
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    portfolio: object = False
    if args.portfolio is not None:
        portfolio = True if args.portfolio == "default" \
            else _split_csv(args.portfolio)
    campaign = Campaign(workers=args.workers, executor=args.executor,
                        replay_testcases=not args.no_replay,
                        incremental=not args.no_incremental,
                        triage=not args.no_triage,
                        minimize=not args.no_minimize,
                        backend=args.backend,
                        portfolio=portfolio,
                        strategy=args.strategy,
                        cell_timeout=args.cell_timeout,
                        retries=args.retries,
                        checkpoint_dir=args.checkpoint,
                        resume=args.resume,
                        fault_plan=fault_plan,
                        corpus_dir=args.corpus)
    error = _configure_campaign(campaign, args)
    if error is not None:
        return error
    for path in args.artifact:
        campaign.load_artifact(path)

    report = campaign.run()

    if report.unused_loaded_agents:
        print("warning: loaded artifact(s) for %s matched no pair and were unused"
              % ", ".join(report.unused_loaded_agents), file=sys.stderr)
    if report.executor_degraded:
        print("warning: executor degraded: process pool fell back to threads "
              "after %d event(s); see executor_degraded in the JSON report"
              % len(report.executor_degraded), file=sys.stderr)
    if not args.quiet:
        print(report.describe())
    if args.json_out:
        code = _write_json(report.to_json(), args.json_out, args.quiet)
        if code:
            return code
    return report.exit_code


def _cmd_triage(args: argparse.Namespace) -> int:
    import json as json_mod

    campaign = Campaign(workers=args.workers, strategy=args.strategy,
                        triage=True, minimize=not args.no_minimize,
                        minimize_budget=args.minimize_budget,
                        corpus_dir=args.corpus)
    error = _configure_campaign(campaign, args)
    if error is not None:
        return error

    report = campaign.run()
    triage = report.triage

    if not args.quiet:
        print(triage.describe())
        for cluster in triage.clusters:
            print(cluster.describe())
        if args.corpus:
            print("corpus: %d new bundle(s) saved to %s"
                  % (report.corpus_saved, args.corpus))
    if args.json_out:
        rendered = json_mod.dumps({
            "format": "soft/triage-report/v1",
            "campaign_totals": {
                "pair_reports": report.pair_count,
                "solver_queries": report.total_queries,
                "inconsistencies": report.total_inconsistencies,
                "replay_verified": report.total_replay_verified,
                "total_time": report.total_time,
            },
            "triage": triage.to_dict(),
            "corpus": ({"dir": args.corpus, "saved": report.corpus_saved}
                       if args.corpus else None),
        }, indent=2)
        code = _write_json(rendered, args.json_out, args.quiet)
        if code:
            return code
    return 0 if triage.unconfirmed_witnesses == 0 else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    corpus = WitnessCorpus(args.dir, create=False)
    if args.corpus_command == "list":
        for witness in corpus.load():
            minimization = witness.minimization
            print("%-60s %d var(s), %d input(s)%s"
                  % (witness.signature.short(), witness.variable_count,
                     witness.input_count,
                     "" if minimization is None else
                     " (minimized from %d)" % minimization.original_variables))
        print("%d witness bundle(s) in %s" % (len(corpus), args.dir))
        return 0

    report = corpus.run()
    if not args.quiet:
        print(report.describe())
    if args.json_out:
        import json as json_mod

        code = _write_json(json_mod.dumps(report.to_dict(), indent=2),
                           args.json_out, args.quiet)
        if code:
            return code
    return 0 if report.ok else 1


def _cmd_oftest(args: argparse.Namespace) -> int:
    results = run_suite(args.agent)
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        failures += 0 if result.passed else 1
        print("%-4s %-28s %s" % (status, result.case_name, result.trace_summary))
    print("%d/%d cases passed" % (len(results) - failures, len(results)))
    return 1 if failures else 0


def _mined_pool(*agent_names: str) -> List[int]:
    """Merged interesting-value pool from the agents' decision maps."""

    from repro.analysis.decision_map import decision_map_for_agent

    pool: set = set()
    for name in agent_names:
        pool.update(decision_map_for_agent(name).interesting_values())
    return sorted(pool)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    interesting = _mined_pool(args.agent_a, args.agent_b) if args.mine_constants else None
    fuzzer = DifferentialFuzzer(args.agent_a, args.agent_b, seed=args.seed,
                                interesting_values=interesting)
    report = fuzzer.run(iterations=args.iterations)
    if interesting:
        print("mined %d interesting constant(s) from decision maps" % len(interesting))
    print("%d iterations, %d divergences (%.1f%%)" % (
        report.iterations, report.divergence_count, 100 * report.divergence_rate))
    for divergence in report.divergences[:20]:
        print("  #%d %s" % (divergence.iteration, divergence.description))
        print("    %s: %s" % (report.agent_a, divergence.trace_a))
        print("    %s: %s" % (report.agent_b, divergence.trace_b))
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    import json as json_mod

    stages = tuple(_split_csv(args.stages)) or ALL_STAGES
    config = HybridConfig(budget=args.budget, slice_time=args.slice_time,
                          seed=args.seed, stages=stages,
                          minimize=not args.no_minimize,
                          mined_constants=args.mine_constants,
                          corpus_dir=args.corpus)
    hunt = HybridHunt(args.test, args.agent_a, args.agent_b, config=config)
    if args.profile:
        report = _run_profiled(args.profile, hunt.run)
    else:
        report = hunt.run()
    if not args.quiet:
        print(report.describe())
    if args.json_out:
        code = _write_json(json_mod.dumps(report.to_dict(), indent=2),
                           args.json_out, args.quiet)
        if code:
            return code
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.analysis.lint import run_lint

    paths = args.path
    if not paths:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    rules = _split_csv(args.rules) or None
    try:
        report = run_lint(paths, rules=rules)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if not args.quiet:
        print(report.describe())
    if args.json_out:
        code = _write_json(json_mod.dumps(report.to_dict(), indent=2),
                           args.json_out, args.quiet)
        if code:
            return code
    return 0 if report.ok else 1


def _find_bench_root() -> Optional[str]:
    """Locate the repo checkout holding benchmarks/ and the committed baselines.

    Tries the working directory first (the common case: running ``soft bench``
    from a checkout), then the source tree the installed package came from.
    """

    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))
    for root in (os.getcwd(), package_root):
        if os.path.isfile(os.path.join(root, "benchmarks", "compare_bench.py")):
            return root
    return None


def _cmd_bench(args: argparse.Namespace) -> int:
    import shutil
    import subprocess
    import tempfile

    root = _find_bench_root()
    if root is None:
        print("error: cannot find a repo checkout with benchmarks/ "
              "(run soft bench from the repository root)", file=sys.stderr)
        return 2

    names = _split_csv(args.suite) or ["all"]
    if names == ["all"]:
        names = sorted(BENCH_SUITES)
    unknown = [name for name in names if name not in BENCH_SUITES]
    if unknown:
        print("error: unknown benchmark suite(s): %s (valid: %s)"
              % (", ".join(unknown), ", ".join(sorted(BENCH_SUITES))),
              file=sys.stderr)
        return 2

    env = dict(os.environ)
    extra = [os.path.join(root, "src"), root]
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in extra + [env.get("PYTHONPATH", "")] if path)

    with tempfile.TemporaryDirectory(prefix="soft-bench-") as baseline_dir:
        committed = sorted(
            name for name in os.listdir(root)
            if name.startswith("BENCH_") and name.endswith(".json"))
        for name in committed:
            shutil.copy(os.path.join(root, name),
                        os.path.join(baseline_dir, name))

        failed = []
        for name in names:
            test_file, _ = BENCH_SUITES[name]
            print("== bench: %s (%s) ==" % (name, test_file))
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", "-q", "-s", test_file],
                cwd=root, env=env)
            if proc.returncode:
                failed.append(name)

        compare = subprocess.run(
            [sys.executable, os.path.join("benchmarks", "compare_bench.py"),
             baseline_dir, ".", "--threshold", str(args.threshold)],
            cwd=root, env=env)

        if not args.keep_json:
            # Put the committed trajectory points back so the working tree
            # stays clean; fresh JSONs without a committed baseline go away.
            for name in committed:
                shutil.copy(os.path.join(baseline_dir, name),
                            os.path.join(root, name))
            for name in names:
                bench_json = BENCH_SUITES[name][1]
                fresh = os.path.join(root, bench_json)
                if bench_json not in committed and os.path.exists(fresh):
                    os.remove(fresh)

    if failed:
        print("error: benchmark suite(s) failed: %s" % ", ".join(failed),
              file=sys.stderr)
        return 1
    return compare.returncode


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""

    raw_scale = os.environ.get("SOFT_SCALE")
    if raw_scale is not None and raw_scale.strip().lower() not in VALID_SCALES:
        print("error: SOFT_SCALE=%r is not a valid scale; valid scales: %s"
              % (raw_scale, ", ".join(VALID_SCALES)), file=sys.stderr)
        return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-tests":
            return _cmd_list_tests()
        if args.command == "list-agents":
            return _cmd_list_agents()
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "triage":
            return _cmd_triage(args)
        if args.command == "corpus":
            return _cmd_corpus(args)
        if args.command == "oftest":
            return _cmd_oftest(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "hunt":
            return _cmd_hunt(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "bench":
            return _cmd_bench(args)
    except (ArtifactError, CampaignError, CheckpointError, CorpusError,
            WitnessError) as exc:
        print("error: %s" % (exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    parser.error("unknown command %r" % (args.command,))
    return 2


if __name__ == "__main__":
    sys.exit(main())
