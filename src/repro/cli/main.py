"""The ``soft`` command line tool.

Mirrors the three tools of the paper's prototype (§4) plus convenience
commands::

    soft list-tests                 # the Table-1 catalogue
    soft list-agents                # registered agents under test
    soft explore --agent reference --test packet_out
    soft run --test packet_out --agent-a reference --agent-b ovs
    soft oftest --agent ovs         # the manual baseline suite
    soft fuzz --agent-a reference --agent-b ovs --iterations 200
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.agents import AGENT_REGISTRY
from repro.baselines.fuzzer import DifferentialFuzzer
from repro.baselines.oftest import run_suite
from repro.core.explorer import explore_agent
from repro.core.grouping import group_paths
from repro.core.soft import SOFT
from repro.core.tests_catalog import TABLE1_TESTS, catalog, get_test

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soft",
        description="SOFT: systematic OpenFlow switch interoperability testing "
                    "(CoNEXT 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-tests", help="list the Table-1 test specifications")
    subparsers.add_parser("list-agents", help="list the registered agents under test")

    explore = subparsers.add_parser("explore", help="Phase 1: symbolically execute one agent")
    explore.add_argument("--agent", required=True, choices=sorted(AGENT_REGISTRY))
    explore.add_argument("--test", required=True, choices=TABLE1_TESTS)
    explore.add_argument("--coverage", action="store_true",
                         help="also report instruction/branch coverage")

    run = subparsers.add_parser("run", help="full pipeline: explore, group, crosscheck, replay")
    run.add_argument("--test", required=True, choices=TABLE1_TESTS)
    run.add_argument("--agent-a", default="reference", choices=sorted(AGENT_REGISTRY))
    run.add_argument("--agent-b", default="ovs", choices=sorted(AGENT_REGISTRY))
    run.add_argument("--no-replay", action="store_true",
                     help="skip concrete replay of generated test cases")

    oftest = subparsers.add_parser("oftest", help="run the OFTest-style manual baseline suite")
    oftest.add_argument("--agent", required=True, choices=sorted(AGENT_REGISTRY))

    fuzz = subparsers.add_parser("fuzz", help="differential random fuzzing baseline")
    fuzz.add_argument("--agent-a", default="reference", choices=sorted(AGENT_REGISTRY))
    fuzz.add_argument("--agent-b", default="ovs", choices=sorted(AGENT_REGISTRY))
    fuzz.add_argument("--iterations", type=int, default=100)
    fuzz.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_list_tests() -> int:
    for key, spec in catalog().items():
        print("%-14s %-12s %s" % (key, "(%d msgs)" % spec.message_count, spec.description))
    return 0


def _cmd_list_agents() -> int:
    for name, factory in sorted(AGENT_REGISTRY.items()):
        print("%-12s %s" % (name, (factory.__doc__ or "").strip().splitlines()[0]))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    report = explore_agent(args.agent, args.test, with_coverage=args.coverage)
    grouped = group_paths(report)
    print("agent=%s test=%s" % (report.agent_name, report.test_key))
    print("  paths explored:        %d" % report.path_count)
    print("  distinct outputs:      %d" % grouped.distinct_output_count)
    print("  cpu time:              %.2fs" % report.cpu_time)
    print("  avg constraint size:   %.1f" % report.average_constraint_size())
    print("  max constraint size:   %d" % report.max_constraint_size())
    if report.coverage is not None:
        print("  instruction coverage:  %.1f%%" % (100 * report.coverage.instruction_coverage))
        print("  branch coverage:       %.1f%%" % (100 * report.coverage.branch_coverage))
    for group in grouped.groups:
        print("  output group: %s" % group.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    soft = SOFT(replay_testcases=not args.no_replay)
    report = soft.run(args.test, args.agent_a, args.agent_b)
    print(report.describe())
    return 0


def _cmd_oftest(args: argparse.Namespace) -> int:
    results = run_suite(args.agent)
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        failures += 0 if result.passed else 1
        print("%-4s %-28s %s" % (status, result.case_name, result.trace_summary))
    print("%d/%d cases passed" % (len(results) - failures, len(results)))
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    fuzzer = DifferentialFuzzer(args.agent_a, args.agent_b, seed=args.seed)
    report = fuzzer.run(iterations=args.iterations)
    print("%d iterations, %d divergences (%.1f%%)" % (
        report.iterations, report.divergence_count, 100 * report.divergence_rate))
    for divergence in report.divergences[:20]:
        print("  #%d %s" % (divergence.iteration, divergence.description))
        print("    %s: %s" % (report.agent_a, divergence.trace_a))
        print("    %s: %s" % (report.agent_b, divergence.trace_b))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-tests":
        return _cmd_list_tests()
    if args.command == "list-agents":
        return _cmd_list_agents()
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "oftest":
        return _cmd_oftest(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    parser.error("unknown command %r" % (args.command,))
    return 2


if __name__ == "__main__":
    sys.exit(main())
