"""OpenFlow agent implementations under test.

Three agents are provided, mirroring the paper's evaluation targets:

* :class:`repro.agents.reference.ReferenceSwitch` — models the OpenFlow 1.0
  reference switch, including its documented quirks (missing validation with
  silent masking, un-propagated error codes, three crash conditions, emergency
  flow support, no ``OFPP_NORMAL``).
* :class:`repro.agents.ovs.OpenVSwitchAgent` — models Open vSwitch 1.0.0
  behaviour (strict action validation with silent message drop, max-port
  validation, error-but-install on unknown buffers, ``OFPP_NORMAL`` support,
  no emergency flows).
* :class:`repro.agents.modified.ModifiedSwitch` — the reference switch with
  seven injected corner-case modifications used by §5.1.1.

All agents implement the same :class:`repro.agents.common.base.OpenFlowAgent`
interface, consume (possibly symbolic) byte buffers on their control channel
and emit message objects / data-plane outputs through an
:class:`repro.agents.common.context.AgentContext`.

Agents self-register via the :func:`repro.agents.registry.register_agent`
class decorator; resolve them by name with :func:`make_agent` and inspect
their metadata with :func:`agent_registry`.
"""

from repro.agents.common.base import OpenFlowAgent
from repro.agents.common.context import AgentContext, RecordingContext
from repro.agents.registry import (
    AGENT_REGISTRY,
    AgentInfo,
    agent_info,
    agent_registry,
    first_doc_line,
    make_agent,
    register_agent,
    registered_agent_names,
)

# Importing the implementation modules runs their @register_agent decorators.
from repro.agents.reference.agent import ReferenceSwitch
from repro.agents.ovs.agent import OpenVSwitchAgent
from repro.agents.modified.agent import ModifiedSwitch

__all__ = [
    "OpenFlowAgent",
    "AgentContext",
    "RecordingContext",
    "ReferenceSwitch",
    "OpenVSwitchAgent",
    "ModifiedSwitch",
    "AGENT_REGISTRY",
    "AgentInfo",
    "register_agent",
    "agent_registry",
    "agent_info",
    "registered_agent_names",
    "first_doc_line",
    "make_agent",
]
