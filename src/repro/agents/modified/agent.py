"""The Modified Switch: the reference switch plus seven injected changes.

See :mod:`repro.agents.modified.mutations` for the catalogue.  The class
derives from :class:`~repro.agents.reference.agent.ReferenceSwitch` and
overrides exactly the code paths the mutations touch, the way the paper's
designated team members edited the C sources.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.reference.agent import ReferenceSwitch
from repro.agents.registry import register_agent
from repro.openflow import constants as c
from repro.openflow.actions import Action
from repro.openflow.match import Match
from repro.packetlib.flowkey import FlowKey
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = ["ModifiedSwitch"]


@register_agent(
    description="Reference switch with the seven injected §5.1.1 modifications.",
    vendor="paper §5.1.1 mutation study",
    tags=("paper", "mutations"),
)
class ModifiedSwitch(ReferenceSwitch):
    """Reference switch with the seven injected corner-case modifications."""

    NAME = "modified"

    #: Mutation 3: physical ports above this value are rejected in output actions.
    INJECTED_PORT_LIMIT = 16

    #: Mutation 5: upper bound applied to miss_send_len by SET_CONFIG.
    INJECTED_MISS_SEND_CAP = 64

    # -- Mutation 1 (undetectable): HELLO version-negotiation handling changed ----

    def handle_hello(self, buf: SymBuffer, header) -> None:
        """Reject any HELLO that carries negotiation elements after the header.

        SOFT completes a correct (bare, 8-byte) HELLO handshake before testing
        and never injects another HELLO, so this change is never exercised by
        its input sequences — the paper's first undetected modification.
        """

        if len(buf) > c.OFP_HEADER_LEN:
            self.send_error(header.xid, c.OFPET_HELLO_FAILED, c.OFPHFC_INCOMPATIBLE)

    # -- Mutation 2 (undetectable): no FLOW_REMOVED on idle expiry ----------------

    def expire_idle_entry(self, entry) -> None:
        """Remove an idle-expired entry without notifying the controller.

        The reference behaviour (inherited agents) sends FLOW_REMOVED when the
        entry requested it; this switch silently drops the entry.  The method
        is only reachable from timer-driven code, which symbolic execution
        never triggers — hence the paper's second undetected modification.
        """

        self.flow_table.remove(entry)

    # -- Mutation 3: tighter port validation in output actions -------------------

    def _validate_output_port(self, port: FieldValue, xid: FieldValue) -> Optional[str]:
        outcome = super()._validate_output_port(port, xid)
        if outcome is not None:
            return outcome
        if port < c.OFPP_MAX:
            if port > self.INJECTED_PORT_LIMIT:
                self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
                return "injected_port_limit"
        return None

    # -- Mutation 4: different DESC statistics content ----------------------------

    DESC_HW = "Modified Reference Switch (injected)"

    # -- Mutation 5: SET_CONFIG clamps miss_send_len ------------------------------

    def handle_set_config(self, buf: SymBuffer, header) -> None:
        super().handle_set_config(buf, header)
        limit = self.miss_send_len
        if isinstance(limit, int):
            if limit > self.INJECTED_MISS_SEND_CAP:
                self.miss_send_len = self.INJECTED_MISS_SEND_CAP
        else:
            if limit > self.INJECTED_MISS_SEND_CAP:
                self.miss_send_len = self.INJECTED_MISS_SEND_CAP

    # -- Mutation 6: MODIFY of a missing flow is an error --------------------------

    def _flow_modify(self, match: Match, priority: FieldValue, actions, cookie,
                     flags, buffer_id, xid, strict: bool) -> None:
        targets = self.flow_table.matching_entries(match, strict=strict, priority=priority)
        if not targets:
            self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_COMMAND)
            return
        for entry in targets:
            entry.actions = list(actions)
            entry.cookie = cookie
        self._apply_to_buffered_packet(buffer_id, actions)

    # -- Mutation 7: OFPP_FLOOD drops instead of flooding ---------------------------

    def execute_output(self, port: FieldValue, max_len: FieldValue, key: FlowKey,
                       in_port: FieldValue, frame: SymBuffer) -> bool:
        if port == c.OFPP_FLOOD:
            return False
        return super().execute_output(port, max_len, key, in_port, frame)
