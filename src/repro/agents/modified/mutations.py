"""Catalogue of the seven injected modifications (§5.1.1).

Two team members who had not built the tool injected seven behavioural
changes into the reference switch; SOFT found five of them.  The two misses
are structural, not incidental:

* the **Hello** change is invisible because SOFT completes a correct handshake
  before it starts testing and never sends another Hello;
* the **idle-timeout expiry** change is invisible because the symbolic
  execution engine cannot fire timers.

This module records each mutation with whether the paper's methodology can
observe it, so the §5.1.1 benchmark can check the 5-out-of-7 result against
ground truth instead of hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Mutation", "MUTATIONS", "detectable_mutations", "undetectable_mutations"]


@dataclass(frozen=True)
class Mutation:
    """One injected behavioural change."""

    key: str
    description: str
    #: Which Table-1 tests can surface the change.
    surfaced_by: Tuple[str, ...]
    #: Whether SOFT's input sequences can observe the change at all.
    detectable: bool
    #: Why not, for the two undetectable ones.
    why_undetectable: str = ""


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        key="hello_version_check",
        description="Replies to a post-handshake HELLO with a HELLO_FAILED error "
                    "instead of ignoring it.",
        surfaced_by=(),
        detectable=False,
        why_undetectable="SOFT establishes a correct connection before testing and "
                         "never injects another Hello (paper §5.1.1).",
    ),
    Mutation(
        key="idle_timeout_no_flow_removed",
        description="Does not send FLOW_REMOVED when a flow expires due to its "
                    "idle timeout.",
        surfaced_by=(),
        detectable=False,
        why_undetectable="The symbolic execution engine cannot trigger timers "
                         "(paper §5.1.1).",
    ),
    Mutation(
        key="packet_out_port_limit",
        description="Packet Out output actions to physical ports above 16 are "
                    "rejected with BAD_OUT_PORT (the reference accepts any port).",
        surfaced_by=("packet_out", "flow_mod", "eth_flow_mod"),
        detectable=True,
    ),
    Mutation(
        key="desc_stats_content",
        description="DESC statistics report a different hardware description string.",
        surfaced_by=("stats_request",),
        detectable=True,
    ),
    Mutation(
        key="set_config_clamps_miss_send_len",
        description="SET_CONFIG clamps miss_send_len to at most 64 bytes, truncating "
                    "PACKET_IN payloads differently.",
        surfaced_by=("set_config",),
        detectable=True,
    ),
    Mutation(
        key="modify_missing_is_error",
        description="FLOW_MOD MODIFY of a non-existent flow returns an error instead "
                    "of behaving like ADD.",
        surfaced_by=("flow_mod", "eth_flow_mod", "cs_flow_mods"),
        detectable=True,
    ),
    Mutation(
        key="flood_drops",
        description="Output to OFPP_FLOOD drops the packet instead of flooding it.",
        surfaced_by=("packet_out", "flow_mod", "eth_flow_mod"),
        detectable=True,
    ),
)


def detectable_mutations() -> Tuple[Mutation, ...]:
    """The injected changes SOFT is expected to find (five of seven)."""

    return tuple(m for m in MUTATIONS if m.detectable)


def undetectable_mutations() -> Tuple[Mutation, ...]:
    """The injected changes SOFT is expected to miss (two of seven)."""

    return tuple(m for m in MUTATIONS if not m.detectable)
