"""The Modified Switch: the reference switch with seven injected differences (§5.1.1)."""

from repro.agents.modified.agent import ModifiedSwitch
from repro.agents.modified.mutations import MUTATIONS, Mutation

__all__ = ["ModifiedSwitch", "MUTATIONS", "Mutation"]
