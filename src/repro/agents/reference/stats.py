"""Statistics handling of the Reference Switch.

The defining quirk (§5.1.2 "Statistics requests silently ignored"): when the
switch cannot answer a request — unknown statistics type, vendor statistics,
or a request body too short to parse — the handler's internal error code is
never converted into an OpenFlow ERROR message, so the controller simply gets
no response.
"""

from __future__ import annotations

from repro.openflow import constants as c
from repro.openflow.messages import StatsReply
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_repr

__all__ = ["ReferenceStatsMixin"]


class ReferenceStatsMixin:
    """Mixin providing ``handle_stats_request`` for the Reference Switch."""

    DESC_MFR = "Stanford University"
    DESC_HW = "Reference Userspace Switch"
    DESC_SW = "1.0.0"

    def handle_stats_request(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_STATS_REQUEST_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        stats_type = buf.read_u16(8)
        body_len = len(buf) - c.OFP_STATS_REQUEST_LEN

        if stats_type == c.OFPST_DESC:
            self._reply_desc(header)
        elif stats_type == c.OFPST_FLOW:
            if body_len < c.OFP_FLOW_STATS_REQUEST_LEN:
                return  # internal error, never propagated
            self._reply_flow(buf, header, aggregate=False)
        elif stats_type == c.OFPST_AGGREGATE:
            if body_len < c.OFP_FLOW_STATS_REQUEST_LEN:
                return  # internal error, never propagated
            self._reply_flow(buf, header, aggregate=True)
        elif stats_type == c.OFPST_TABLE:
            self._reply_table(header)
        elif stats_type == c.OFPST_PORT:
            if body_len < c.OFP_PORT_STATS_REQUEST_LEN:
                return  # internal error, never propagated
            self._reply_port(buf, header)
        elif stats_type == c.OFPST_QUEUE:
            if body_len < c.OFP_QUEUE_STATS_REQUEST_LEN:
                return  # internal error, never propagated
            self._reply_queue(buf, header)
        else:
            # Unknown statistics type (including vendor statistics): the
            # handler returns an error code that is never sent on the wire.
            return

    # -- individual reply builders ---------------------------------------------

    def _reply_desc(self, header) -> None:
        summary = "desc(mfr=%s,hw=%s,sw=%s)" % (self.DESC_MFR, self.DESC_HW, self.DESC_SW)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_DESC, summary=summary))

    def _reply_flow(self, buf: SymBuffer, header, aggregate: bool) -> None:
        from repro.agents.common.flowtable import match_subsumes
        from repro.openflow.match import Match

        pattern = Match.unpack(buf, 12)
        out_port = buf.read_u16(12 + 42)
        selected = []
        for entry in self.flow_table.entries():
            if match_subsumes(pattern, entry.match):
                if out_port == c.OFPP_NONE or entry.outputs_to(out_port):
                    selected.append(entry)
        if aggregate:
            summary = "aggregate(flows=%d,packets=%d,bytes=%d)" % (
                len(selected),
                sum(e.packet_count for e in selected),
                sum(e.byte_count for e in selected),
            )
            self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_AGGREGATE, summary=summary))
            return
        rendered = ";".join(e.describe() for e in selected)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_FLOW,
                             summary="flows[%s]" % rendered))

    def _reply_table(self, header) -> None:
        summary = "table(id=0,name=classifier,active=%d,max=%d)" % (
            len(self.flow_table), self.flow_table.capacity)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_TABLE, summary=summary))

    def _reply_port(self, buf: SymBuffer, header) -> None:
        port_no = buf.read_u16(12)
        if port_no == c.OFPP_NONE:
            summary = "ports(all=%d)" % self.ports.count
        elif self.ports.contains(port_no):
            summary = "ports(single=%s)" % field_repr(port_no)
        else:
            return  # unknown port: internal error, never propagated
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_PORT, summary=summary))

    def _reply_queue(self, buf: SymBuffer, header) -> None:
        port_no = buf.read_u16(12)
        queue_id = buf.read_u32(16)
        summary = "queues(port=%s,queue=%s,count=0)" % (field_repr(port_no), field_repr(queue_id))
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_QUEUE, summary=summary))
