"""The Reference Switch agent.

This models the behaviour of the OpenFlow 1.0.0 reference userspace switch
("Reference Switch", 55K LoC of C in the paper), including every quirk the
paper's evaluation reports:

* **No value validation, silent masking** — ``set_vlan_vid`` / ``set_vlan_pcp``
  / ``set_nw_tos`` arguments are not validated; the values are masked to the
  legal bit width when the action is applied (§5.1.2 "Packet dropped when
  action is invalid", Reference side).
* **in_port == out_port rejected** — a Flow Mod whose match pins the ingress
  port to the same port an output action targets is refused with
  ``OFPBAC_BAD_OUT_PORT`` (§5.1.2 "Forwarding a packet to an invalid port").
* **No maximum-port validation** — any port number below the reserved range is
  accepted and simply dropped at execution time if the port does not exist.
* **Errors not propagated** — an unknown ``buffer_id`` in Packet Out/Flow Mod
  and un-answerable statistics requests produce an internal error that never
  becomes an OpenFlow ERROR message (§5.1.2 "Lack of error messages",
  "Statistics requests silently ignored").
* **Crashes** — Packet Out with output to ``OFPP_CONTROLLER``, executing a
  ``set_vlan_vid`` action from a Packet Out, and a queue-config request for
  port 0 terminate the agent (§5.1.2 "OpenFlow agent terminates with an
  error").
* **Validation order** — the buffer id is resolved before actions are
  validated, so a message that is wrong in both ways produces no error at all.
* **Emergency flow entries supported; ``OFPP_NORMAL`` unsupported.**
"""

from __future__ import annotations

from typing import List, Optional

from repro.agents.common.base import AgentConfig, OpenFlowAgent
from repro.agents.common.flowtable import FlowEntry
from repro.agents.reference.stats import ReferenceStatsMixin
from repro.agents.registry import register_agent
from repro.openflow import constants as c
from repro.openflow.actions import (
    Action,
    ActionEnqueue,
    ActionOutput,
    ActionSetNwTos,
    ActionSetVlanPcp,
    ActionSetVlanVid,
    RawAction,
)
from repro.openflow.match import Match
from repro.packetlib.flowkey import FlowKey, extract_flow_key
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = ["ReferenceSwitch"]


@register_agent(
    description="The OpenFlow 1.0 reference userspace switch, quirks included.",
    vendor="Stanford reference implementation (55K LoC of C in the paper)",
    tags=("paper", "table1"),
)
class ReferenceSwitch(ReferenceStatsMixin, OpenFlowAgent):
    """Reference OpenFlow 1.0 switch model."""

    NAME = "reference"

    # ------------------------------------------------------------------
    # Header validation
    # ------------------------------------------------------------------

    def validate_header(self, header, buf: SymBuffer) -> bool:
        """The reference switch only rejects lengths that cannot be right.

        A length field smaller than the fixed header or larger than what was
        actually received is an error; a length *shorter* than the received
        buffer is tolerated (the tail is ignored), unlike Open vSwitch.
        """

        if header.length < c.OFP_HEADER_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return False
        if header.length > len(buf):
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return False
        return True

    # ------------------------------------------------------------------
    # SET_CONFIG
    # ------------------------------------------------------------------

    def handle_set_config(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_SWITCH_CONFIG_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        flags = buf.read_u16(8)
        miss_send_len = buf.read_u16(10)
        # The reference switch keeps only the fragment-handling bits and stores
        # miss_send_len verbatim; no reply is generated.
        self.frag_flags = flags & c.OFPC_FRAG_MASK
        self.miss_send_len = miss_send_len

    # ------------------------------------------------------------------
    # PACKET_OUT
    # ------------------------------------------------------------------

    def handle_packet_out(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_PACKET_OUT_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        buffer_id, in_port, actions, data = self.parse_packet_out_fields(buf)

        # Reference order: the packet buffer is resolved *before* the actions
        # are validated.  An unknown buffer id makes the handler bail out, and
        # the internal error code is never turned into an OpenFlow ERROR.
        frame = data
        if buffer_id != c.OFP_NO_BUFFER:
            buffered = self.buffer_pool.find(buffer_id)
            if buffered is None:
                return  # silent drop: error not propagated (paper §5.1.2)
            frame = buffered

        if len(frame) < 14:
            # Nothing resembling an Ethernet frame to forward.
            return

        error = self._validate_packet_out_actions(actions, header.xid)
        if error is not None:
            return

        key = extract_flow_key(frame, in_port)
        self._in_packet_out = True
        try:
            self._execute_packet_out_actions(actions, key, in_port, frame)
        finally:
            self._in_packet_out = False

    def _validate_packet_out_actions(self, actions: List[Action], xid: FieldValue) -> Optional[str]:
        """Packet Out action validation, reference style (structure only).

        Field *values* (VLAN id, PCP, TOS) are deliberately not checked; they
        are masked when applied.  Returns a non-None marker when an error was
        sent and processing must stop.
        """

        for action in actions:
            if isinstance(action, RawAction):
                outcome = self._classify_raw_action(action, xid)
                if outcome is not None:
                    return outcome
            elif isinstance(action, (ActionOutput, ActionEnqueue)):
                outcome = self._validate_output_port(action.port, xid)
                if outcome is not None:
                    return outcome
            # All other concrete action types are accepted unchecked.
        return None

    def _classify_raw_action(self, action: RawAction, xid: FieldValue) -> Optional[str]:
        """Branch over a symbolic action type the way ``ofi_act_validate`` does."""

        kind = action.action_type
        if kind == c.OFPAT_OUTPUT:
            return self._validate_output_port(action.arg16_a, xid)
        if kind == c.OFPAT_SET_VLAN_VID:
            return None          # value not validated (masked at execution)
        if kind == c.OFPAT_SET_VLAN_PCP:
            return None          # value not validated
        if kind == c.OFPAT_STRIP_VLAN:
            return None
        if kind == c.OFPAT_SET_DL_SRC or kind == c.OFPAT_SET_DL_DST:
            return None
        if kind == c.OFPAT_SET_NW_SRC or kind == c.OFPAT_SET_NW_DST:
            return None
        if kind == c.OFPAT_SET_NW_TOS:
            return None          # value not validated
        if kind == c.OFPAT_SET_TP_SRC or kind == c.OFPAT_SET_TP_DST:
            return None
        if kind == c.OFPAT_ENQUEUE:
            return self._validate_output_port(action.arg16_a, xid)
        if kind == c.OFPAT_VENDOR:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_VENDOR)
            return "bad_vendor"
        self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_TYPE)
        return "bad_type"

    def _validate_output_port(self, port: FieldValue, xid: FieldValue) -> Optional[str]:
        """Reference port validation: only port 0 and NORMAL/NONE are refused."""

        if port == 0:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return "bad_port_zero"
        if port == c.OFPP_NORMAL:
            # The reference switch has no traditional forwarding path.
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return "normal_unsupported"
        if port == c.OFPP_NONE:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return "bad_port_none"
        # Anything else — including port numbers larger than the number of
        # physical ports — is accepted; non-existent ports drop at execution.
        return None

    def _execute_packet_out_actions(self, actions: List[Action], key: FlowKey,
                                    in_port: FieldValue, frame: SymBuffer) -> None:
        for action in actions:
            if isinstance(action, ActionOutput):
                self._packet_out_output(action.port, key, in_port, frame)
            elif isinstance(action, ActionSetVlanVid):
                # Executing a set-VLAN action on a Packet Out packet hits the
                # reference switch's unhandled code path and aborts the agent.
                self.abort("segfault while applying set_vlan_vid to a packet_out packet")
            elif isinstance(action, RawAction):
                self._execute_raw_packet_out_action(action, key, in_port, frame)
            else:
                self.apply_actions([action], key, in_port, frame)

    def _execute_raw_packet_out_action(self, action: RawAction, key: FlowKey,
                                       in_port: FieldValue, frame: SymBuffer) -> None:
        kind = action.action_type
        if kind == c.OFPAT_OUTPUT:
            self._packet_out_output(action.arg16_a, key, in_port, frame)
        elif kind == c.OFPAT_SET_VLAN_VID:
            self.abort("segfault while applying set_vlan_vid to a packet_out packet")
        elif kind == c.OFPAT_SET_VLAN_PCP:
            key.dl_vlan_pcp = self._mask_field(action.arg16_a, 0x07)
        elif kind == c.OFPAT_STRIP_VLAN:
            key.dl_vlan = c.OFP_VLAN_NONE
            key.dl_vlan_pcp = 0
        elif kind == c.OFPAT_SET_NW_TOS:
            key.nw_tos = self._mask_field(action.arg16_a, 0xFC)
        elif kind == c.OFPAT_SET_TP_SRC:
            key.tp_src = action.arg16_a
        elif kind == c.OFPAT_SET_TP_DST:
            key.tp_dst = action.arg16_a
        elif kind == c.OFPAT_ENQUEUE:
            self._packet_out_output(action.arg16_a, key, in_port, frame)
        else:
            # Remaining types rewrite fields wider than the 16-bit argument the
            # raw action carries; model them as applying the argument low bits.
            pass

    def _packet_out_output(self, port: FieldValue, key: FlowKey,
                           in_port: FieldValue, frame: SymBuffer) -> None:
        if port == c.OFPP_CONTROLLER:
            # Documented crash: Packet Out whose output port is the controller.
            self.abort("assertion failure while encapsulating packet_out to the controller")
        self.execute_output(port, 0, key, in_port, frame)

    # ------------------------------------------------------------------
    # Field rewriting (masking instead of validation)
    # ------------------------------------------------------------------

    @staticmethod
    def _mask_field(value: FieldValue, mask: int) -> FieldValue:
        if isinstance(value, int):
            return value & mask
        return value & mask

    def rewrite_field(self, key: FlowKey, name: str, value: FieldValue) -> None:
        """The reference switch forces out-of-range values into shape."""

        if name == "dl_vlan":
            value = self._mask_field(value, 0x0FFF)
        elif name == "dl_vlan_pcp":
            value = self._mask_field(value, 0x07)
        elif name == "nw_tos":
            value = self._mask_field(value, 0xFC)
        setattr(key, name, value)

    def execute_normal_output(self, key: FlowKey, in_port: FieldValue,
                              frame: SymBuffer) -> bool:
        """OFPP_NORMAL is not implemented by the reference switch: drop."""

        return False

    # ------------------------------------------------------------------
    # FLOW_MOD
    # ------------------------------------------------------------------

    def handle_flow_mod(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_FLOW_MOD_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        (match, cookie, command, idle_timeout, hard_timeout, priority,
         buffer_id, out_port, flags, actions) = self.parse_flow_mod_fields(buf)

        error = self._validate_flow_mod_actions(match, actions, header.xid)
        if error is not None:
            return

        if command == c.OFPFC_ADD:
            self._flow_add(match, priority, actions, cookie, idle_timeout,
                           hard_timeout, flags, buffer_id, header.xid)
        elif command == c.OFPFC_MODIFY:
            self._flow_modify(match, priority, actions, cookie, flags, buffer_id,
                              header.xid, strict=False)
        elif command == c.OFPFC_MODIFY_STRICT:
            self._flow_modify(match, priority, actions, cookie, flags, buffer_id,
                              header.xid, strict=True)
        elif command == c.OFPFC_DELETE:
            self._flow_delete(match, priority, out_port, strict=False)
        elif command == c.OFPFC_DELETE_STRICT:
            self._flow_delete(match, priority, out_port, strict=True)
        else:
            self.send_error(header.xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_COMMAND)

    def _validate_flow_mod_actions(self, match: Match, actions: List[Action],
                                   xid: FieldValue) -> Optional[str]:
        """Flow Mod action validation, including the in_port == out_port refusal."""

        for action in actions:
            port: Optional[FieldValue] = None
            if isinstance(action, (ActionOutput, ActionEnqueue)):
                port = action.port
            elif isinstance(action, RawAction):
                outcome = self._classify_raw_action(action, xid)
                if outcome is not None:
                    return outcome
                if action.action_type == c.OFPAT_OUTPUT or action.action_type == c.OFPAT_ENQUEUE:
                    port = action.arg16_a
            else:
                continue
            if port is None:
                continue
            outcome = self._validate_output_port(port, xid)
            if outcome is not None:
                return outcome
            # Reject rules that forward packets back to their ingress port:
            # "as no packets will ever be forwarded to this port" (§5.1.2).
            in_port_significant = True
            wildcards = match.wildcards
            if (wildcards & c.OFPFW_IN_PORT) != 0:
                in_port_significant = False
            if in_port_significant and port == match.in_port:
                self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
                return "out_port_equals_in_port"
        return None

    def _flow_add(self, match: Match, priority: FieldValue, actions: List[Action],
                  cookie: FieldValue, idle_timeout: FieldValue, hard_timeout: FieldValue,
                  flags: FieldValue, buffer_id: FieldValue, xid: FieldValue) -> None:
        emergency = (flags & c.OFPFF_EMERG) != 0
        if emergency:
            # Emergency entries must not carry timeouts (spec §4.6); the
            # reference switch enforces this.
            if idle_timeout != 0 or hard_timeout != 0:
                self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_EMERG_TIMEOUT)
                return
        if (flags & c.OFPFF_CHECK_OVERLAP) != 0:
            if self._has_overlap(match, priority):
                self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_OVERLAP)
                return
        if self.flow_table.is_full:
            self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_ALL_TABLES_FULL)
            return
        entry = FlowEntry(match=match, priority=priority, actions=list(actions),
                          cookie=cookie, idle_timeout=idle_timeout,
                          hard_timeout=hard_timeout, flags=flags,
                          emergency=bool(emergency))
        self.flow_table.add(entry)
        self._apply_to_buffered_packet(buffer_id, actions)

    def _has_overlap(self, match: Match, priority: FieldValue) -> bool:
        for entry in self.flow_table.entries():
            if not (entry.priority == priority):
                continue
            from repro.agents.common.flowtable import match_subsumes

            if match_subsumes(match, entry.match) or match_subsumes(entry.match, match):
                return True
        return False

    def _flow_modify(self, match: Match, priority: FieldValue, actions: List[Action],
                     cookie: FieldValue, flags: FieldValue, buffer_id: FieldValue,
                     xid: FieldValue, strict: bool) -> None:
        targets = self.flow_table.matching_entries(match, strict=strict, priority=priority)
        if not targets:
            # Per the 1.0 spec MODIFY of a non-existent flow behaves like ADD.
            self._flow_add(match, priority, actions, cookie, 0, 0, flags, buffer_id, xid)
            return
        for entry in targets:
            entry.actions = list(actions)
            entry.cookie = cookie
        self._apply_to_buffered_packet(buffer_id, actions)

    def _flow_delete(self, match: Match, priority: FieldValue,
                     out_port: FieldValue, strict: bool) -> None:
        targets = self.flow_table.matching_entries(match, strict=strict,
                                                   priority=priority, out_port=out_port)
        for entry in targets:
            self.flow_table.remove(entry)
            if (entry.flags & c.OFPFF_SEND_FLOW_REM) != 0:
                from repro.openflow.messages import FlowRemoved

                self.send(FlowRemoved(match=entry.match, cookie=entry.cookie,
                                      priority=entry.priority, reason=c.OFPRR_DELETE))

    def _apply_to_buffered_packet(self, buffer_id: FieldValue, actions: List[Action]) -> None:
        """Apply the new flow's actions to the buffered packet, if one was named.

        When the buffer id does not exist the reference switch's handler
        produces an internal error code that is never sent to the controller:
        the message is otherwise processed (the flow stays installed) and no
        actions are applied to any packet.
        """

        if buffer_id == c.OFP_NO_BUFFER:
            return
        frame = self.buffer_pool.find(buffer_id)
        if frame is None:
            return  # silent: error not propagated (paper §5.1.2)
        key = extract_flow_key(frame, 0)
        self.apply_actions(actions, key, 0, frame)

    # ------------------------------------------------------------------
    # QUEUE_GET_CONFIG_REQUEST
    # ------------------------------------------------------------------

    def handle_queue_get_config_request(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_QUEUE_GET_CONFIG_REQUEST_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        port = buf.read_u16(8)
        if port == 0:
            # Documented crash: queue configuration request for port 0 walks a
            # NULL port structure.
            self.abort("memory error while looking up queues of port 0")
        if self.ports.contains(port):
            from repro.openflow.messages import QueueGetConfigReply

            self.send(QueueGetConfigReply(xid=header.xid, port=port, queues=[]))
            return
        self.send_error(header.xid, c.OFPET_QUEUE_OP_FAILED, c.OFPQOFC_BAD_PORT)
