"""The Reference Switch agent (models the OpenFlow 1.0.0 reference userspace switch)."""

from repro.agents.reference.agent import ReferenceSwitch

__all__ = ["ReferenceSwitch"]
