"""Substrate shared by all agent implementations.

The pieces here play the role that ``lib/`` and ``datapath/`` utilities play
in the C code bases: port inventory, packet buffer pool, the software flow
table and the agent/environment interface.  Behavioural differences between
agents live strictly in the per-agent packages, not here.
"""

from repro.agents.common.base import AgentConfig, OpenFlowAgent
from repro.agents.common.context import AgentContext, RecordingContext
from repro.agents.common.flowtable import FlowEntry, FlowTable
from repro.agents.common.buffers import PacketBufferPool
from repro.agents.common.ports import SwitchPortSet

__all__ = [
    "AgentConfig",
    "OpenFlowAgent",
    "AgentContext",
    "RecordingContext",
    "FlowEntry",
    "FlowTable",
    "PacketBufferPool",
    "SwitchPortSet",
]
