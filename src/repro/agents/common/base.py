"""Common skeleton of an OpenFlow 1.0 agent.

:class:`OpenFlowAgent` implements the machinery every agent shares — header
parsing, type dispatch, the trivial request/reply handlers, flow-table lookup
on the data-plane path — and declares overridable handlers for the messages
whose semantics differ between implementations (``Packet Out``, ``Flow Mod``,
``Stats Request``, ``Set Config``, ``Queue Get Config``) plus the action
validation/application hooks.  The per-vendor behaviour, including every
inconsistency the paper reports, lives in the subclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.agents.common.buffers import PacketBufferPool
from repro.agents.common.context import AgentContext
from repro.agents.common.flowtable import FlowEntry, FlowTable
from repro.agents.common.ports import SwitchPortSet
from repro.errors import AgentCrash, MessageParseError
from repro.openflow import constants as c
from repro.openflow.actions import Action, unpack_actions
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    ErrorMsg,
    FeaturesReply,
    GetConfigReply,
    OpenFlowMessage,
    PacketIn,
)
from repro.openflow.parser import parse_header
from repro.packetlib.flowkey import FlowKey, extract_flow_key
from repro.testing.faults import fault_point
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_int, field_repr, is_symbolic_field

__all__ = ["AgentConfig", "OpenFlowAgent"]


@dataclass
class AgentConfig:
    """Static identity and tunables of an emulated switch."""

    datapath_id: int = 0x0000_0000_0000_00FE
    n_buffers: int = 256
    n_tables: int = 1
    capabilities: int = c.OFPC_FLOW_STATS | c.OFPC_TABLE_STATS | c.OFPC_PORT_STATS
    supported_actions: int = 0x0FFF
    port_count: int = 24
    description: str = "repro software switch"


class OpenFlowAgent:
    """Base class of the agents under test."""

    #: Human-readable agent name used in reports.
    NAME = "base"

    def __init__(self, ctx: Optional[AgentContext] = None,
                 config: Optional[AgentConfig] = None) -> None:
        self.ctx = ctx
        self.config = config if config is not None else AgentConfig()
        self.ports = SwitchPortSet(count=self.config.port_count)
        self.flow_table = FlowTable()
        self.buffer_pool = PacketBufferPool(capacity=self.config.n_buffers)
        # Switch configuration state mutated by SET_CONFIG.
        self.frag_flags: FieldValue = c.OFPC_FRAG_NORMAL
        self.miss_send_len: FieldValue = c.OFP_DEFAULT_MISS_SEND_LEN
        # Set once the agent has crashed; subsequent inputs are ignored.
        self.crashed = False
        # True while a Packet Out message is being executed (OFPP_TABLE guard).
        self._in_packet_out = False

    # ------------------------------------------------------------------
    # Environment plumbing
    # ------------------------------------------------------------------

    def attach(self, ctx: AgentContext) -> None:
        """Connect the agent to its environment (controller + data plane)."""

        self.ctx = ctx

    def send(self, message: OpenFlowMessage) -> None:
        if self.ctx is None:
            raise MessageParseError("agent is not attached to a context")
        self.ctx.send_to_controller(message)

    def send_error(self, xid: FieldValue, err_type: int, code: int,
                   data: bytes = b"") -> None:
        self.send(ErrorMsg(xid=xid, err_type=err_type, code=code, data=data))

    def output_packet(self, port: FieldValue, frame_summary: str, length: int = 0) -> None:
        if self.ctx is None:
            raise MessageParseError("agent is not attached to a context")
        self.ctx.output_packet(port, frame_summary, length)

    def abort(self, reason: str) -> None:
        """Model a process-level crash (segfault/assert) of the agent."""

        self.crashed = True
        raise AgentCrash(reason)

    # ------------------------------------------------------------------
    # Control channel entry point
    # ------------------------------------------------------------------

    def handle_control_buffer(self, buf: SymBuffer) -> None:
        """Process one controller-to-switch message from its wire bytes."""

        if self.crashed:
            return
        fault_point("agent.handle", getattr(self, "NAME", type(self).__name__))
        header = parse_header(buf)
        if header.version != c.OFP_VERSION:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_VERSION)
            return
        if not self.validate_header(header, buf):
            return
        msg_type = header.msg_type
        if msg_type == c.OFPT_HELLO:
            self.handle_hello(buf, header)
        elif msg_type == c.OFPT_ERROR:
            self.handle_error_msg(buf, header)
        elif msg_type == c.OFPT_ECHO_REQUEST:
            self.handle_echo_request(buf, header)
        elif msg_type == c.OFPT_ECHO_REPLY:
            pass
        elif msg_type == c.OFPT_VENDOR:
            self.handle_vendor(buf, header)
        elif msg_type == c.OFPT_FEATURES_REQUEST:
            self.handle_features_request(buf, header)
        elif msg_type == c.OFPT_GET_CONFIG_REQUEST:
            self.handle_get_config_request(buf, header)
        elif msg_type == c.OFPT_SET_CONFIG:
            self.handle_set_config(buf, header)
        elif msg_type == c.OFPT_PACKET_OUT:
            self.handle_packet_out(buf, header)
        elif msg_type == c.OFPT_FLOW_MOD:
            self.handle_flow_mod(buf, header)
        elif msg_type == c.OFPT_PORT_MOD:
            self.handle_port_mod(buf, header)
        elif msg_type == c.OFPT_STATS_REQUEST:
            self.handle_stats_request(buf, header)
        elif msg_type == c.OFPT_BARRIER_REQUEST:
            self.handle_barrier_request(buf, header)
        elif msg_type == c.OFPT_QUEUE_GET_CONFIG_REQUEST:
            self.handle_queue_get_config_request(buf, header)
        elif msg_type == c.OFPT_FEATURES_REPLY or msg_type == c.OFPT_GET_CONFIG_REPLY \
                or msg_type == c.OFPT_PACKET_IN or msg_type == c.OFPT_FLOW_REMOVED \
                or msg_type == c.OFPT_PORT_STATUS or msg_type == c.OFPT_STATS_REPLY \
                or msg_type == c.OFPT_BARRIER_REPLY or msg_type == c.OFPT_QUEUE_GET_CONFIG_REPLY:
            # Switch-to-controller message types arriving on the switch side.
            self.handle_unexpected_type(buf, header)
        else:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_TYPE)

    # ------------------------------------------------------------------
    # Header / dispatch hooks (overridable; implementations disagree here)
    # ------------------------------------------------------------------

    def validate_header(self, header, buf: SymBuffer) -> bool:
        """Check the header's length field.  Returns False to stop processing.

        The default accepts anything; subclasses implement the (differing)
        checks their C counterparts perform.
        """

        return True

    def handle_unexpected_type(self, buf: SymBuffer, header) -> None:
        """A switch-to-controller message type arrived on the switch side."""

        self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_TYPE)

    # ------------------------------------------------------------------
    # Trivial shared handlers (identical in both C implementations)
    # ------------------------------------------------------------------

    def handle_hello(self, buf: SymBuffer, header) -> None:
        """HELLO after connection setup carries no semantics for v1.0 peers."""

    def handle_error_msg(self, buf: SymBuffer, header) -> None:
        """Errors from the controller are logged and otherwise ignored."""

    def handle_echo_request(self, buf: SymBuffer, header) -> None:
        payload = buf.read_bytes(c.OFP_HEADER_LEN, len(buf) - c.OFP_HEADER_LEN)
        self.send(EchoReply(xid=header.xid, data=payload))

    def handle_vendor(self, buf: SymBuffer, header) -> None:
        self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_VENDOR)

    def handle_features_request(self, buf: SymBuffer, header) -> None:
        self.send(FeaturesReply(
            xid=header.xid,
            datapath_id=self.config.datapath_id,
            n_buffers=self.config.n_buffers,
            n_tables=self.config.n_tables,
            capabilities=self.config.capabilities,
            actions=self.config.supported_actions,
            ports=self.ports.phy_ports(),
        ))

    def handle_get_config_request(self, buf: SymBuffer, header) -> None:
        self.send(GetConfigReply(xid=header.xid, flags=self.frag_flags,
                                 miss_send_len=self.miss_send_len))

    def handle_barrier_request(self, buf: SymBuffer, header) -> None:
        self.send(BarrierReply(xid=header.xid))

    def handle_port_mod(self, buf: SymBuffer, header) -> None:
        if len(buf) < 32:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        port_no = buf.read_u16(8)
        if not self.ports.contains(port_no):
            self.send_error(header.xid, c.OFPET_PORT_MOD_FAILED, c.OFPPMFC_BAD_PORT)
            return
        # Port configuration changes have no externally visible effect in the
        # emulated data plane; accepting silently matches both C agents.

    # ------------------------------------------------------------------
    # Handlers that differ between agents (implemented by subclasses)
    # ------------------------------------------------------------------

    def handle_set_config(self, buf: SymBuffer, header) -> None:
        raise NotImplementedError

    def handle_packet_out(self, buf: SymBuffer, header) -> None:
        raise NotImplementedError

    def handle_flow_mod(self, buf: SymBuffer, header) -> None:
        raise NotImplementedError

    def handle_stats_request(self, buf: SymBuffer, header) -> None:
        raise NotImplementedError

    def handle_queue_get_config_request(self, buf: SymBuffer, header) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Data plane entry point
    # ------------------------------------------------------------------

    def handle_dataplane_packet(self, in_port: FieldValue, frame: SymBuffer) -> bool:
        """Process one received frame.  Returns True when any output was produced."""

        if self.crashed:
            return False
        key = extract_flow_key(frame, in_port)
        if self.should_drop_fragment(key, frame):
            return False
        entry = self.flow_table.lookup(key)
        if entry is None:
            self.send_packet_in(in_port, frame, reason=c.OFPR_NO_MATCH)
            return True
        entry.packet_count += 1
        entry.byte_count += len(frame)
        return self.apply_entry_actions(entry, key, in_port, frame)

    def should_drop_fragment(self, key: FlowKey, frame: SymBuffer) -> bool:
        """Fragment-handling policy installed by SET_CONFIG (OFPC_FRAG_DROP)."""

        if self.frag_flags == c.OFPC_FRAG_DROP:
            return self._frame_is_ip_fragment(frame)
        return False

    @staticmethod
    def _frame_is_ip_fragment(frame: SymBuffer) -> bool:
        if len(frame) < 22:
            return False
        dl_type = frame.read_u16(12)
        if not isinstance(dl_type, int) or dl_type != c.ETH_TYPE_IP:
            return False
        frag_field = frame.read_u16(20)
        if isinstance(frag_field, int):
            return (frag_field & 0x3FFF) != 0
        return bool((frag_field & 0x3FFF) != 0)

    def send_packet_in(self, in_port: FieldValue, frame: SymBuffer, reason: int) -> None:
        """Forward a packet to the controller, honouring ``miss_send_len``.

        When ``miss_send_len`` is a symbolic value (the Set Config test) and
        the limit is below the frame length, the payload cannot be sliced to a
        symbolic length; the PACKET_IN is sent with an empty payload on that
        path, which the normalized trace records as "truncated".
        """

        data = frame
        limit = self.miss_send_len
        if isinstance(limit, int):
            if len(frame) > limit:
                data = frame.read_bytes(0, limit)
        else:
            if limit >= len(frame):
                pass  # the whole frame fits
            else:
                data = frame.read_bytes(0, 0)
        buffer_id = self.buffer_pool.store(frame) if reason == c.OFPR_NO_MATCH else c.OFP_NO_BUFFER
        self.send(PacketIn(
            buffer_id=buffer_id,
            total_len=len(frame),
            in_port=in_port,
            reason=reason,
            data=data.to_bytes() if data.is_concrete else b"",
        ))

    # ------------------------------------------------------------------
    # Action application (shared mechanics, agent-specific hooks)
    # ------------------------------------------------------------------

    def apply_entry_actions(self, entry: FlowEntry, key: FlowKey,
                            in_port: FieldValue, frame: SymBuffer) -> bool:
        """Apply a matched entry's actions to the packet.  True if output produced."""

        return self.apply_actions(entry.actions, key, in_port, frame)

    def apply_actions(self, actions: List[Action], key: FlowKey,
                      in_port: FieldValue, frame: SymBuffer) -> bool:
        """Execute an action list; returns True when at least one output happened."""

        from repro.openflow.actions import (
            ActionEnqueue,
            ActionOutput,
            ActionSetDlDst,
            ActionSetDlSrc,
            ActionSetNwDst,
            ActionSetNwSrc,
            ActionSetNwTos,
            ActionSetTpDst,
            ActionSetTpSrc,
            ActionSetVlanPcp,
            ActionSetVlanVid,
            ActionStripVlan,
        )

        produced = False
        for action in actions:
            if isinstance(action, ActionOutput):
                produced = self.execute_output(action.port, action.max_len, key,
                                               in_port, frame) or produced
            elif isinstance(action, ActionEnqueue):
                produced = self.execute_output(action.port, 0, key, in_port, frame) or produced
            elif isinstance(action, ActionSetVlanVid):
                self.rewrite_field(key, "dl_vlan", action.vlan_vid)
            elif isinstance(action, ActionSetVlanPcp):
                self.rewrite_field(key, "dl_vlan_pcp", action.vlan_pcp)
            elif isinstance(action, ActionStripVlan):
                key.dl_vlan = c.OFP_VLAN_NONE
                key.dl_vlan_pcp = 0
            elif isinstance(action, ActionSetDlSrc):
                self.rewrite_field(key, "dl_src", action.dl_addr)
            elif isinstance(action, ActionSetDlDst):
                self.rewrite_field(key, "dl_dst", action.dl_addr)
            elif isinstance(action, ActionSetNwSrc):
                self.rewrite_field(key, "nw_src", action.nw_addr)
            elif isinstance(action, ActionSetNwDst):
                self.rewrite_field(key, "nw_dst", action.nw_addr)
            elif isinstance(action, ActionSetNwTos):
                self.rewrite_field(key, "nw_tos", action.nw_tos)
            elif isinstance(action, ActionSetTpSrc):
                self.rewrite_field(key, "tp_src", action.tp_port)
            elif isinstance(action, ActionSetTpDst):
                self.rewrite_field(key, "tp_dst", action.tp_port)
            else:
                # RawAction / vendor actions reaching execution were accepted by
                # the agent's validator; subclasses decide what that means.
                produced = self.execute_raw_action(action, key, in_port, frame) or produced
        return produced

    def rewrite_field(self, key: FlowKey, name: str, value: FieldValue) -> None:
        """Set a header field on the packet being forwarded (no masking here)."""

        setattr(key, name, value)

    def execute_raw_action(self, action: Action, key: FlowKey,
                           in_port: FieldValue, frame: SymBuffer) -> bool:
        """Execute an action the shared code does not know; default: no effect."""

        return False

    def execute_output(self, port: FieldValue, max_len: FieldValue, key: FlowKey,
                       in_port: FieldValue, frame: SymBuffer) -> bool:
        """Send the (possibly rewritten) packet out of *port*.  True on output."""

        summary = key.describe()
        if port == c.OFPP_IN_PORT:
            self.output_packet(in_port, summary, len(frame))
            return True
        if port == c.OFPP_TABLE:
            # Re-inject into the flow table: only meaningful for Packet Out.
            # The _in_packet_out guard prevents unbounded recursion when a flow
            # entry (incorrectly) outputs to TABLE.
            if self._in_packet_out:
                self._in_packet_out = False
                try:
                    return self.handle_dataplane_packet(in_port, frame)
                finally:
                    self._in_packet_out = True
            return False
        if port == c.OFPP_FLOOD or port == c.OFPP_ALL:
            self.output_packet("FLOOD" if port == c.OFPP_FLOOD else "ALL", summary, len(frame))
            return True
        if port == c.OFPP_CONTROLLER:
            self.send_packet_in(in_port, frame, reason=c.OFPR_ACTION)
            return True
        if port == c.OFPP_NORMAL:
            return self.execute_normal_output(key, in_port, frame)
        if port == c.OFPP_LOCAL:
            self.output_packet("LOCAL", summary, len(frame))
            return True
        if port == c.OFPP_NONE:
            return False
        if self.ports.contains(port):
            self.output_packet(port, summary, len(frame))
            return True
        # Output to a port this switch does not have: drop.
        return False

    def execute_normal_output(self, key: FlowKey, in_port: FieldValue,
                              frame: SymBuffer) -> bool:
        """OFPP_NORMAL (traditional L2/L3 processing); support differs by agent."""

        return False

    # ------------------------------------------------------------------
    # Helpers shared by the Flow Mod handlers
    # ------------------------------------------------------------------

    def parse_flow_mod_fields(self, buf: SymBuffer):
        """Read the fixed Flow Mod fields and the action list."""

        match = Match.unpack(buf, 8)
        cookie = buf.read_u64(48)
        command = buf.read_u16(56)
        idle_timeout = buf.read_u16(58)
        hard_timeout = buf.read_u16(60)
        priority = buf.read_u16(62)
        buffer_id = buf.read_u32(64)
        out_port = buf.read_u16(68)
        flags = buf.read_u16(70)
        actions = unpack_actions(buf, c.OFP_FLOW_MOD_LEN, len(buf) - c.OFP_FLOW_MOD_LEN)
        return match, cookie, command, idle_timeout, hard_timeout, priority, \
            buffer_id, out_port, flags, actions

    def parse_packet_out_fields(self, buf: SymBuffer):
        """Read the fixed Packet Out fields, the action list and the payload."""

        buffer_id = buf.read_u32(8)
        in_port = buf.read_u16(12)
        actions_len = field_int(buf.read_u16(14))
        actions = unpack_actions(buf, c.OFP_PACKET_OUT_LEN, actions_len)
        data_offset = c.OFP_PACKET_OUT_LEN + actions_len
        data = buf.read_bytes(data_offset, len(buf) - data_offset)
        return buffer_id, in_port, actions, data
