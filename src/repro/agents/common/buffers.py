"""Packet buffer pool.

Hardware and software switches keep packets that were sent to the controller
in numbered buffers so a later ``Packet Out``/``Flow Mod`` can refer to them
by ``buffer_id``.  The tests in the paper exercise the *unknown buffer id*
corner case, so the pool must distinguish "no buffer requested"
(``OFP_NO_BUFFER``) from "a buffer id that does not exist".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.openflow import constants as c
from repro.wire.buffer import SymBuffer

__all__ = ["PacketBufferPool"]


class PacketBufferPool:
    """A bounded pool of buffered packets keyed by a 32-bit id."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._buffers: Dict[int, SymBuffer] = {}
        self._next_id = 1

    def store(self, frame: SymBuffer) -> int:
        """Store *frame* and return its buffer id (wraps around at capacity)."""

        buffer_id = self._next_id
        self._next_id = self._next_id % self.capacity + 1
        self._buffers[buffer_id] = frame
        return buffer_id

    def retrieve(self, buffer_id: int) -> Optional[SymBuffer]:
        """Return and remove the buffered frame, or None when unknown."""

        return self._buffers.pop(buffer_id, None)

    def peek(self, buffer_id: int) -> Optional[SymBuffer]:
        return self._buffers.get(buffer_id)

    def find(self, buffer_id) -> Optional[SymBuffer]:
        """Symbolic-aware lookup: compares *buffer_id* against every stored id.

        With a symbolic id this branches once per stored buffer, which is how
        the C implementations' linear bucket scan behaves under symbolic
        execution.  Returns None when no stored id can equal *buffer_id* on
        the current path.
        """

        from repro.wire.fields import field_equals

        for stored_id, frame in sorted(self._buffers.items()):
            if field_equals(buffer_id, stored_id, 32):
                return frame
        return None

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        self._buffers.clear()
