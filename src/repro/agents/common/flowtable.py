"""Software flow table shared by the agents.

Matching follows the OpenFlow 1.0 semantics: a packet's flow key matches an
entry when every field that is *not* wildcarded by the entry equals the key's
field; IP source/destination use prefix wildcards.  Exact-match entries take
precedence over wildcarded ones; among wildcarded entries the highest priority
wins, ties broken by insertion order.

All comparisons are symbolic-aware: when an entry was installed from a
symbolic ``Flow Mod``, looking up a concrete probe packet forks execution over
the possible wildcard configurations and field values — which is exactly how
SOFT turns internal flow-table state into observable behaviour (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.openflow import constants as c
from repro.openflow.actions import Action, ActionOutput
from repro.openflow.match import Match
from repro.packetlib.flowkey import FlowKey
from repro.symbex.expr import BoolExpr, bv
from repro.wire.fields import FieldValue, field_equals

__all__ = ["FlowEntry", "FlowTable", "match_covers_key", "match_is_exact"]

BoolLike = Union[bool, BoolExpr]


@dataclass
class FlowEntry:
    """One row of the flow table."""

    match: Match
    priority: FieldValue = c.OFP_DEFAULT_PRIORITY
    actions: List[Action] = field(default_factory=list)
    cookie: FieldValue = 0
    idle_timeout: FieldValue = 0
    hard_timeout: FieldValue = 0
    flags: FieldValue = 0
    emergency: bool = False
    insert_order: int = 0
    packet_count: int = 0
    byte_count: int = 0

    def outputs_to(self, port: FieldValue) -> BoolLike:
        """True when any output action of this entry targets *port*."""

        result: BoolLike = False
        for action in self.actions:
            if isinstance(action, ActionOutput):
                hit = field_equals(action.port, port, 16)
                if isinstance(hit, bool) and hit:
                    return True
                if not isinstance(hit, bool):
                    if isinstance(result, bool):
                        result = hit if not result else True
                    else:
                        result = result | hit
        return result

    def describe(self) -> str:
        return "entry(prio=%s,%s,actions=[%s])" % (
            self.priority, self.match.describe(), ",".join(a.describe() for a in self.actions))


def _wildcard_bit_set(wildcards: FieldValue, bit: int) -> BoolLike:
    if isinstance(wildcards, int):
        return bool(wildcards & bit)
    return (wildcards & bit) != 0


def match_is_exact(match: Match) -> BoolLike:
    """The entry wildcards nothing (used for the exact-match fast path)."""

    if isinstance(match.wildcards, int):
        return (match.wildcards & c.OFPFW_ALL) == 0
    return (match.wildcards & c.OFPFW_ALL) == 0


def match_covers_key(match: Match, key: FlowKey) -> bool:
    """Does *match* cover the packet described by *key*?

    Written in short-circuit style so that symbolic wildcards / fields fork
    only where the outcome actually depends on them.  Returns a Python bool;
    inside an exploration the symbolic comparisons fork the path as a side
    effect of being used in ``if`` conditions.
    """

    w = match.wildcards

    if not _wildcard_bit_set(w, c.OFPFW_IN_PORT):
        if not field_equals(match.in_port, key.in_port, 16):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_DL_SRC):
        if not field_equals(match.dl_src, key.dl_src, 48):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_DL_DST):
        if not field_equals(match.dl_dst, key.dl_dst, 48):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_DL_VLAN):
        if not field_equals(match.dl_vlan, key.dl_vlan, 16):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_DL_VLAN_PCP):
        if not field_equals(match.dl_vlan_pcp, key.dl_vlan_pcp, 8):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_DL_TYPE):
        if not field_equals(match.dl_type, key.dl_type, 16):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_NW_TOS):
        if not field_equals(match.nw_tos, key.nw_tos, 8):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_NW_PROTO):
        if not field_equals(match.nw_proto, key.nw_proto, 8):
            return False
    if not _nw_field_matches(w, c.OFPFW_NW_SRC_SHIFT, match.nw_src, key.nw_src):
        return False
    if not _nw_field_matches(w, c.OFPFW_NW_DST_SHIFT, match.nw_dst, key.nw_dst):
        return False
    if not _wildcard_bit_set(w, c.OFPFW_TP_SRC):
        if not field_equals(match.tp_src, key.tp_src, 16):
            return False
    if not _wildcard_bit_set(w, c.OFPFW_TP_DST):
        if not field_equals(match.tp_dst, key.tp_dst, 16):
            return False
    return True


def _nw_field_matches(wildcards: FieldValue, shift: int,
                      entry_value: FieldValue, key_value: FieldValue) -> bool:
    """IPv4 prefix matching controlled by the 6-bit wildcard sub-field."""

    if isinstance(wildcards, int):
        bits = (wildcards >> shift) & 0x3F
        if bits >= 32:
            return True
        mask = (0xFFFFFFFF << bits) & 0xFFFFFFFF
    else:
        bits = (wildcards >> shift) & 0x3F
        if bits >= 32:          # symbolic comparison: forks
            return True
        mask = (bv(0xFFFFFFFF, 32) << bv(bits, 32)) & 0xFFFFFFFF

    entry_masked = (entry_value if not isinstance(entry_value, int) else entry_value)
    if isinstance(entry_value, int) and isinstance(key_value, int) and isinstance(mask, int):
        return (entry_value & mask) == (key_value & mask)
    entry_bits = bv(entry_value, 32) if not isinstance(entry_value, int) else bv(entry_value, 32)
    key_bits = bv(key_value, 32) if not isinstance(key_value, int) else bv(key_value, 32)
    if isinstance(mask, int):
        mask_bits = bv(mask, 32)
    else:
        mask_bits = mask
    return bool((entry_bits & mask_bits) == (key_bits & mask_bits))


def match_subsumes(general: Match, specific: Match) -> bool:
    """Every packet matched by *specific* is also matched by *general*.

    Used for non-strict MODIFY/DELETE: the Flow Mod's match acts as *general*
    and existing entries as *specific*.  Symbolic-aware (forks on demand).
    """

    checks = (
        (c.OFPFW_IN_PORT, "in_port", 16),
        (c.OFPFW_DL_SRC, "dl_src", 48),
        (c.OFPFW_DL_DST, "dl_dst", 48),
        (c.OFPFW_DL_VLAN, "dl_vlan", 16),
        (c.OFPFW_DL_VLAN_PCP, "dl_vlan_pcp", 8),
        (c.OFPFW_DL_TYPE, "dl_type", 16),
        (c.OFPFW_NW_TOS, "nw_tos", 8),
        (c.OFPFW_NW_PROTO, "nw_proto", 8),
        (c.OFPFW_TP_SRC, "tp_src", 16),
        (c.OFPFW_TP_DST, "tp_dst", 16),
    )
    for bit, name, width in checks:
        if _wildcard_bit_set(general.wildcards, bit):
            continue
        if _wildcard_bit_set(specific.wildcards, bit):
            return False
        if not field_equals(getattr(general, name), getattr(specific, name), width):
            return False
    for shift in (c.OFPFW_NW_SRC_SHIFT, c.OFPFW_NW_DST_SHIFT):
        general_bits = _prefix_bits(general.wildcards, shift)
        specific_bits = _prefix_bits(specific.wildcards, shift)
        name = "nw_src" if shift == c.OFPFW_NW_SRC_SHIFT else "nw_dst"
        if general_bits >= 32:
            continue
        if specific_bits > general_bits:
            return False
        mask = (0xFFFFFFFF << general_bits) & 0xFFFFFFFF
        general_value = getattr(general, name)
        specific_value = getattr(specific, name)
        if isinstance(general_value, int) and isinstance(specific_value, int):
            if (general_value & mask) != (specific_value & mask):
                return False
        else:
            if not ((bv(general_value, 32) & mask) == (bv(specific_value, 32) & mask)):
                return False
    return True


def _prefix_bits(wildcards: FieldValue, shift: int) -> int:
    value = (wildcards >> shift) & 0x3F
    if isinstance(value, int):
        return value
    # Symbolic prefix width: fork over "fully wildcarded or not" only.
    if value >= 32:
        return 32
    # For subsumption purposes a partially-symbolic prefix width is treated as
    # exact; the per-bit comparison below still forks where needed.
    return 0


class FlowTable:
    """An ordered collection of flow entries with OpenFlow 1.0 lookup rules."""

    def __init__(self, capacity: int = 1024, emergency_capacity: int = 64) -> None:
        self.capacity = capacity
        self.emergency_capacity = emergency_capacity
        self._entries: List[FlowEntry] = []
        self._emergency_entries: List[FlowEntry] = []
        self._insert_counter = 0

    # -- mutation ----------------------------------------------------------------

    def add(self, entry: FlowEntry) -> None:
        entry.insert_order = self._insert_counter
        self._insert_counter += 1
        target = self._emergency_entries if entry.emergency else self._entries
        target.append(entry)

    def remove(self, entry: FlowEntry) -> None:
        if entry.emergency:
            self._emergency_entries.remove(entry)
        else:
            self._entries.remove(entry)

    def clear(self) -> None:
        self._entries.clear()
        self._emergency_entries.clear()

    # -- queries -------------------------------------------------------------------

    def entries(self, include_emergency: bool = False) -> List[FlowEntry]:
        if include_emergency:
            return list(self._entries) + list(self._emergency_entries)
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries) + len(self._emergency_entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-precedence entry covering *key* (None when nothing matches)."""

        best: Optional[FlowEntry] = None
        best_priority = -1
        for entry in self._entries:
            if not match_covers_key(entry.match, key):
                continue
            if match_is_exact(entry.match):
                # Exact-match entries take precedence over any wildcarded entry.
                return entry
            priority = entry.priority if isinstance(entry.priority, int) else None
            if priority is None:
                # Symbolic priority: first matching entry wins on this path;
                # additional orderings are explored through the comparison fork.
                if best is None or bool(bv(entry.priority, 16) > bv(best.priority, 16)):
                    best, best_priority = entry, -1
                continue
            if priority > best_priority:
                best, best_priority = entry, priority
        return best

    def find_identical(self, match: Match, priority: FieldValue,
                       emergency: bool = False) -> Optional[FlowEntry]:
        """Entry with a strictly identical match and priority (strict commands)."""

        pool = self._emergency_entries if emergency else self._entries
        for entry in pool:
            if not field_equals(entry.priority, priority, 16):
                continue
            if self._matches_strictly(entry.match, match):
                return entry
        return None

    def matching_entries(self, match: Match, strict: bool,
                         priority: FieldValue = 0,
                         out_port: FieldValue = c.OFPP_NONE,
                         emergency: bool = False) -> List[FlowEntry]:
        """Entries affected by a MODIFY/DELETE command."""

        pool = self._emergency_entries if emergency else self._entries
        selected: List[FlowEntry] = []
        for entry in pool:
            if strict:
                if not field_equals(entry.priority, priority, 16):
                    continue
                if not self._matches_strictly(entry.match, match):
                    continue
            else:
                if not match_subsumes(match, entry.match):
                    continue
            if isinstance(out_port, int) and out_port == c.OFPP_NONE:
                selected.append(entry)
                continue
            if entry.outputs_to(out_port):
                selected.append(entry)
        return selected

    @staticmethod
    def _matches_strictly(a: Match, b: Match) -> bool:
        if not field_equals(a.wildcards, b.wildcards, 32):
            return False
        for name, width in (
            ("in_port", 16), ("dl_src", 48), ("dl_dst", 48), ("dl_vlan", 16),
            ("dl_vlan_pcp", 8), ("dl_type", 16), ("nw_tos", 8), ("nw_proto", 8),
            ("nw_src", 32), ("nw_dst", 32), ("tp_src", 16), ("tp_dst", 16),
        ):
            bit = {
                "in_port": c.OFPFW_IN_PORT, "dl_src": c.OFPFW_DL_SRC,
                "dl_dst": c.OFPFW_DL_DST, "dl_vlan": c.OFPFW_DL_VLAN,
                "dl_vlan_pcp": c.OFPFW_DL_VLAN_PCP, "dl_type": c.OFPFW_DL_TYPE,
                "nw_tos": c.OFPFW_NW_TOS, "nw_proto": c.OFPFW_NW_PROTO,
                "tp_src": c.OFPFW_TP_SRC, "tp_dst": c.OFPFW_TP_DST,
            }.get(name)
            if name in ("nw_src", "nw_dst"):
                # Prefix fields compare only when fully significant on both sides.
                continue
            if bit is not None and _wildcard_bit_set(a.wildcards, bit):
                continue
            if not field_equals(getattr(a, name), getattr(b, name), width):
                return False
        return True
