"""The agent ⇄ environment interface.

Agents do not talk to sockets directly; they talk to an
:class:`AgentContext`, which plays the role of the control channel plus the
data-plane interface (the Cloud9 POSIX model in the original prototype).  The
default :class:`RecordingContext` records every externally observable action
as a trace event; the harness wires it to the exploration engine's per-path
event log.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.events import (
    AgentCrashEvent,
    ControllerMessageEvent,
    DataplaneOutEvent,
    Event,
    ProbeDroppedEvent,
)
from repro.openflow.messages import OpenFlowMessage
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = ["AgentContext", "RecordingContext"]


class AgentContext:
    """Abstract interface through which an agent observes and affects the world."""

    def send_to_controller(self, message: OpenFlowMessage) -> None:
        """Transmit an OpenFlow message on the control channel."""

        raise NotImplementedError

    def output_packet(self, port: FieldValue, frame_summary: str, length: int = 0) -> None:
        """Emit a packet on a data-plane port (or a logical port such as FLOOD)."""

        raise NotImplementedError

    def crash(self, reason: str) -> None:
        """Record that the agent process terminated abnormally."""

        raise NotImplementedError


class RecordingContext(AgentContext):
    """Context that appends normalizable events to a list (or a callback)."""

    def __init__(self, sink: Optional[Callable[[Event], None]] = None) -> None:
        self.events: List[Event] = []
        self._sink = sink
        #: Index of the input currently being processed; set by the harness.
        self.current_input_index: int = -1

    # -- wiring ---------------------------------------------------------------

    def _record(self, event: Event) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def set_input_index(self, index: int) -> None:
        self.current_input_index = index

    # -- AgentContext interface -------------------------------------------------

    def send_to_controller(self, message: OpenFlowMessage) -> None:
        self._record(ControllerMessageEvent(message=message,
                                            input_index=self.current_input_index))

    def output_packet(self, port: FieldValue, frame_summary: str, length: int = 0) -> None:
        self._record(DataplaneOutEvent(port=port, frame_summary=frame_summary,
                                       length=length, input_index=self.current_input_index))

    def crash(self, reason: str) -> None:
        self._record(AgentCrashEvent(reason=reason, input_index=self.current_input_index))

    def probe_dropped(self) -> None:
        """Record that a probe produced no output (called by the harness)."""

        self._record(ProbeDroppedEvent(input_index=self.current_input_index))

    # -- queries ------------------------------------------------------------------

    def outputs_since(self, count: int) -> List[Event]:
        """Events recorded after the first *count* events (harness helper)."""

        return self.events[count:]

    def __len__(self) -> int:
        return len(self.events)
