"""Physical port inventory of the emulated switch."""

from __future__ import annotations

from typing import List, Union

from repro.openflow import constants as c
from repro.openflow.messages import PhyPort
from repro.symbex.expr import BoolExpr, BVExpr, bool_and, bv
from repro.wire.fields import FieldValue

__all__ = ["SwitchPortSet", "DEFAULT_PORT_COUNT"]

#: Default number of physical ports on the emulated switch.  The paper's
#: running example (Figure 1) models a switch with ports 1..24.
DEFAULT_PORT_COUNT = 24


class SwitchPortSet:
    """A contiguous range of physical ports ``1..count`` plus the local port."""

    def __init__(self, count: int = DEFAULT_PORT_COUNT, base_mac: int = 0x00_00_00_AA_00_00) -> None:
        if count < 1:
            raise ValueError("a switch needs at least one physical port")
        self.count = count
        self.base_mac = base_mac

    # -- membership --------------------------------------------------------------

    def contains(self, port: FieldValue) -> Union[bool, BoolExpr]:
        """Port is one of the physical ports (symbolic-aware)."""

        if isinstance(port, int):
            return 1 <= port <= self.count
        expr = bv(port, 16)
        return bool_and(expr >= 1, expr <= self.count)

    def first(self) -> int:
        return 1

    def all_ports(self) -> List[int]:
        return list(range(1, self.count + 1))

    # -- descriptions -----------------------------------------------------------

    def phy_ports(self) -> List[PhyPort]:
        """Port descriptions for FEATURES_REPLY / port stats."""

        return [
            PhyPort(
                port_no=number,
                hw_addr=self.base_mac + number,
                name="eth%d" % number,
                config=0,
                state=0,
                curr=0x0000_0082,        # 100 Mb full duplex + copper
                advertised=0x0000_0082,
                supported=0x0000_0082,
                peer=0,
            )
            for number in self.all_ports()
        ]
