"""Statistics handling of the Open vSwitch-style agent.

Unlike the reference switch, OVS answers requests it cannot serve with an
explicit error: unknown statistics types yield ``OFPBRC_BAD_STAT``, vendor
statistics yield ``OFPBRC_BAD_VENDOR`` and malformed bodies yield
``OFPBRC_BAD_LEN`` — which is precisely how the paper's tooling noticed that
the reference switch stays silent (§5.1.2).
"""

from __future__ import annotations

from repro.openflow import constants as c
from repro.openflow.messages import StatsReply
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_repr

__all__ = ["OvsStatsMixin"]


class OvsStatsMixin:
    """Mixin providing ``handle_stats_request`` for the OVS-style agent."""

    DESC_MFR = "Nicira Networks"
    DESC_HW = "Open vSwitch"
    DESC_SW = "1.0.0"

    def handle_stats_request(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_STATS_REQUEST_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        stats_type = buf.read_u16(8)
        body_len = len(buf) - c.OFP_STATS_REQUEST_LEN

        if stats_type == c.OFPST_DESC:
            self._reply_desc(header)
        elif stats_type == c.OFPST_FLOW:
            if body_len < c.OFP_FLOW_STATS_REQUEST_LEN:
                self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
                return
            self._reply_flow(buf, header, aggregate=False)
        elif stats_type == c.OFPST_AGGREGATE:
            if body_len < c.OFP_FLOW_STATS_REQUEST_LEN:
                self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
                return
            self._reply_flow(buf, header, aggregate=True)
        elif stats_type == c.OFPST_TABLE:
            self._reply_table(header)
        elif stats_type == c.OFPST_PORT:
            if body_len < c.OFP_PORT_STATS_REQUEST_LEN:
                self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
                return
            self._reply_port(buf, header)
        elif stats_type == c.OFPST_QUEUE:
            if body_len < c.OFP_QUEUE_STATS_REQUEST_LEN:
                self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
                return
            self._reply_queue(buf, header)
        elif stats_type == c.OFPST_VENDOR:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_VENDOR)
        else:
            # Unknown statistics type: report it (the reference switch stays silent).
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_STAT)

    # -- individual reply builders ---------------------------------------------

    def _reply_desc(self, header) -> None:
        summary = "desc(mfr=%s,hw=%s,sw=%s)" % (self.DESC_MFR, self.DESC_HW, self.DESC_SW)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_DESC, summary=summary))

    def _reply_flow(self, buf: SymBuffer, header, aggregate: bool) -> None:
        from repro.agents.common.flowtable import match_subsumes
        from repro.openflow.match import Match

        pattern = Match.unpack(buf, 12)
        out_port = buf.read_u16(54)
        selected = []
        for entry in self.flow_table.entries():
            if match_subsumes(pattern, entry.match):
                if out_port == c.OFPP_NONE or entry.outputs_to(out_port):
                    selected.append(entry)
        if aggregate:
            summary = "aggregate(flows=%d,packets=%d,bytes=%d)" % (
                len(selected),
                sum(e.packet_count for e in selected),
                sum(e.byte_count for e in selected),
            )
            self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_AGGREGATE, summary=summary))
            return
        rendered = ";".join(e.describe() for e in selected)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_FLOW,
                             summary="flows[%s]" % rendered))

    def _reply_table(self, header) -> None:
        summary = "table(id=0,name=classifier,active=%d,max=%d)" % (
            len(self.flow_table), self.flow_table.capacity)
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_TABLE, summary=summary))

    def _reply_port(self, buf: SymBuffer, header) -> None:
        port_no = buf.read_u16(12)
        if port_no == c.OFPP_NONE:
            summary = "ports(all=%d)" % self.ports.count
        elif self.ports.contains(port_no):
            summary = "ports(single=%s)" % field_repr(port_no)
        else:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_EPERM)
            return
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_PORT, summary=summary))

    def _reply_queue(self, buf: SymBuffer, header) -> None:
        port_no = buf.read_u16(12)
        queue_id = buf.read_u32(16)
        summary = "queues(port=%s,queue=%s,count=0)" % (field_repr(port_no), field_repr(queue_id))
        self.send(StatsReply(xid=header.xid, stats_type=c.OFPST_QUEUE, summary=summary))
