"""The Open vSwitch-style agent.

This models the externally observable behaviour of Open vSwitch 1.0.0 ("Open
vSwitch", 80K LoC of C in the paper) as reported by the paper's evaluation:

* **Strict value validation with silent message drop** — ``set_vlan_vid``
  values must fit in 12 bits, ``set_vlan_pcp`` in 3 bits, and the two ECN bits
  of ``set_nw_tos`` must be zero.  A Packet Out or Flow Mod carrying an action
  that fails these checks is silently ignored as a whole (§5.1.2 "Packet
  dropped when action is invalid", OVS side).
* **Maximum-port validation** — an output action naming a port above the
  configured maximum is rejected immediately with ``OFPBAC_BAD_OUT_PORT``.
* **in_port == out_port accepted** — such a rule is installed and matching
  packets are dropped at forwarding time.
* **Unknown buffer ids produce an error** — ``OFPBRC_BUFFER_UNKNOWN`` — but a
  Flow Mod naming one still installs its flow.
* **Unknown/vendor statistics requests produce an error** (``OFPBRC_BAD_STAT``
  / ``OFPBRC_BAD_VENDOR``).
* **``OFPP_NORMAL`` supported; emergency flow entries not supported.**
* No crash conditions: the three reference-switch crashes are handled cleanly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.agents.common.base import AgentConfig, OpenFlowAgent
from repro.agents.common.flowtable import FlowEntry
from repro.agents.ovs.stats import OvsStatsMixin
from repro.agents.registry import register_agent
from repro.openflow import constants as c
from repro.openflow.actions import (
    Action,
    ActionEnqueue,
    ActionOutput,
    ActionSetNwTos,
    ActionSetVlanPcp,
    ActionSetVlanVid,
    RawAction,
)
from repro.openflow.match import Match
from repro.packetlib.flowkey import FlowKey, extract_flow_key
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_equals

__all__ = ["OpenVSwitchAgent"]


@register_agent(
    description="Open vSwitch 1.0.0 behaviour: strict validation, silent drops.",
    vendor="Open vSwitch 1.0.0 (80K LoC of C in the paper)",
    tags=("paper", "table1"),
)
class OpenVSwitchAgent(OvsStatsMixin, OpenFlowAgent):
    """Open vSwitch 1.0.0 behavioural model."""

    NAME = "ovs"

    #: The "configurable maximum" port number accepted in output actions.
    MAX_OUTPUT_PORT = 255

    # ------------------------------------------------------------------
    # Header validation
    # ------------------------------------------------------------------

    def validate_header(self, header, buf: SymBuffer) -> bool:
        """OVS insists that the length field matches the received byte count."""

        if header.length != len(buf):
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return False
        return True

    def handle_unexpected_type(self, buf: SymBuffer, header) -> None:
        """Switch-to-controller types are logged and dropped without an error."""

    # ------------------------------------------------------------------
    # SET_CONFIG
    # ------------------------------------------------------------------

    def handle_set_config(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_SWITCH_CONFIG_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        flags = buf.read_u16(8)
        miss_send_len = buf.read_u16(10)
        self.frag_flags = flags & c.OFPC_FRAG_MASK
        self.miss_send_len = miss_send_len

    # ------------------------------------------------------------------
    # Action validation (strict, OVS style)
    # ------------------------------------------------------------------

    _SILENT_DROP = "silent_drop"
    _ERROR_SENT = "error_sent"

    def _validate_actions(self, actions: List[Action], xid: FieldValue,
                          for_flow_mod: bool) -> Optional[str]:
        """Validate an action list; returns None when everything is acceptable.

        Returns ``_ERROR_SENT`` when an OpenFlow error was emitted and
        ``_SILENT_DROP`` when the message must be ignored without any error
        (the strict value checks).
        """

        for action in actions:
            if isinstance(action, ActionOutput) or isinstance(action, ActionEnqueue):
                outcome = self._validate_output_port(action.port, xid)
                if outcome is not None:
                    return outcome
            elif isinstance(action, ActionSetVlanVid):
                if action.vlan_vid > 0x0FFF:
                    return self._SILENT_DROP
            elif isinstance(action, ActionSetVlanPcp):
                if action.vlan_pcp > 0x07:
                    return self._SILENT_DROP
            elif isinstance(action, ActionSetNwTos):
                if (action.nw_tos & 0x03) != 0:
                    return self._SILENT_DROP
            elif isinstance(action, RawAction):
                outcome = self._validate_raw_action(action, xid)
                if outcome is not None:
                    return outcome
        return None

    def _validate_raw_action(self, action: RawAction, xid: FieldValue) -> Optional[str]:
        kind = action.action_type
        if kind == c.OFPAT_OUTPUT:
            return self._validate_output_port(action.arg16_a, xid)
        if kind == c.OFPAT_SET_VLAN_VID:
            if action.arg16_a > 0x0FFF:
                return self._SILENT_DROP
            return None
        if kind == c.OFPAT_SET_VLAN_PCP:
            if action.arg16_a > 0x07:
                return self._SILENT_DROP
            return None
        if kind == c.OFPAT_STRIP_VLAN:
            return None
        if kind == c.OFPAT_SET_DL_SRC or kind == c.OFPAT_SET_DL_DST:
            return None
        if kind == c.OFPAT_SET_NW_SRC or kind == c.OFPAT_SET_NW_DST:
            return None
        if kind == c.OFPAT_SET_NW_TOS:
            if (action.arg16_a & 0x03) != 0:
                return self._SILENT_DROP
            return None
        if kind == c.OFPAT_SET_TP_SRC or kind == c.OFPAT_SET_TP_DST:
            return None
        if kind == c.OFPAT_ENQUEUE:
            outcome = self._validate_output_port(action.arg16_a, xid)
            if outcome is not None:
                return outcome
            return None
        if kind == c.OFPAT_VENDOR:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_VENDOR)
            return self._ERROR_SENT
        self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_TYPE)
        return self._ERROR_SENT

    def _validate_output_port(self, port: FieldValue, xid: FieldValue) -> Optional[str]:
        """OVS port validation: reserved ports are fine, 0 and too-large are not."""

        if port == 0:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return self._ERROR_SENT
        if port == c.OFPP_NONE:
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return self._ERROR_SENT
        if port >= c.OFPP_MAX:
            # The reserved range (IN_PORT, TABLE, NORMAL, FLOOD, ALL,
            # CONTROLLER, LOCAL) is accepted.
            return None
        if port > self.MAX_OUTPUT_PORT:
            # Output port greater than the configurable maximum: rejected now.
            self.send_error(xid, c.OFPET_BAD_ACTION, c.OFPBAC_BAD_OUT_PORT)
            return self._ERROR_SENT
        return None

    # ------------------------------------------------------------------
    # PACKET_OUT
    # ------------------------------------------------------------------

    def handle_packet_out(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_PACKET_OUT_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        buffer_id, in_port, actions, data = self.parse_packet_out_fields(buf)

        # OVS order: actions are validated before the buffer id is resolved.
        outcome = self._validate_actions(actions, header.xid, for_flow_mod=False)
        if outcome is not None:
            return

        frame = data
        if buffer_id != c.OFP_NO_BUFFER:
            buffered = self.buffer_pool.find(buffer_id)
            if buffered is None:
                self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BUFFER_UNKNOWN)
                return
            frame = buffered

        if len(frame) < 14:
            return

        key = extract_flow_key(frame, in_port)
        self._in_packet_out = True
        try:
            self._execute_actions_with_raw(actions, key, in_port, frame)
        finally:
            self._in_packet_out = False

    def _execute_actions_with_raw(self, actions: List[Action], key: FlowKey,
                                  in_port: FieldValue, frame: SymBuffer) -> bool:
        produced = False
        for action in actions:
            if isinstance(action, RawAction):
                produced = self._execute_raw_action(action, key, in_port, frame) or produced
            else:
                produced = self.apply_actions([action], key, in_port, frame) or produced
        return produced

    def _execute_raw_action(self, action: RawAction, key: FlowKey,
                            in_port: FieldValue, frame: SymBuffer) -> bool:
        kind = action.action_type
        if kind == c.OFPAT_OUTPUT:
            return self.execute_output(action.arg16_a, action.arg16_b, key, in_port, frame)
        if kind == c.OFPAT_SET_VLAN_VID:
            key.dl_vlan = action.arg16_a
            return False
        if kind == c.OFPAT_SET_VLAN_PCP:
            key.dl_vlan_pcp = action.arg16_a
            return False
        if kind == c.OFPAT_STRIP_VLAN:
            key.dl_vlan = c.OFP_VLAN_NONE
            key.dl_vlan_pcp = 0
            return False
        if kind == c.OFPAT_SET_NW_TOS:
            key.nw_tos = action.arg16_a
            return False
        if kind == c.OFPAT_SET_TP_SRC:
            key.tp_src = action.arg16_a
            return False
        if kind == c.OFPAT_SET_TP_DST:
            key.tp_dst = action.arg16_a
            return False
        if kind == c.OFPAT_ENQUEUE:
            return self.execute_output(action.arg16_a, 0, key, in_port, frame)
        return False

    def execute_raw_action(self, action: Action, key: FlowKey,
                           in_port: FieldValue, frame: SymBuffer) -> bool:
        if isinstance(action, RawAction):
            return self._execute_raw_action(action, key, in_port, frame)
        return False

    # ------------------------------------------------------------------
    # Forwarding behaviour differences
    # ------------------------------------------------------------------

    def execute_output(self, port: FieldValue, max_len: FieldValue, key: FlowKey,
                       in_port: FieldValue, frame: SymBuffer) -> bool:
        # OVS never forwards a packet back out of its ingress port unless the
        # rule explicitly uses OFPP_IN_PORT; rules that name the ingress port
        # are accepted at installation time and simply drop here.
        if isinstance(port, int) and port < c.OFPP_MAX or not isinstance(port, int):
            if port != c.OFPP_IN_PORT and field_equals(port, in_port, 16):
                return False
        return super().execute_output(port, max_len, key, in_port, frame)

    def execute_normal_output(self, key: FlowKey, in_port: FieldValue,
                              frame: SymBuffer) -> bool:
        """OVS bridges the packet through its traditional L2 path."""

        self.output_packet("NORMAL", key.describe(), len(frame))
        return True

    # ------------------------------------------------------------------
    # FLOW_MOD
    # ------------------------------------------------------------------

    def handle_flow_mod(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_FLOW_MOD_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        (match, cookie, command, idle_timeout, hard_timeout, priority,
         buffer_id, out_port, flags, actions) = self.parse_flow_mod_fields(buf)

        outcome = self._validate_actions(actions, header.xid, for_flow_mod=True)
        if outcome is not None:
            return

        if (flags & c.OFPFF_EMERG) != 0:
            # Open vSwitch 1.0.0 does not implement emergency flow entries.
            self.send_error(header.xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_UNSUPPORTED)
            return

        if command == c.OFPFC_ADD:
            self._flow_add(match, priority, actions, cookie, idle_timeout,
                           hard_timeout, flags, buffer_id, header.xid)
        elif command == c.OFPFC_MODIFY:
            self._flow_modify(match, priority, actions, cookie, flags, buffer_id,
                              header.xid, strict=False)
        elif command == c.OFPFC_MODIFY_STRICT:
            self._flow_modify(match, priority, actions, cookie, flags, buffer_id,
                              header.xid, strict=True)
        elif command == c.OFPFC_DELETE:
            self._flow_delete(match, priority, out_port, strict=False)
        elif command == c.OFPFC_DELETE_STRICT:
            self._flow_delete(match, priority, out_port, strict=True)
        else:
            self.send_error(header.xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_BAD_COMMAND)

    def _flow_add(self, match: Match, priority: FieldValue, actions: List[Action],
                  cookie: FieldValue, idle_timeout: FieldValue, hard_timeout: FieldValue,
                  flags: FieldValue, buffer_id: FieldValue, xid: FieldValue) -> None:
        if (flags & c.OFPFF_CHECK_OVERLAP) != 0:
            if self._has_overlap(match, priority):
                self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_OVERLAP)
                return
        if self.flow_table.is_full:
            self.send_error(xid, c.OFPET_FLOW_MOD_FAILED, c.OFPFMFC_ALL_TABLES_FULL)
            return
        entry = FlowEntry(match=match, priority=priority, actions=list(actions),
                          cookie=cookie, idle_timeout=idle_timeout,
                          hard_timeout=hard_timeout, flags=flags, emergency=False)
        self.flow_table.add(entry)
        # Unlike the reference switch, an unknown buffer id is reported — but
        # only after the flow has been installed.
        self._apply_to_buffered_packet(buffer_id, actions, xid)

    def _has_overlap(self, match: Match, priority: FieldValue) -> bool:
        from repro.agents.common.flowtable import match_subsumes

        for entry in self.flow_table.entries():
            if not (entry.priority == priority):
                continue
            if match_subsumes(match, entry.match) or match_subsumes(entry.match, match):
                return True
        return False

    def _flow_modify(self, match: Match, priority: FieldValue, actions: List[Action],
                     cookie: FieldValue, flags: FieldValue, buffer_id: FieldValue,
                     xid: FieldValue, strict: bool) -> None:
        targets = self.flow_table.matching_entries(match, strict=strict, priority=priority)
        if not targets:
            self._flow_add(match, priority, actions, cookie, 0, 0, flags, buffer_id, xid)
            return
        for entry in targets:
            entry.actions = list(actions)
            entry.cookie = cookie
        self._apply_to_buffered_packet(buffer_id, actions, xid)

    def _flow_delete(self, match: Match, priority: FieldValue,
                     out_port: FieldValue, strict: bool) -> None:
        targets = self.flow_table.matching_entries(match, strict=strict,
                                                   priority=priority, out_port=out_port)
        for entry in targets:
            self.flow_table.remove(entry)
            if (entry.flags & c.OFPFF_SEND_FLOW_REM) != 0:
                from repro.openflow.messages import FlowRemoved

                self.send(FlowRemoved(match=entry.match, cookie=entry.cookie,
                                      priority=entry.priority, reason=c.OFPRR_DELETE))

    def _apply_to_buffered_packet(self, buffer_id: FieldValue, actions: List[Action],
                                  xid: FieldValue) -> None:
        if buffer_id == c.OFP_NO_BUFFER:
            return
        frame = self.buffer_pool.find(buffer_id)
        if frame is None:
            # The flow stays installed; the controller is told about the buffer.
            self.send_error(xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BUFFER_UNKNOWN)
            return
        key = extract_flow_key(frame, 0)
        self._execute_actions_with_raw(actions, key, 0, frame)

    # ------------------------------------------------------------------
    # QUEUE_GET_CONFIG_REQUEST
    # ------------------------------------------------------------------

    def handle_queue_get_config_request(self, buf: SymBuffer, header) -> None:
        if len(buf) < c.OFP_QUEUE_GET_CONFIG_REQUEST_LEN:
            self.send_error(header.xid, c.OFPET_BAD_REQUEST, c.OFPBRC_BAD_LEN)
            return
        port = buf.read_u16(8)
        if port == 0:
            self.send_error(header.xid, c.OFPET_QUEUE_OP_FAILED, c.OFPQOFC_BAD_PORT)
            return
        if self.ports.contains(port):
            from repro.openflow.messages import QueueGetConfigReply

            self.send(QueueGetConfigReply(xid=header.xid, port=port, queues=[]))
            return
        self.send_error(header.xid, c.OFPET_QUEUE_OP_FAILED, c.OFPQOFC_BAD_PORT)
