"""The Open vSwitch 1.0.0-style agent."""

from repro.agents.ovs.agent import OpenVSwitchAgent

__all__ = ["OpenVSwitchAgent"]
