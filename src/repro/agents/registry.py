"""The agent registry.

Agent implementations register themselves with the :func:`register_agent`
class decorator, carrying per-agent metadata (a one-line description, the
modelled vendor/code base, free-form tags).  Everything else in the code base
— the CLI, the campaign runner, the baselines — resolves agents through this
registry, so adding a fourth implementation is a single decorated class with
no central list to edit.

``AGENT_REGISTRY`` (name -> agent class) is kept as the backward-compatible
view the pre-registry code exposed; it is the *live* dict, updated as
decorators run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.errors import AgentRegistrationError, UnknownAgentError

__all__ = [
    "AgentInfo",
    "AGENT_REGISTRY",
    "register_agent",
    "agent_registry",
    "agent_info",
    "registered_agent_names",
    "make_agent",
    "first_doc_line",
]


def first_doc_line(obj: object) -> str:
    """First non-empty docstring line of *obj*, or ``""``.

    Safe on classes with empty or missing docstrings (a plain
    ``doc.strip().splitlines()[0]`` raises ``IndexError`` on ``""``).
    """

    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        line = line.strip()
        if line:
            return line
    return ""


@dataclass(frozen=True)
class AgentInfo:
    """Registration record of one agent implementation."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    vendor: str = ""
    tags: Tuple[str, ...] = ()
    #: Symbex-compatibility lint findings recorded at registration time
    #: (``"path:line: message"`` strings); non-empty means the symbolic
    #: engine may not be able to model this agent faithfully.
    lint_findings: Tuple[str, ...] = field(default=())

    def summary_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "vendor": self.vendor,
            "tags": list(self.tags),
            "lint_findings": list(self.lint_findings),
        }


#: Live name -> agent class mapping (the historical public view).
AGENT_REGISTRY: Dict[str, Type] = {}

_INFO: Dict[str, AgentInfo] = {}


def register_agent(name: Optional[str] = None, *, description: Optional[str] = None,
                   vendor: str = "", tags: Tuple[str, ...] = (),
                   replace: bool = False, validate: bool = True,
                   strict: bool = False) -> Callable[[Type], Type]:
    """Class decorator registering an agent implementation.

    ``name`` defaults to the class's ``NAME`` attribute; ``description``
    defaults to the first docstring line.  Names are unique: re-registering
    an existing name is rejected unless ``replace=True`` (the knob tests use
    to install instrumented stand-ins).

    With ``validate=True`` (the default) the registration is checked: the
    description must be non-empty, the class must define
    ``handle_control_buffer``, and the class source is run through the
    symbex-compatibility lint.  Lint findings are recorded on
    :attr:`AgentInfo.lint_findings` (and surfaced by ``soft list-agents``);
    with ``strict=True`` they reject the registration outright.
    ``validate=False`` is the escape hatch for deliberately degenerate test
    stubs.
    """

    def decorate(cls: Type) -> Type:
        agent_name = name or getattr(cls, "NAME", None)
        if not agent_name:
            raise AgentRegistrationError(
                "agent class %r has no NAME attribute and no explicit "
                "register_agent(name=...)" % (cls,))
        resolved_description = (description if description is not None
                                else first_doc_line(cls))
        findings: Tuple[str, ...] = ()
        if validate:
            if agent_name in _INFO and not replace:
                raise AgentRegistrationError(
                    "agent %r is already registered (pass replace=True to "
                    "override it)" % agent_name)
            if not resolved_description.strip():
                raise AgentRegistrationError(
                    "agent %r has no description: pass description=... or "
                    "give the class a docstring" % agent_name)
            if not callable(getattr(cls, "handle_control_buffer", None)):
                raise AgentRegistrationError(
                    "agent %r does not define handle_control_buffer(); the "
                    "harness cannot drive it" % agent_name)
            # Imported lazily: the analysis package is optional at import
            # time and itself imports nothing from repro.agents.
            from repro.analysis.lint import lint_class

            findings = tuple(
                "%s:%d: %s" % (f.path, f.line, f.message)
                for f in lint_class(cls) if not f.suppressed)
            if strict and findings:
                raise AgentRegistrationError(
                    "agent %r fails the symbex-compatibility lint:\n  %s"
                    % (agent_name, "\n  ".join(findings)))
        info = AgentInfo(
            name=agent_name,
            factory=cls,
            description=resolved_description,
            vendor=vendor,
            tags=tuple(tags),
            lint_findings=findings,
        )
        _INFO[agent_name] = info
        AGENT_REGISTRY[agent_name] = cls
        return cls

    return decorate


def agent_registry() -> Dict[str, AgentInfo]:
    """A snapshot of the registry metadata, keyed by agent name."""

    return dict(_INFO)


def agent_info(name: str) -> AgentInfo:
    """Metadata for one registered agent."""

    try:
        return _INFO[name]
    except KeyError:
        raise UnknownAgentError("unknown agent %r; known agents: %s"
                                % (name, sorted(_INFO)))


def registered_agent_names() -> List[str]:
    """Sorted names of every registered agent."""

    return sorted(_INFO)


def make_agent(name: str, **kwargs):
    """Instantiate a registered agent by name (``reference``/``ovs``/``modified``)."""

    try:
        info = _INFO[name]
    except KeyError:
        raise UnknownAgentError("unknown agent %r; known agents: %s"
                                % (name, sorted(_INFO)))
    return info.factory(**kwargs)
