"""The agent registry.

Agent implementations register themselves with the :func:`register_agent`
class decorator, carrying per-agent metadata (a one-line description, the
modelled vendor/code base, free-form tags).  Everything else in the code base
— the CLI, the campaign runner, the baselines — resolves agents through this
registry, so adding a fourth implementation is a single decorated class with
no central list to edit.

``AGENT_REGISTRY`` (name -> agent class) is kept as the backward-compatible
view the pre-registry code exposed; it is the *live* dict, updated as
decorators run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "AgentInfo",
    "AGENT_REGISTRY",
    "register_agent",
    "agent_registry",
    "agent_info",
    "registered_agent_names",
    "make_agent",
    "first_doc_line",
]


def first_doc_line(obj: object) -> str:
    """First non-empty docstring line of *obj*, or ``""``.

    Safe on classes with empty or missing docstrings (a plain
    ``doc.strip().splitlines()[0]`` raises ``IndexError`` on ``""``).
    """

    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        line = line.strip()
        if line:
            return line
    return ""


@dataclass(frozen=True)
class AgentInfo:
    """Registration record of one agent implementation."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    vendor: str = ""
    tags: Tuple[str, ...] = ()

    def summary_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "vendor": self.vendor,
            "tags": list(self.tags),
        }


#: Live name -> agent class mapping (the historical public view).
AGENT_REGISTRY: Dict[str, Type] = {}

_INFO: Dict[str, AgentInfo] = {}


def register_agent(name: Optional[str] = None, *, description: Optional[str] = None,
                   vendor: str = "", tags: Tuple[str, ...] = ()) -> Callable[[Type], Type]:
    """Class decorator registering an agent implementation.

    ``name`` defaults to the class's ``NAME`` attribute; ``description``
    defaults to the first docstring line.  Registering a second agent under an
    existing name replaces the previous entry (deliberate, so tests can
    install instrumented stand-ins).
    """

    def decorate(cls: Type) -> Type:
        agent_name = name or getattr(cls, "NAME", None)
        if not agent_name:
            raise ValueError(
                "agent class %r has no NAME attribute and no explicit "
                "register_agent(name=...)" % (cls,))
        info = AgentInfo(
            name=agent_name,
            factory=cls,
            description=description if description is not None else first_doc_line(cls),
            vendor=vendor,
            tags=tuple(tags),
        )
        _INFO[agent_name] = info
        AGENT_REGISTRY[agent_name] = cls
        return cls

    return decorate


def agent_registry() -> Dict[str, AgentInfo]:
    """A snapshot of the registry metadata, keyed by agent name."""

    return dict(_INFO)


def agent_info(name: str) -> AgentInfo:
    """Metadata for one registered agent."""

    try:
        return _INFO[name]
    except KeyError:
        raise KeyError("unknown agent %r; known agents: %s" % (name, sorted(_INFO)))


def registered_agent_names() -> List[str]:
    """Sorted names of every registered agent."""

    return sorted(_INFO)


def make_agent(name: str, **kwargs):
    """Instantiate a registered agent by name (``reference``/``ovs``/``modified``)."""

    try:
        info = _INFO[name]
    except KeyError:
        raise KeyError("unknown agent %r; known agents: %s" % (name, sorted(_INFO)))
    return info.factory(**kwargs)
