"""The budgeted hybrid hunt scheduler: fuzz / concolic / symbex / replay.

One :class:`HybridHunt` crosschecks one agent pair on one test specification
under a global wall-clock budget, interleaving four stages in short slices:

``fuzz``
    Draw random assignments of the test's symbolic variables, materialize
    them to wire buffers and replay both agents concretely.  Cheap breadth;
    inputs with novel coverage fingerprints are admitted to the seed pool.
``concolic``
    Take the pool's most promising seed, replay it *symbolically* to recover
    its path condition (:mod:`repro.symbex.concolic`), and solve negations of
    unflipped branches into directed new inputs — the inputs random draws
    essentially never hit (a 16-bit constant match is a 2^-16 lottery ticket).
``symbex``
    Classic SOFT exploration, sliced: each slice resumes the engine from the
    frontier the previous slice handed back (``ExplorationResult.resume``),
    then crosschecks the accumulated path groups of the two agents; solver
    models of fresh inconsistencies become seeds too.
``replay``
    Replay stored corpus witnesses (historical divergences) against the
    current agents and feed their minimized assignments into the pool, so a
    hunt starts from everything previous campaigns learned.

After every slice the scheduler re-scores each stage by **marginal value per
second** — new coverage units plus (heavily weighted) new witness clusters,
divided by the stage's cumulative runtime — and the next slice goes to the
highest scorer.  Stages that stall decay naturally; a stage that keeps
finding divergences keeps the clock.  Every divergence found by *any* stage
flows through the one witness pipeline: concrete replay confirmation →
delta-minimization → :class:`TriageIndex` clustering → optional
:class:`WitnessCorpus` persistence.

The clock is injectable (``clock=``) and every stage does a bounded amount
of work per slice, so the scheduler is fully deterministic under a fake
clock — which is how the slice-accounting tests pin its behaviour down.
"""

from __future__ import annotations

import importlib.util
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import (
    AgentExplorationReport,
    AgentSpec,
    _outcome_from_record,
    _resolve_agent_factory,
)
from repro.core.grouping import group_paths
from repro.core.testcase import (
    ConcreteTestCase,
    ReplayOutcome,
    build_testcase,
    replay_testcase,
)
from repro.core.tests_catalog import TestSpec, get_test
from repro.core.witness import (
    DivergenceSignature,
    TriageIndex,
    TriageReport,
    Witness,
    build_witness,
    minimize_witness,
)
from repro.coverage.tracker import CoverageTracker
from repro.errors import ArtifactError, CampaignError, CorpusError
from repro.harness.driver import TestDriver, run_concrete_sequence
from repro.hybrid.seeds import Seed, SeedPool
from repro.symbex.concolic import ConcolicExecutor
from repro.symbex.engine import Engine, EngineConfig, ExplorationResult
from repro.symbex.expr import reset_branch_hook, set_branch_hook
from repro.symbex.compile import evaluate_compiled_bool
from repro.symbex.solver import Solver, SolverConfig
from repro.symbex.state import PathState

__all__ = ["HybridConfig", "HybridHunt", "HybridStats", "StageStats",
           "HuntReport", "discover_symbols"]

#: The full stage roster, in bootstrap order.
ALL_STAGES = ("fuzz", "concolic", "symbex", "replay")


@dataclass
class HybridConfig:
    """Knobs of one hybrid hunt."""

    #: Global wall-clock budget in seconds.
    budget: float = 10.0
    #: Target length of one scheduler slice in seconds.
    slice_time: float = 0.5
    #: RNG seed: one seed reproduces the whole hunt (fuzz draws included).
    seed: int = 0
    #: Which stages run; subsets give the pure baselines ("fuzz",)/("symbex",).
    stages: Tuple[str, ...] = ALL_STAGES
    #: Random assignments drawn per fuzz slice.
    fuzz_per_slice: int = 12
    #: Branch flips solved per concolic slice.
    flips_per_slice: int = 6
    #: Corpus bundles / pending seeds replayed per replay slice.
    replays_per_slice: int = 8
    #: Crosscheck pair cap per symbex slice (None = unlimited).
    max_pairs_per_slice: Optional[int] = 512
    #: Weight of one new witness cluster vs one new coverage unit when
    #: re-allocating slices (divergences are the point of the exercise).
    divergence_weight: float = 200.0
    #: Weight of one *statically known* decision-map branch site reached for
    #: the first time.  Sites come from :mod:`repro.analysis.decision_map`;
    #: a stage that keeps turning uncovered static sites into covered ones
    #: keeps the clock even when raw line/arc novelty stalls.
    target_site_weight: float = 25.0
    #: Mix decision-map mined constants into fuzz draws: with probability
    #: :attr:`interesting_prob` per field, draw a compared constant (masked
    #: to the field width) instead of a uniform value.  Off by default so
    #: pure-fuzz baselines stay the paper's uninformed random search.
    mined_constants: bool = False
    interesting_prob: float = 0.25
    #: Delta-minimize the first witness of each new signature.
    minimize: bool = True
    minimize_budget: int = 24
    #: Persist confirmed clusters into this corpus directory (also the
    #: directory the replay stage loads historical witnesses from).
    corpus_dir: Optional[str] = None
    #: Packages the coverage fingerprints are computed over; None derives
    #: ``repro.agents.common`` + the per-agent packages when they exist.
    coverage_packages: Optional[Sequence[str]] = None
    #: Symbolic engine limits for the symbex stage.
    engine_config: Optional[EngineConfig] = None
    solver_config: Optional[SolverConfig] = None
    #: Hard cap on scheduler slices (safety net for frozen clocks).
    max_slices: Optional[int] = None


@dataclass
class StageStats:
    """Per-stage accounting the scheduler re-allocates by."""

    name: str
    slices: int = 0
    time_spent: float = 0.0
    #: Concrete inputs replayed / paths explored / flips solved, per stage kind.
    inputs_run: int = 0
    divergences: int = 0
    new_clusters: int = 0
    new_coverage_units: int = 0
    #: Static decision-map branch sites this stage reached first.
    new_target_sites: int = 0
    seeds_added: int = 0

    def value(self, divergence_weight: float,
              target_site_weight: float = 0.0) -> float:
        return (self.new_coverage_units
                + divergence_weight * self.new_clusters
                + target_site_weight * self.new_target_sites)

    def rate(self, divergence_weight: float,
             target_site_weight: float = 0.0) -> float:
        """Marginal value per second; optimistic (inf-like) before first run."""

        if not self.slices:
            return float("inf")
        return (self.value(divergence_weight, target_site_weight)
                / max(self.time_spent, 1e-9))

    def as_dict(self) -> Dict[str, object]:
        spent = max(self.time_spent, 1e-9)
        return {
            "slices": self.slices,
            "time_spent": self.time_spent,
            "inputs_run": self.inputs_run,
            "divergences": self.divergences,
            "new_clusters": self.new_clusters,
            "new_coverage_units": self.new_coverage_units,
            "new_target_sites": self.new_target_sites,
            "seeds_added": self.seeds_added,
            "coverage_per_sec": self.new_coverage_units / spent,
            "divergences_per_sec": self.divergences / spent,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "StageStats":
        """Rebuild from :meth:`as_dict` output (derived rates are recomputed)."""

        return cls(
            name=name,
            slices=int(data.get("slices", 0)),
            time_spent=float(data.get("time_spent", 0.0)),
            inputs_run=int(data.get("inputs_run", 0)),
            divergences=int(data.get("divergences", 0)),
            new_clusters=int(data.get("new_clusters", 0)),
            new_coverage_units=int(data.get("new_coverage_units", 0)),
            new_target_sites=int(data.get("new_target_sites", 0)),
            seeds_added=int(data.get("seeds_added", 0)),
        )


@dataclass
class HybridStats:
    """Scheduler-level accounting of one hunt."""

    budget: float
    wall_time: float = 0.0
    slices: int = 0
    stages: Dict[str, StageStats] = field(default_factory=dict)
    seed_pool: Dict[str, object] = field(default_factory=dict)
    concolic: Dict[str, float] = field(default_factory=dict)
    #: Decision-map target accounting: static site total vs sites reached.
    targets: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "wall_time": self.wall_time,
            "slices": self.slices,
            "stages": {name: stats.as_dict() for name, stats in self.stages.items()},
            "seed_pool": self.seed_pool,
            "concolic": self.concolic,
            "targets": self.targets,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HybridStats":
        """Rebuild from :meth:`as_dict` output (campaign checkpoint restore)."""

        return cls(
            budget=float(data.get("budget", 0.0)),
            wall_time=float(data.get("wall_time", 0.0)),
            slices=int(data.get("slices", 0)),
            stages={str(name): StageStats.from_dict(str(name), stage)
                    for name, stage in dict(data.get("stages", {})).items()},
            seed_pool=dict(data.get("seed_pool", {})),
            concolic={str(k): float(v)
                      for k, v in dict(data.get("concolic", {})).items()},
            targets={str(k): int(v)
                     for k, v in dict(data.get("targets", {})).items()},
        )


@dataclass
class HuntReport:
    """Everything one hybrid hunt produced."""

    test_key: str
    agent_a: str
    agent_b: str
    stats: HybridStats
    triage: TriageReport
    witnesses: List[Witness] = field(default_factory=list)
    coverage: Optional[Dict[str, float]] = None
    corpus_saved: int = 0

    @property
    def cluster_count(self) -> int:
        return self.triage.cluster_count

    @property
    def confirmed_witnesses(self) -> int:
        return sum(1 for w in self.witnesses if w.confirmed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "soft/hunt-report/v1",
            "test": self.test_key,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "clusters": self.cluster_count,
            "witnesses": len(self.witnesses),
            "confirmed_witnesses": self.confirmed_witnesses,
            "corpus_saved": self.corpus_saved,
            "coverage": self.coverage,
            "stats": self.stats.as_dict(),
            "triage": self.triage.to_dict(),
        }

    def describe(self) -> str:
        lines = [
            "hybrid hunt: %s vs %s on %r" % (self.agent_a, self.agent_b, self.test_key),
            "  budget %.2fs, ran %.2fs in %d slices"
            % (self.stats.budget, self.stats.wall_time, self.stats.slices),
            "  %d witnesses -> %d clusters (%d confirmed witnesses)"
            % (len(self.witnesses), self.cluster_count, self.confirmed_witnesses),
        ]
        for name, stage in self.stats.stages.items():
            lines.append(
                "  stage %-8s %3d slices %6.2fs  %4d runs  %3d divergences"
                "  %4d new cov units" % (name, stage.slices, stage.time_spent,
                                         stage.inputs_run, stage.divergences,
                                         stage.new_coverage_units))
        if self.corpus_saved:
            lines.append("  %d bundle(s) saved to corpus" % self.corpus_saved)
        return "\n".join(lines)


def discover_symbols(spec: TestSpec) -> Dict[str, int]:
    """Name → width of every symbolic variable the spec's inputs create.

    Builds each input once on a throwaway state, deciding any symbolic
    branches concretely (zero-filled), without dispatching to an agent.
    """

    state = PathState(path_id=-1)
    previous = set_branch_hook(lambda cond: evaluate_compiled_bool(cond, {}, default=0))
    try:
        for test_input in spec.inputs:
            test_input.build(state)
    finally:
        reset_branch_hook(previous)
    return dict(state.symbols)


def _coverage_tracker(packages: Sequence[str]) -> Optional[CoverageTracker]:
    """Build a tracker over the importable subset of *packages* (or None)."""

    importable = [name for name in packages
                  if importlib.util.find_spec(name) is not None]
    if not importable:
        return None
    return CoverageTracker(packages=importable)


class HybridHunt:
    """One budgeted hybrid crosscheck of an agent pair on a test spec."""

    def __init__(self, test: Union[str, TestSpec], agent_a: AgentSpec,
                 agent_b: AgentSpec, config: Optional[HybridConfig] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.spec = get_test(test) if isinstance(test, str) else test
        self.config = config if config is not None else HybridConfig()
        self.clock = clock
        for stage in self.config.stages:
            if stage not in ALL_STAGES:
                raise CampaignError("unknown hunt stage %r (available: %s)"
                                    % (stage, ", ".join(ALL_STAGES)))
        self.agent_a, self._factory_a = _resolve_agent_factory(agent_a)
        self.agent_b, self._factory_b = _resolve_agent_factory(agent_b)
        self.rng = random.Random(self.config.seed)
        self.pool = SeedPool()
        self.triage = TriageIndex()
        self.witnesses: List[Witness] = []
        self._signatures_seen: set = set()
        self._symbols = discover_symbols(self.spec)

        packages = self.config.coverage_packages
        if packages is None:
            packages = ["repro.agents.common",
                        "repro.agents.%s" % self.agent_a,
                        "repro.agents.%s" % self.agent_b]
        self.tracker = _coverage_tracker(packages)
        self._probe_tracker = (_coverage_tracker(packages)
                               if self.tracker is not None else None)
        self._covered_units = 0

        # Static decision map over the same packages: its sites are the
        # hunt's explicit targets, and its mined constants optionally feed
        # the fuzz stage's interesting-value pool.
        self._target_sites: set = set()
        self._targets_covered: set = set()
        self._interesting: List[int] = []
        if self.tracker is not None:
            from repro.analysis.decision_map import build_decision_map

            decision_map = build_decision_map(packages)
            self._target_sites = decision_map.site_keys()
            if self.config.mined_constants:
                self._interesting = decision_map.interesting_values()

        solver_config = self.config.solver_config or SolverConfig()
        engine_config = self.config.engine_config or EngineConfig()
        self._engine_config = engine_config
        self._engines = {
            self.agent_a: Engine(solver=Solver(solver_config), config=engine_config),
            self.agent_b: Engine(solver=Solver(solver_config), config=engine_config),
        }
        self._programs = {
            self.agent_a: TestDriver(self._factory_a, self.spec.inputs).program,
            self.agent_b: TestDriver(self._factory_b, self.spec.inputs).program,
        }
        self._symbex_results: Dict[str, Optional[ExplorationResult]] = {
            self.agent_a: None, self.agent_b: None}
        self._crosscheck_solver = Solver(solver_config)
        self._reported_examples: set = set()
        self._executors = {
            name: ConcolicExecutor(solver=Solver(solver_config))
            for name in (self.agent_a, self.agent_b)
        }
        self._concolic_turn = 0
        self._corpus_loaded = False
        self._pending_replay: List[Tuple[Dict[str, int], str]] = []

        def _replay_factory(name: str):
            if name == self.agent_a:
                return self._factory_a()
            if name == self.agent_b:
                return self._factory_b()
            raise CampaignError("hunt replayer asked for unknown agent %r" % name)

        self._replay_factory = _replay_factory

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def run(self) -> HuntReport:
        config = self.config
        started = self.clock()
        deadline = started + config.budget
        stats = HybridStats(budget=config.budget)
        stages = {name: StageStats(name=name) for name in config.stages}
        stats.stages = stages
        runners = {
            "fuzz": self._run_fuzz_slice,
            "concolic": self._run_concolic_slice,
            "symbex": self._run_symbex_slice,
            "replay": self._run_replay_slice,
        }

        while True:
            now = self.clock()
            if now >= deadline:
                break
            if config.max_slices is not None and stats.slices >= config.max_slices:
                break
            stage = self._pick_stage(stages)
            if stage is None:
                break
            slice_deadline = min(now + config.slice_time, deadline)
            clusters_before = len(self.triage.clusters())
            covered_before = self._covered_units
            targets_before = len(self._targets_covered)
            runners[stage.name](stage, slice_deadline)
            elapsed = self.clock() - now
            stage.slices += 1
            stage.time_spent += elapsed
            stage.new_clusters += len(self.triage.clusters()) - clusters_before
            stage.new_coverage_units += self._covered_units - covered_before
            stage.new_target_sites += len(self._targets_covered) - targets_before
            stats.slices += 1

        stats.wall_time = self.clock() - started
        stats.seed_pool = self.pool.stats_dict()
        if self._target_sites:
            stats.targets = {
                "decision_sites": len(self._target_sites),
                "sites_covered": len(self._targets_covered),
            }
        concolic_stats: Dict[str, float] = {}
        for executor in self._executors.values():
            for key, value in executor.stats.as_dict().items():
                concolic_stats[key] = concolic_stats.get(key, 0) + value
        stats.concolic = concolic_stats

        triage_report = self.triage.report(triage_time=stats.wall_time)
        corpus_saved = 0
        if config.corpus_dir:
            from repro.core.corpus import WitnessCorpus

            corpus_saved = WitnessCorpus(config.corpus_dir).add_clusters(
                triage_report.clusters)
        coverage = (self.tracker.report().as_dict()
                    if self.tracker is not None else None)
        return HuntReport(
            test_key=self.spec.key,
            agent_a=self.agent_a,
            agent_b=self.agent_b,
            stats=stats,
            triage=triage_report,
            witnesses=list(self.witnesses),
            coverage=coverage,
            corpus_saved=corpus_saved,
        )

    def _pick_stage(self, stages: Dict[str, StageStats]) -> Optional[StageStats]:
        """Highest marginal-value-per-second stage; bootstrap order first.

        Unrun stages score infinity, so every stage gets one slice before
        re-allocation kicks in; ties resolve in roster order.
        """

        best: Optional[StageStats] = None
        best_rate = -1.0
        for name in self.config.stages:
            stage = stages[name]
            rate = stage.rate(self.config.divergence_weight,
                              self.config.target_site_weight)
            if rate > best_rate:
                best, best_rate = stage, rate
        return best

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _random_assignment(self) -> Dict[str, int]:
        # With no interesting-value pool this draws exactly one rng value per
        # symbol, so seeded hunts reproduce bit-for-bit whether or not the
        # decision map was built.
        if not self._interesting:
            return {name: self.rng.randrange(0, 1 << width)
                    for name, width in self._symbols.items()}
        assignment: Dict[str, int] = {}
        for name, width in self._symbols.items():
            if self.rng.random() < self.config.interesting_prob:
                assignment[name] = (self.rng.choice(self._interesting)
                                    & ((1 << width) - 1))
            else:
                assignment[name] = self.rng.randrange(0, 1 << width)
        return assignment

    def _replay_assignment(self, assignment: Dict[str, int], origin: str,
                           stage: StageStats,
                           require_novel: bool = False) -> Optional[Seed]:
        """Materialize + concretely replay *assignment*; harvest everything.

        Updates coverage, admits the seed, and on divergence routes the
        result through the witness pipeline.  This one helper is what makes
        the stages composable: fuzz draws, concolic flips, symbex models and
        corpus assignments all land here.
        """

        testcase = build_testcase(self.spec, assignment)
        stage.inputs_run += 1
        fingerprint = None
        if self._probe_tracker is not None:
            self._probe_tracker.reset()
            with self._probe_tracker.tracking():
                run_a = run_concrete_sequence(self._factory_a(), testcase.inputs)
                run_b = run_concrete_sequence(self._factory_b(), testcase.inputs)
            fingerprint = self._probe_tracker.fingerprint()
            self.tracker.merge_from(self._probe_tracker)
            self._covered_units = len(self.tracker.fingerprint())
            if self._target_sites:
                self._targets_covered |= {
                    (path, line)
                    for path, line in self._target_sites - self._targets_covered
                    if line in self.tracker.executed.get(path, ())
                }
        else:
            run_a = run_concrete_sequence(self._factory_a(), testcase.inputs)
            run_b = run_concrete_sequence(self._factory_b(), testcase.inputs)

        seed = self.pool.add(assignment, origin, fingerprint=fingerprint,
                             require_novel=require_novel)
        if seed is not None:
            stage.seeds_added += 1

        if run_a.trace != run_b.trace:
            stage.divergences += 1
            replay = ReplayOutcome(testcase=testcase, run_a=run_a, run_b=run_b)
            self._record_witness(testcase, replay)
        return seed

    def _record_witness(self, testcase: ConcreteTestCase,
                        replay: ReplayOutcome) -> None:
        signature = DivergenceSignature.from_diff(
            self.spec.key, self.agent_a, self.agent_b, replay.diff())
        witness = Witness(
            test_key=self.spec.key,
            scale=self.spec.scale,
            agent_a=self.agent_a,
            agent_b=self.agent_b,
            assignment=dict(testcase.assignment),
            testcase=testcase,
            replay=replay,
            signature=signature,
        )
        key = signature.key()
        if self.config.minimize and key not in self._signatures_seen:
            witness = minimize_witness(
                witness, self.spec, self._replayer,
                max_replays=self.config.minimize_budget)
        self._signatures_seen.add(key)
        self.witnesses.append(witness)
        self.triage.add(witness)

    def _replayer(self, testcase: ConcreteTestCase) -> ReplayOutcome:
        return replay_testcase(testcase, self.agent_a, self.agent_b,
                               agent_factory=self._replay_factory)

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _run_fuzz_slice(self, stage: StageStats, deadline: float) -> None:
        for _ in range(self.config.fuzz_per_slice):
            if self.clock() >= deadline:
                break
            self._replay_assignment(self._random_assignment(), "fuzz", stage,
                                    require_novel=True)

    def _run_concolic_slice(self, stage: StageStats, deadline: float) -> None:
        seed = self.pool.next_for_expansion()
        assignment = seed.assignment if seed is not None else self._random_assignment()
        # Alternate which agent's paths get expanded: a branch rare in A may
        # be common in B, and divergences live where the two disagree.
        agent = (self.agent_a, self.agent_b)[self._concolic_turn % 2]
        self._concolic_turn += 1
        executor = self._executors[agent]
        trace = executor.trace(self._programs[agent], assignment)
        solved = 0
        for branch in executor.flip_candidates(trace):
            if solved >= self.config.flips_per_slice or self.clock() >= deadline:
                break
            model = executor.solve_flip(trace, branch)
            if model is None:
                continue
            solved += 1
            self._replay_assignment(model, "concolic", stage)

    def _run_symbex_slice(self, stage: StageStats, deadline: float) -> None:
        # Resume each agent's exploration from its handed-back frontier for
        # half the slice; first slice starts from the root.
        for agent in (self.agent_a, self.agent_b):
            if self.clock() >= deadline:
                break
            agent_deadline = min(deadline, self.clock()
                                 + max(0.0, deadline - self.clock()) / 2.0)
            engine = self._engines[agent]
            program = self._programs[agent]
            previous = self._symbex_results[agent]
            if previous is None:
                result = engine.explore(program, deadline=agent_deadline)
            elif previous.frontier:
                result = previous.resume(engine, program, deadline=agent_deadline)
            else:
                result = previous
            new_paths = result.path_count - (previous.path_count if previous else 0)
            stage.inputs_run += max(0, new_paths)
            self._symbex_results[agent] = result

        result_a = self._symbex_results[self.agent_a]
        result_b = self._symbex_results[self.agent_b]
        if not (result_a and result_b and result_a.paths and result_b.paths):
            return
        grouped_a = group_paths(self._exploration_report(self.agent_a, result_a))
        grouped_b = group_paths(self._exploration_report(self.agent_b, result_b))
        # The pair scan is deadline-bounded on the hunt's own clock: a slice
        # must never hold the scheduler past the global budget (the solver's
        # query cache makes re-scanning the matrix next slice cheap).
        crosscheck = find_inconsistencies(
            grouped_a, grouped_b, solver=self._crosscheck_solver,
            max_pairs=self.config.max_pairs_per_slice,
            deadline=deadline, clock=self.clock)
        replayed = 0
        for inconsistency in crosscheck.inconsistencies:
            example_key = tuple(sorted(inconsistency.example.items()))
            if example_key in self._reported_examples:
                continue
            # Replay at least one fresh model per slice so a solved
            # inconsistency always makes progress, then respect the slice
            # deadline; examples not reached stay unreported and come back
            # from the next slice's re-scan.
            if replayed and self.clock() >= deadline:
                break
            self._reported_examples.add(example_key)
            self._replay_assignment(dict(inconsistency.example), "symbex", stage)
            replayed += 1

    def _run_replay_slice(self, stage: StageStats, deadline: float) -> None:
        if not self._corpus_loaded:
            self._corpus_loaded = True
            self._load_corpus_seeds()
        replayed = 0
        while self._pending_replay and replayed < self.config.replays_per_slice:
            if self.clock() >= deadline:
                return
            assignment, origin = self._pending_replay.pop(0)
            self._replay_assignment(assignment, origin, stage)
            replayed += 1
        # Corpus drained: spend the slice re-expanding coverage of the best
        # seeds (their replay keeps the coverage baseline honest after agent
        # code changes) — bounded, so a fake clock cannot trap us here.
        while replayed < self.config.replays_per_slice:
            if self.clock() >= deadline:
                return
            seed = self.pool.next_for_expansion()
            if seed is None:
                return
            self._replay_assignment(dict(seed.assignment), "replay-refresh", stage)
            replayed += 1

    def _load_corpus_seeds(self) -> None:
        if not self.config.corpus_dir:
            return
        from repro.core.corpus import WitnessCorpus

        try:
            bundles = WitnessCorpus(self.config.corpus_dir, create=False).load()
        except (CorpusError, ArtifactError, OSError):
            return
        for witness in bundles:
            if witness.test_key != self.spec.key:
                continue
            assignment = dict(witness.assignment) or dict(witness.solver_model)
            if assignment:
                self._pending_replay.append((assignment, "corpus"))

    # ------------------------------------------------------------------
    # Symbex plumbing
    # ------------------------------------------------------------------

    def _exploration_report(self, agent: str,
                            result: ExplorationResult) -> AgentExplorationReport:
        outcomes = [_outcome_from_record(record)
                    for record in result.paths if record.ok]
        return AgentExplorationReport(
            agent_name=agent,
            test_key=self.spec.key,
            scale=self.spec.scale,
            outcomes=outcomes,
            cpu_time=result.stats.wall_time,
            path_count=len(outcomes),
            message_count=self.spec.message_count,
            solver_stats=result.solver_stats,
            engine_stats=result.stats.as_dict(),
            truncated=result.stats.truncated,
        )
