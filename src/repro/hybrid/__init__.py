"""Hybrid concolic hunting: budgeted fuzz/symbex/replay crosschecking.

The hybrid subsystem closes the loop between the cheap concrete baselines
and the symbolic stack (the Driller recipe applied to SOFT's differential
setting): random fuzzing buys breadth, concolic execution flips exactly the
branches fuzzing cannot hit, sliced symbolic exploration keeps enumerating
paths, and corpus replay recycles every historical witness — all under one
wall-clock budget, scheduled by marginal value per second.

Entry points: :class:`HybridHunt` (one pair, one test),
``Campaign(hybrid=...)`` (the whole catalog) and the ``soft hunt`` CLI verb.
"""

from repro.hybrid.scheduler import (
    HuntReport,
    HybridConfig,
    HybridHunt,
    HybridStats,
    StageStats,
    discover_symbols,
)
from repro.hybrid.seeds import Seed, SeedPool

__all__ = [
    "HybridConfig",
    "HybridHunt",
    "HybridStats",
    "HuntReport",
    "StageStats",
    "Seed",
    "SeedPool",
    "discover_symbols",
]
