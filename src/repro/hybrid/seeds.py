"""The hybrid seed pool: concrete inputs scored by coverage novelty.

A *seed* is a concrete assignment of a test's symbolic input variables —
the join-point representation every stage of the hunt already speaks:

* the **fuzzer** draws random assignments and materializes them to wire
  buffers (``build_testcase``);
* the **concolic executor** turns a seed into a path condition and solves
  branch flips into new assignments;
* the **symbex** stage's crosscheck inconsistencies carry solver models —
  assignments by construction;
* **corpus** witness bundles store the (minimized) assignment that
  reproduced a historical divergence.

The pool deduplicates seeds by assignment, scores each admitted seed by how
many coverage units (lines + arcs, :meth:`CoverageTracker.fingerprint`) it
added over everything admitted before it, and serves seeds back in
novelty-first order for concolic expansion.  Seeds with no coverage signal
yet (e.g. solver models that have not been replayed) are admitted with a
neutral score and sorted behind scored ones of equal origin priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["Seed", "SeedPool"]

#: Admission order when novelty ties: directed seeds beat random ones.
_ORIGIN_RANK = {"corpus": 0, "symbex": 1, "concolic": 2, "fuzz": 3}


def _assignment_key(assignment: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(assignment.items()))


@dataclass
class Seed:
    """One concrete input assignment plus its pool bookkeeping."""

    assignment: Dict[str, int]
    #: Which stage produced it: "fuzz", "concolic", "symbex" or "corpus".
    origin: str
    #: Coverage units this seed added when admitted (0 = nothing new / unknown).
    novelty: int = 0
    #: Monotonic admission index (stable tie-break, deterministic order).
    serial: int = 0
    #: How many times the concolic stage has expanded this seed.
    expansions: int = 0

    def sort_key(self) -> Tuple[int, int, int, int]:
        """Novelty-first, then directed-origin-first, then admission order."""

        return (self.expansions, -self.novelty,
                _ORIGIN_RANK.get(self.origin, 9), self.serial)


class SeedPool:
    """Deduplicated, novelty-scored store of concrete input seeds."""

    def __init__(self, max_seeds: Optional[int] = None) -> None:
        self.max_seeds = max_seeds
        self._seeds: List[Seed] = []
        self._seen: set = set()
        #: Union coverage fingerprint of every scored admission so far.
        self._covered: FrozenSet[tuple] = frozenset()
        self._serial = 0
        self.rejected_duplicates = 0
        self.rejected_stale = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def add(self, assignment: Dict[str, int], origin: str,
            fingerprint: Optional[FrozenSet[tuple]] = None,
            require_novel: bool = False) -> Optional[Seed]:
        """Admit *assignment* unless it is a duplicate (or stale, see below).

        *fingerprint* is the coverage the seed's replay touched; its novelty
        is measured against the union of all previously admitted coverage and
        the union is advanced.  With ``require_novel=True`` a fingerprinted
        seed that adds no new units is rejected — the fuzz stage uses this so
        the pool holds one representative per behaviour, not every random
        input that happened to diverge nowhere.  Returns the admitted
        :class:`Seed` or ``None``.
        """

        key = _assignment_key(assignment)
        if key in self._seen:
            self.rejected_duplicates += 1
            return None
        novelty = 0
        if fingerprint is not None:
            novelty = len(fingerprint - self._covered)
            if require_novel and not novelty:
                self.rejected_stale += 1
                return None
            self._covered = self._covered | fingerprint
        self._seen.add(key)
        seed = Seed(assignment=dict(assignment), origin=origin,
                    novelty=novelty, serial=self._serial)
        self._serial += 1
        self._seeds.append(seed)
        if self.max_seeds is not None and len(self._seeds) > self.max_seeds:
            # Evict the least interesting fully-expanded seed.
            victim = max(self._seeds, key=lambda s: s.sort_key())
            self._seeds.remove(victim)
        return seed

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def next_for_expansion(self) -> Optional[Seed]:
        """The best seed to expand next (fewest expansions, most novelty).

        Marks the seed as expanded once more, so repeated calls walk the
        pool instead of hammering the single best seed.
        """

        if not self._seeds:
            return None
        seed = min(self._seeds, key=lambda s: s.sort_key())
        seed.expansions += 1
        return seed

    def seeds(self) -> List[Seed]:
        """All seeds, best-first (admission order breaks ties)."""

        return sorted(self._seeds, key=lambda s: s.sort_key())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._seeds)

    @property
    def covered_units(self) -> int:
        """Size of the union coverage fingerprint across admissions."""

        return len(self._covered)

    def origin_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for seed in self._seeds:
            counts[seed.origin] = counts.get(seed.origin, 0) + 1
        return counts

    def stats_dict(self) -> Dict[str, object]:
        return {
            "seeds": len(self._seeds),
            "covered_units": self.covered_units,
            "rejected_duplicates": self.rejected_duplicates,
            "rejected_stale": self.rejected_stale,
            "origins": self.origin_counts(),
        }
