"""Input descriptions used by test specifications.

A test specification (Table 1) is a sequence of inputs.  Each input is either
an OpenFlow control message — built per path so its symbolic fields are fresh,
deterministically named variables — or a data-plane probe packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple, Union

from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = ["ControlMessageInput", "ProbeInput", "TestInput"]


@dataclass
class ControlMessageInput:
    """A controller-to-switch message injected on the control channel."""

    name: str
    #: Builds the wire buffer for this message; receives the per-path state so
    #: it can create named symbolic variables and add well-formedness assumes.
    build: Callable[[PathState], SymBuffer]
    #: Whether this message counts as a *symbolic* message (Table 2 reports the
    #: number of symbolic control messages per test).
    symbolic: bool = True


@dataclass
class ProbeInput:
    """A concrete (or partially symbolic) packet injected on the data plane."""

    name: str
    #: Builds ``(ingress port, frame)`` for this probe.
    build: Callable[[PathState], Tuple[FieldValue, SymBuffer]]
    symbolic: bool = False


TestInput = Union[ControlMessageInput, ProbeInput]
