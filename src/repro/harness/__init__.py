"""Test harness: the emulated controller and network around an agent under test.

The harness plays the role of the paper's "test driver" (§4.1): it connects an
agent to an emulated controller and data plane, performs the initial Hello
handshake concretely, injects the (symbolic) control messages and concrete
probe packets of a test specification one at a time, and records every
externally observable result as a trace event.
"""

from repro.harness.driver import ConcreteRunResult, TestDriver, run_concrete_sequence
from repro.harness.inputs import ControlMessageInput, ProbeInput, TestInput

__all__ = [
    "TestDriver",
    "ControlMessageInput",
    "ProbeInput",
    "TestInput",
    "ConcreteRunResult",
    "run_concrete_sequence",
]
