"""The test driver that runs one agent against one test specification.

Phase-1 exploration builds a *program* — a deterministic callable over a
:class:`~repro.symbex.state.PathState` — that the exploration engine re-runs
once per path.  The same driver also supports fully concrete runs (used to
replay generated test cases and by the OFTest-style baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.agents.common.base import OpenFlowAgent
from repro.agents.common.context import RecordingContext
from repro.core.events import Event
from repro.core.trace import OutputTrace
from repro.errors import AgentCrash, HarnessError
from repro.harness.inputs import ControlMessageInput, ProbeInput, TestInput
from repro.openflow.messages import Hello
from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = ["TestDriver", "ConcreteRunResult", "run_concrete_sequence"]


class TestDriver:
    """Builds the per-path program for (agent factory, test specification)."""

    def __init__(self, agent_factory: Callable[[], OpenFlowAgent],
                 inputs: Sequence[TestInput],
                 coverage_tracker=None,
                 perform_handshake: bool = True) -> None:
        self.agent_factory = agent_factory
        self.inputs = list(inputs)
        self.coverage_tracker = coverage_tracker
        self.perform_handshake = perform_handshake

    # ------------------------------------------------------------------
    # The symbolic program
    # ------------------------------------------------------------------

    def program(self, state: PathState) -> OutputTrace:
        """Run the whole input sequence against a fresh agent instance."""

        agent = self.agent_factory()
        ctx = RecordingContext(sink=state.record_event)
        agent.attach(ctx)

        if self.perform_handshake:
            # Connection setup: the controller's HELLO, processed concretely.
            ctx.set_input_index(-1)
            self._feed_control(agent, ctx, Hello(xid=0).pack())

        for index, test_input in enumerate(self.inputs):
            if agent.crashed:
                break  # the process is gone; nothing further can be observed
            ctx.set_input_index(index)
            if isinstance(test_input, ControlMessageInput):
                buf = test_input.build(state)
                self._feed_control(agent, ctx, buf)
            elif isinstance(test_input, ProbeInput):
                port, frame = test_input.build(state)
                self._feed_probe(agent, ctx, port, frame)
            else:
                raise HarnessError("unknown test input %r" % (test_input,))

        trace = OutputTrace.from_events(ctx.events)
        state.data["trace"] = trace
        return trace

    def _feed_control(self, agent: OpenFlowAgent, ctx: RecordingContext,
                      buf: SymBuffer) -> None:
        if self.coverage_tracker is not None:
            with self.coverage_tracker.tracking():
                self._dispatch_control(agent, ctx, buf)
        else:
            self._dispatch_control(agent, ctx, buf)

    @staticmethod
    def _dispatch_control(agent: OpenFlowAgent, ctx: RecordingContext,
                          buf: SymBuffer) -> None:
        try:
            agent.handle_control_buffer(buf)
        except AgentCrash as crash:
            ctx.crash(crash.reason)

    def _feed_probe(self, agent: OpenFlowAgent, ctx: RecordingContext,
                    port: FieldValue, frame: SymBuffer) -> None:
        before = len(ctx)
        if self.coverage_tracker is not None:
            with self.coverage_tracker.tracking():
                self._dispatch_probe(agent, ctx, port, frame)
        else:
            self._dispatch_probe(agent, ctx, port, frame)
        if len(ctx) == before:
            # No observable output: log an explicit empty probe response (§3.3).
            ctx.probe_dropped()

    @staticmethod
    def _dispatch_probe(agent: OpenFlowAgent, ctx: RecordingContext,
                        port: FieldValue, frame: SymBuffer) -> None:
        try:
            agent.handle_dataplane_packet(port, frame)
        except AgentCrash as crash:
            ctx.crash(crash.reason)


# ---------------------------------------------------------------------------
# Concrete replay support
# ---------------------------------------------------------------------------


@dataclass
class ConcreteRunResult:
    """Outcome of running a fully concrete input sequence against an agent."""

    agent_name: str
    events: List[Event] = field(default_factory=list)
    trace: OutputTrace = field(default_factory=lambda: OutputTrace(items=()))
    crashed: bool = False
    wall_time: float = 0.0
    #: How many of the supplied inputs the agent actually processed before it
    #: stopped (a crashed agent ignores the rest).  Witness minimization uses
    #: this as a free upper bound when dropping trailing inputs.
    inputs_consumed: int = 0


def run_concrete_sequence(agent: OpenFlowAgent,
                          inputs: Sequence[Tuple[str, object]],
                          perform_handshake: bool = True) -> ConcreteRunResult:
    """Feed a concrete input sequence to *agent* and collect its trace.

    *inputs* is a list of ``("control", SymBuffer)`` and
    ``("probe", (port, SymBuffer))`` pairs — the format produced by
    :meth:`repro.core.testcase.ConcreteTestCase.concrete_inputs`.
    """

    started = time.perf_counter()
    ctx = RecordingContext()
    agent.attach(ctx)
    if perform_handshake:
        ctx.set_input_index(-1)
        try:
            agent.handle_control_buffer(Hello(xid=0).pack())
        except AgentCrash as crash:
            ctx.crash(crash.reason)

    consumed = 0
    for index, (kind, payload) in enumerate(inputs):
        if agent.crashed:
            break
        consumed += 1
        ctx.set_input_index(index)
        try:
            if kind == "control":
                agent.handle_control_buffer(payload)
            elif kind == "probe":
                port, frame = payload
                before = len(ctx)
                agent.handle_dataplane_packet(port, frame)
                if len(ctx) == before:
                    ctx.probe_dropped()
            else:
                raise HarnessError("unknown concrete input kind %r" % (kind,))
        except AgentCrash as crash:
            ctx.crash(crash.reason)

    return ConcreteRunResult(
        agent_name=agent.NAME,
        events=list(ctx.events),
        trace=OutputTrace.from_events(ctx.events),
        crashed=agent.crashed,
        wall_time=time.perf_counter() - started,
        inputs_consumed=consumed,
    )
