"""Compiled concrete evaluation: flat register tapes for interned terms.

The tree-walking interpreters in :mod:`repro.symbex.simplify`
(:func:`~repro.symbex.simplify.evaluate_bv` /
:func:`~repro.symbex.simplify.evaluate_bool`) pay per *evaluation*: a
recursive call, a type dispatch and a memo-dict probe per node, every time a
term is evaluated.  The Phase-1 inner loop and the replay pipeline evaluate
the *same* terms under thousands of different assignments, so this module
moves the per-node work to compile time instead:

* :func:`compile_term` lowers an expression DAG once into a
  :class:`CompiledProgram` — a topologically ordered register tape of op
  tuples over a preallocated register array.  Variables are resolved to
  input slots, constants are baked into the register template, shared
  subterms (the DAG is hash-consed) are computed exactly once, masks and
  sign bits are precomputed per instruction.
* ``CompiledProgram.run(assignment)`` evaluates one model: fill the input
  slots, sweep the tape, read the root register.  No recursion, no
  isinstance ladder, no per-call cache dict.
* ``CompiledProgram.run_batch(assignments)`` evaluates many models in one
  pass without re-touching the tape structure between models — the backbone
  of batched replay in minimization/corpus runs.

Because terms are hash-consed (:mod:`repro.symbex.expr`), compiling once per
*distinct* term is free in the steady state: :class:`CompiledCache` mirrors
:class:`~repro.symbex.simplify.SimplifyCache` — process-wide, ``id``-keyed
with the term pinned by the entry, bounded with oldest-half eviction between
top-level calls, and observable through :func:`compiled_cache_stats` (the
engine surfaces per-run deltas in ``ExplorationStats`` and merges them
across parallel workers).

Semantics are bit-identical to the interpreters with one documented
exception: the tape is *eager*, so every variable in the term — including
those only reachable through the untaken arm of a ``BVIte`` — needs a
binding (or ``default``).  Every production call site passes complete
models or a default, and the differential tests sweep the seed catalog's
path conditions to pin the equivalence down.

Pickling a :class:`CompiledProgram` ships only the underlying expression
(itself pickled structurally by the intern layer) and recompiles on
unpickle, so programs cross ``ProcessPoolExecutor`` boundaries cheaply and
land in the worker's own cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinOp,
    BVCmp,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVSignExt,
    BVUnOp,
    BVVar,
    BVZeroExt,
    Expr,
)

__all__ = [
    "CompiledProgram",
    "CompiledCache",
    "compile_term",
    "evaluate_compiled",
    "evaluate_compiled_bool",
    "compiled_cache_stats",
    "clear_compiled_cache",
    "set_compiled_cache_limit",
]

Assignment = Mapping[str, int]

# Opcodes.  Small ints dispatched by an if-chain ordered by how often each
# op occurs in the seed catalog's path conditions (comparisons and boolean
# connectives dominate, then extracts and masked arithmetic).
_EQ = 0
_NE = 1
_ULT = 2
_ULE = 3
_SLT = 4
_SLE = 5
_BAND = 6
_BOR = 7
_BNOT = 8
_EXTRACT = 9
_ADD = 10
_SUB = 11
_MUL = 12
_AND = 13
_OR = 14
_XOR = 15
_SHL = 16
_LSHR = 17
_ASHR = 18
_UDIV = 19
_UREM = 20
_NOT = 21
_NEG = 22
_CONCAT = 23
_SEXT = 24
_ITE = 25


class CompiledProgram:
    """One term lowered to a flat register tape.

    Register layout: input slots first (one per distinct variable), then
    constant slots (values baked into the template), then temporaries in
    topological order.  ``_inputs`` is a precomputed ``(name, slot, mask)``
    list; ``_tape`` a list of op tuples writing ``ins[1]`` from operand
    registers with precomputed masks/sign bits.
    """

    __slots__ = ("expr", "_template", "_inputs", "_tape", "_root", "variables")

    def __init__(self, expr: Expr, template: List[int],
                 inputs: List[Tuple[str, int, int]],
                 tape: List[tuple], root: int,
                 variables: Dict[str, int]) -> None:
        self.expr = expr
        self._template = template
        self._inputs = inputs
        self._tape = tape
        self._root = root
        #: Free variables of the term: name -> width.
        self.variables = variables

    def __reduce__(self):
        # Recompile from the (structurally pickled, re-interned) expression;
        # the tape itself never crosses process boundaries.
        return (compile_term, (self.expr,))

    def run(self, assignment: Assignment, default: Optional[int] = None) -> int:
        """Evaluate under one ``name -> int`` assignment."""

        return self.run_batch((assignment,), default=default)[0]

    def run_bool(self, assignment: Assignment,
                 default: Optional[int] = None) -> bool:
        return bool(self.run_batch((assignment,), default=default)[0])

    def run_batch(self, assignments: Iterable[Assignment],
                  default: Optional[int] = None) -> List[int]:
        """Evaluate many models in one pass over the tape structure.

        Equivalent to ``[self.run(a, default) for a in assignments]`` but
        with the tape/template/input lookups hoisted out of the per-model
        loop and the opcode dispatch inlined (no call per instruction) —
        the batch entry is the implementation; :meth:`run` is a
        one-element batch.
        """

        template = self._template
        inputs = self._inputs
        tape = self._tape
        root = self._root
        out: List[int] = []
        for assignment in assignments:
            regs = list(template)
            for name, slot, mask in inputs:
                value = assignment.get(name)
                if value is None:
                    if default is None:
                        raise ExpressionError(
                            "no binding for variable %r during compiled "
                            "evaluation" % (name,))
                    value = default
                regs[slot] = value & mask
            # Dispatch ordered by op frequency in the seed catalog's path
            # conditions: comparisons and boolean connectives dominate.
            for ins in tape:
                op = ins[0]
                if op == _EQ:
                    regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
                elif op == _NE:
                    regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
                elif op == _ULT:
                    regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
                elif op == _ULE:
                    regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
                elif op == _BAND:
                    value = 1
                    for reg in ins[2]:
                        if not regs[reg]:
                            value = 0
                            break
                    regs[ins[1]] = value
                elif op == _BOR:
                    value = 0
                    for reg in ins[2]:
                        if regs[reg]:
                            value = 1
                            break
                    regs[ins[1]] = value
                elif op == _BNOT:
                    regs[ins[1]] = 0 if regs[ins[2]] else 1
                elif op == _EXTRACT:
                    # (op, dest, a, low, mask)
                    regs[ins[1]] = (regs[ins[2]] >> ins[3]) & ins[4]
                elif op == _ADD:
                    regs[ins[1]] = (regs[ins[2]] + regs[ins[3]]) & ins[4]
                elif op == _SUB:
                    regs[ins[1]] = (regs[ins[2]] - regs[ins[3]]) & ins[4]
                elif op == _AND:
                    regs[ins[1]] = regs[ins[2]] & regs[ins[3]]
                elif op == _OR:
                    regs[ins[1]] = regs[ins[2]] | regs[ins[3]]
                elif op == _XOR:
                    regs[ins[1]] = regs[ins[2]] ^ regs[ins[3]]
                elif op == _SHL:
                    # (op, dest, a, b, mask, width)
                    rhs = regs[ins[3]]
                    regs[ins[1]] = ((regs[ins[2]] << rhs) & ins[4]
                                    if rhs < ins[5] else 0)
                elif op == _LSHR:
                    # (op, dest, a, b, width)
                    rhs = regs[ins[3]]
                    regs[ins[1]] = regs[ins[2]] >> rhs if rhs < ins[4] else 0
                elif op == _MUL:
                    regs[ins[1]] = (regs[ins[2]] * regs[ins[3]]) & ins[4]
                elif op == _ITE:
                    regs[ins[1]] = regs[ins[3]] if regs[ins[2]] else regs[ins[4]]
                elif op == _CONCAT:
                    # (op, dest, ((reg, width), ...)) — MSB-first.
                    value = 0
                    for reg, width in ins[2]:
                        value = (value << width) | regs[reg]
                    regs[ins[1]] = value
                elif op == _SLT:
                    # (op, dest, a, b, signbit, power)
                    lhs, rhs = regs[ins[2]], regs[ins[3]]
                    if lhs & ins[4]:
                        lhs -= ins[5]
                    if rhs & ins[4]:
                        rhs -= ins[5]
                    regs[ins[1]] = 1 if lhs < rhs else 0
                elif op == _SLE:
                    lhs, rhs = regs[ins[2]], regs[ins[3]]
                    if lhs & ins[4]:
                        lhs -= ins[5]
                    if rhs & ins[4]:
                        rhs -= ins[5]
                    regs[ins[1]] = 1 if lhs <= rhs else 0
                elif op == _SEXT:
                    # (op, dest, a, op_signbit, op_power, mask)
                    value = regs[ins[2]]
                    if value & ins[3]:
                        value -= ins[4]
                    regs[ins[1]] = value & ins[5]
                elif op == _ASHR:
                    # (op, dest, a, b, signbit, power, maxshift, mask)
                    value = regs[ins[2]]
                    if value & ins[4]:
                        value -= ins[5]
                    shift = regs[ins[3]]
                    if shift > ins[6]:
                        shift = ins[6]
                    regs[ins[1]] = (value >> shift) & ins[7]
                elif op == _UDIV:
                    rhs = regs[ins[3]]
                    regs[ins[1]] = ((regs[ins[2]] // rhs) & ins[4]
                                    if rhs else ins[4])
                elif op == _UREM:
                    rhs = regs[ins[3]]
                    regs[ins[1]] = regs[ins[2]] % rhs if rhs else regs[ins[2]]
                elif op == _NOT:
                    regs[ins[1]] = ~regs[ins[2]] & ins[3]
                elif op == _NEG:
                    regs[ins[1]] = -regs[ins[2]] & ins[3]
                else:
                    raise ExpressionError("unknown compiled opcode %r" % (op,))
            out.append(regs[root])
        return out

    @property
    def tape_length(self) -> int:
        return len(self._tape)

    @property
    def register_count(self) -> int:
        return len(self._template)


_BINOP_CODES = {
    "add": _ADD, "sub": _SUB, "mul": _MUL, "udiv": _UDIV, "urem": _UREM,
    "and": _AND, "or": _OR, "xor": _XOR,
    "shl": _SHL, "lshr": _LSHR, "ashr": _ASHR,
}
_CMP_CODES = {"eq": _EQ, "ne": _NE, "ult": _ULT, "ule": _ULE,
              "slt": _SLT, "sle": _SLE}


class _Compiler:
    """One compile_term invocation: DAG -> (template, inputs, tape)."""

    __slots__ = ("template", "inputs", "tape", "slots", "variables")

    def __init__(self) -> None:
        self.template: List[int] = []
        self.inputs: List[Tuple[str, int, int]] = []
        self.tape: List[tuple] = []
        # id(node) -> register holding its value (pins nothing: the root
        # expression pins the whole DAG for the compiler's lifetime).
        self.slots: Dict[int, int] = {}
        self.variables: Dict[str, int] = {}

    def new_register(self, initial: int = 0) -> int:
        self.template.append(initial)
        return len(self.template) - 1

    def emit(self, node: Expr) -> int:
        """Register holding *node*'s value (compiling it if new)."""

        slot = self.slots.get(id(node))
        if slot is not None:
            return slot
        slot = self._lower(node)
        self.slots[id(node)] = slot
        return slot

    def _lower(self, node: Expr) -> int:
        if isinstance(node, BVConst):
            return self.new_register(node.value)
        if isinstance(node, BVVar):
            known = self.variables.get(node.name)
            if known is not None:
                if known != node.width:
                    raise ExpressionError(
                        "variable %r used with widths %d and %d in one term"
                        % (node.name, known, node.width))
                # Same name and width: interning makes this the same node,
                # so the slots map already handled it — defensive only.
                for name, slot, _mask in self.inputs:
                    if name == node.name:
                        return slot
            slot = self.new_register()
            self.variables[node.name] = node.width
            self.inputs.append((node.name, slot, (1 << node.width) - 1))
            return slot
        if isinstance(node, BVBinOp):
            lhs = self.emit(node.lhs)
            rhs = self.emit(node.rhs)
            dest = self.new_register()
            op = _BINOP_CODES[node.op]
            width = node.width
            mask = (1 << width) - 1
            if op in (_ADD, _SUB, _MUL, _UDIV):
                self.tape.append((op, dest, lhs, rhs, mask))
            elif op in (_AND, _OR, _XOR, _UREM):
                self.tape.append((op, dest, lhs, rhs))
            elif op == _SHL:
                self.tape.append((op, dest, lhs, rhs, mask, width))
            elif op == _LSHR:
                self.tape.append((op, dest, lhs, rhs, width))
            else:  # _ASHR
                self.tape.append((op, dest, lhs, rhs, 1 << (width - 1),
                                  1 << width, width - 1, mask))
            return dest
        if isinstance(node, BVCmp):
            lhs = self.emit(node.lhs)
            rhs = self.emit(node.rhs)
            dest = self.new_register()
            op = _CMP_CODES[node.op]
            if op in (_SLT, _SLE):
                width = node.lhs.width
                self.tape.append((op, dest, lhs, rhs, 1 << (width - 1),
                                  1 << width))
            else:
                self.tape.append((op, dest, lhs, rhs))
            return dest
        if isinstance(node, BVUnOp):
            operand = self.emit(node.operand)
            dest = self.new_register()
            mask = (1 << node.width) - 1
            self.tape.append((_NOT if node.op == "not" else _NEG,
                              dest, operand, mask))
            return dest
        if isinstance(node, BVExtract):
            operand = self.emit(node.operand)
            dest = self.new_register()
            self.tape.append((_EXTRACT, dest, operand, node.low,
                              (1 << node.width) - 1))
            return dest
        if isinstance(node, BVConcat):
            parts = tuple((self.emit(part), part.width) for part in node.parts)
            dest = self.new_register()
            self.tape.append((_CONCAT, dest, parts))
            return dest
        if isinstance(node, BVZeroExt):
            # Zero extension is the identity on the (already in-range)
            # operand value: alias the operand's register.
            return self.emit(node.operand)
        if isinstance(node, BVSignExt):
            operand = self.emit(node.operand)
            dest = self.new_register()
            op_width = node.operand.width
            self.tape.append((_SEXT, dest, operand, 1 << (op_width - 1),
                              1 << op_width, (1 << node.width) - 1))
            return dest
        if isinstance(node, BVIte):
            cond = self.emit(node.cond)
            then = self.emit(node.then)
            otherwise = self.emit(node.otherwise)
            dest = self.new_register()
            self.tape.append((_ITE, dest, cond, then, otherwise))
            return dest
        if isinstance(node, BoolConst):
            return self.new_register(1 if node.value else 0)
        if isinstance(node, BoolNot):
            operand = self.emit(node.operand)
            dest = self.new_register()
            self.tape.append((_BNOT, dest, operand))
            return dest
        if isinstance(node, BoolAnd):
            operands = tuple(self.emit(o) for o in node.operands)
            dest = self.new_register()
            self.tape.append((_BAND, dest, operands))
            return dest
        if isinstance(node, BoolOr):
            operands = tuple(self.emit(o) for o in node.operands)
            dest = self.new_register()
            self.tape.append((_BOR, dest, operands))
            return dest
        raise ExpressionError("cannot compile unknown expression node %r" % (node,))


class CompiledCache:
    """Bounded process-wide memo ``id(expr) -> (expr, CompiledProgram)``.

    Mirrors :class:`~repro.symbex.simplify.SimplifyCache`: storing the
    expression pins it alive so its id cannot be recycled while the entry
    exists; hits re-insert their entry (cheap LRU); eviction drops the first
    half in insertion order and runs only between top-level
    :func:`compile_term` calls.
    """

    __slots__ = ("entries", "max_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = 100_000) -> None:
        self.entries: Dict[int, Tuple[Expr, CompiledProgram]] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def maybe_evict(self) -> None:
        if len(self.entries) < self.max_entries:
            return
        drop = len(self.entries) // 2
        for key in list(self.entries.keys())[:drop]:
            self.entries.pop(key, None)
        self.evictions += drop

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats_dict(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "size": len(self.entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


_COMPILED_CACHE = CompiledCache()


def compiled_cache_stats() -> Dict[str, float]:
    """Snapshot of the global compile memo (size, hits, evictions)."""

    return _COMPILED_CACHE.stats_dict()


def clear_compiled_cache() -> None:
    """Drop every compiled program (e.g. after an intern-table reset)."""

    _COMPILED_CACHE.clear()


def set_compiled_cache_limit(max_entries: int) -> None:
    """Re-bound the global compile memo; applies at the next compile_term."""

    _COMPILED_CACHE.max_entries = max(1, int(max_entries))


def compile_term(expr: Expr) -> CompiledProgram:
    """The compiled program for *expr* (one compile per distinct term)."""

    cache = _COMPILED_CACHE
    key = id(expr)
    entry = cache.entries.get(key)
    if entry is not None:
        cache.hits += 1
        cache.entries[key] = cache.entries.pop(key, entry)
        return entry[1]
    cache.misses += 1
    cache.maybe_evict()
    compiler = _Compiler()
    root = compiler.emit(expr)
    program = CompiledProgram(expr, compiler.template, compiler.inputs,
                              compiler.tape, root, compiler.variables)
    cache.entries[key] = (expr, program)
    return program


def evaluate_compiled(expr: BVExpr, assignment: Assignment,
                      default: Optional[int] = None) -> int:
    """Compiled counterpart of :func:`repro.symbex.simplify.evaluate_bv`."""

    return compile_term(expr).run(assignment, default=default)


def evaluate_compiled_bool(expr: BoolExpr, assignment: Assignment,
                           default: Optional[int] = None) -> bool:
    """Compiled counterpart of :func:`repro.symbex.simplify.evaluate_bool`."""

    return bool(compile_term(expr).run(assignment, default=default))
