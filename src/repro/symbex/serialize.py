"""JSON-safe (de)serialization of expression trees.

Phase-1 artifacts (the per-agent intermediate results a vendor ships to the
crosschecking party, §2.4 of the paper) carry path conditions, i.e. boolean
expressions over bit-vector atoms.  This module renders any
:class:`~repro.symbex.expr.Expr` into nested plain lists of strings and
integers — directly dumpable with :mod:`json` — and rebuilds structurally
identical terms from that form.

The encoding mirrors the structural keys of the AST: every node becomes
``[tag, ...]`` where the tag matches the node kind.  Shared subterms are
serialized once per occurrence, but deserialization goes through the interned
constructors of :mod:`repro.symbex.expr`, so the rebuilt tree *regains* full
physical sharing: a round-tripped term is pointer-identical to the original
(within one intern generation) and every ``id``-keyed cache in the solver
stack treats it as the same term.
"""

from __future__ import annotations

from typing import Any, List, Union

from repro.errors import ExpressionError
from repro.symbex.expr import (
    FALSE,
    TRUE,
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinOp,
    BVCmp,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVSignExt,
    BVUnOp,
    BVVar,
    BVZeroExt,
    Expr,
)

__all__ = ["expr_to_obj", "expr_from_obj", "bool_expr_from_obj", "bv_expr_from_obj",
           "model_to_obj", "model_from_obj"]

#: The JSON-safe rendering of an expression: nested lists of str/int.
ExprObj = List[Any]


def expr_to_obj(expr: Expr) -> ExprObj:
    """Render *expr* as nested ``[tag, ...]`` lists of JSON-safe scalars."""

    if isinstance(expr, BVConst):
        return ["const", expr.width, expr.value]
    if isinstance(expr, BVVar):
        return ["var", expr.width, expr.name]
    if isinstance(expr, BVBinOp):
        return ["binop", expr.op, expr_to_obj(expr.lhs), expr_to_obj(expr.rhs)]
    if isinstance(expr, BVUnOp):
        return ["unop", expr.op, expr_to_obj(expr.operand)]
    if isinstance(expr, BVExtract):
        return ["extract", expr.high, expr.low, expr_to_obj(expr.operand)]
    if isinstance(expr, BVConcat):
        return ["concat"] + [expr_to_obj(part) for part in expr.parts]
    if isinstance(expr, BVZeroExt):
        return ["zext", expr.width, expr_to_obj(expr.operand)]
    if isinstance(expr, BVSignExt):
        return ["sext", expr.width, expr_to_obj(expr.operand)]
    if isinstance(expr, BVIte):
        return ["ite", expr_to_obj(expr.cond), expr_to_obj(expr.then),
                expr_to_obj(expr.otherwise)]
    if isinstance(expr, BoolConst):
        return ["bool", 1 if expr.value else 0]
    if isinstance(expr, BoolNot):
        return ["not", expr_to_obj(expr.operand)]
    if isinstance(expr, BoolAnd):
        return ["and"] + [expr_to_obj(op) for op in expr.operands]
    if isinstance(expr, BoolOr):
        return ["or"] + [expr_to_obj(op) for op in expr.operands]
    if isinstance(expr, BVCmp):
        return ["cmp", expr.op, expr_to_obj(expr.lhs), expr_to_obj(expr.rhs)]
    raise ExpressionError("cannot serialize expression node %r" % (expr,))


def expr_from_obj(obj: Union[ExprObj, tuple]) -> Expr:
    """Rebuild an expression from the output of :func:`expr_to_obj`."""

    if not isinstance(obj, (list, tuple)) or not obj:
        raise ExpressionError("malformed serialized expression: %r" % (obj,))
    tag = obj[0]
    try:
        if tag == "const":
            return BVConst(int(obj[2]), int(obj[1]))
        if tag == "var":
            return BVVar(str(obj[2]), int(obj[1]))
        if tag == "binop":
            return BVBinOp(str(obj[1]), bv_expr_from_obj(obj[2]), bv_expr_from_obj(obj[3]))
        if tag == "unop":
            return BVUnOp(str(obj[1]), bv_expr_from_obj(obj[2]))
        if tag == "extract":
            return BVExtract(bv_expr_from_obj(obj[3]), int(obj[1]), int(obj[2]))
        if tag == "concat":
            return BVConcat([bv_expr_from_obj(part) for part in obj[1:]])
        if tag == "zext":
            return BVZeroExt(bv_expr_from_obj(obj[2]), int(obj[1]))
        if tag == "sext":
            return BVSignExt(bv_expr_from_obj(obj[2]), int(obj[1]))
        if tag == "ite":
            return BVIte(bool_expr_from_obj(obj[1]), bv_expr_from_obj(obj[2]),
                         bv_expr_from_obj(obj[3]))
        if tag == "bool":
            return TRUE if obj[1] else FALSE
        if tag == "not":
            return BoolNot(bool_expr_from_obj(obj[1]))
        if tag == "and":
            return BoolAnd([bool_expr_from_obj(op) for op in obj[1:]])
        if tag == "or":
            return BoolOr([bool_expr_from_obj(op) for op in obj[1:]])
        if tag == "cmp":
            return BVCmp(str(obj[1]), bv_expr_from_obj(obj[2]), bv_expr_from_obj(obj[3]))
    except (IndexError, ValueError, TypeError) as exc:
        raise ExpressionError("malformed serialized %s node: %r (%s)" % (tag, obj, exc))
    raise ExpressionError("unknown serialized expression tag %r" % (tag,))


def model_to_obj(model: "dict") -> "dict":
    """JSON-safe rendering of a solver model / assignment (name -> int).

    Witness bundles and exploration artifacts carry these next to serialized
    expressions; the explicit coercion catches non-scalar values early rather
    than at json.dump time.
    """

    rendered = {}
    for name, value in model.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise ExpressionError(
                "model value for %r must be an int, got %r" % (name, value))
        rendered[str(name)] = int(value)
    return rendered


def model_from_obj(obj: "dict") -> "dict":
    """Rebuild an assignment serialized with :func:`model_to_obj`."""

    if not isinstance(obj, dict):
        raise ExpressionError("serialized model must be an object, got %r" % (obj,))
    try:
        return {str(name): int(value) for name, value in obj.items()}
    except (TypeError, ValueError) as exc:
        raise ExpressionError("malformed serialized model: %s" % (exc,))


def bool_expr_from_obj(obj: Union[ExprObj, tuple]) -> BoolExpr:
    """Deserialize and type-check a boolean expression."""

    expr = expr_from_obj(obj)
    if not isinstance(expr, BoolExpr):
        raise ExpressionError("expected a boolean expression, got %r" % (expr,))
    return expr


def bv_expr_from_obj(obj: Union[ExprObj, tuple]) -> BVExpr:
    """Deserialize and type-check a bit-vector expression."""

    expr = expr_from_obj(obj)
    if not isinstance(expr, BVExpr):
        raise ExpressionError("expected a bit-vector expression, got %r" % (expr,))
    return expr
