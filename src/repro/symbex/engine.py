"""The path-exploration engine: scheduler + strategy + feasibility oracle.

The engine explores every feasible execution path of a deterministic Python
program that computes on symbolic bit-vectors.  The mechanism is the classic
*decision-schedule re-execution* used by lightweight model checkers: a path is
identified by the sequence of boolean outcomes taken at symbolic branches; the
engine re-runs the program from scratch once per path, replaying a recorded
prefix of decisions and scheduling the unexplored sibling of every new branch
for a later run.

Compared to state-forking engines (KLEE/Cloud9) this trades CPU time
(re-execution) for implementation simplicity and for the ability to execute
completely ordinary Python code — which is exactly the trade-off a pure-Python
reproduction wants.  The artefacts it produces per path are identical to what
SOFT consumes: a path condition and an output event log.

The engine is layered:

* the **scheduler** (:meth:`Engine.explore`) pops prefixes, re-executes the
  program, enforces budgets, and can hand a partially-explored frontier to
  other engines (``frontier_target`` / ``initial_frontier`` — the basis of
  :func:`explore_parallel`);
* the **strategy** (:mod:`repro.symbex.strategies`) owns the pending-prefix
  frontier and decides exploration order (DFS/BFS/random/coverage-guided);
* the **feasibility oracle** (:mod:`repro.symbex.solver.oracle`) answers
  "is this branch side feasible?" by assumption-based re-solving of one
  shared incremental SAT instance, instead of the legacy fresh
  :class:`Solver` query per branch side (``EngineConfig.use_prefix_oracle=
  False`` restores the legacy behaviour; both yield the same path set).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DecisionLimitExceeded,
    EngineError,
    PathDivergedError,
    PathLimitExceeded,
    SolverError,
)
from repro.symbex.expr import (
    BoolConst,
    BoolExpr,
    BVConst,
    BVExpr,
    bool_not,
    set_branch_hook,
)
from repro.symbex.compile import compiled_cache_stats, evaluate_compiled
from repro.symbex.simplify import simplify_bool, simplify_cache_stats
from repro.symbex.solver import SatResult, Solver, SolverConfig, merge_stat_dicts
from repro.symbex.solver.oracle import PrefixNode, PrefixOracle
from repro.symbex.solver.sat import SATStatus
from repro.symbex.state import PathCondition, PathState
from repro.symbex.strategies import Prefix, SearchStrategy, make_strategy

__all__ = [
    "EngineConfig",
    "Engine",
    "PathRecord",
    "PathBudget",
    "ExplorationStats",
    "ExplorationResult",
    "active_engine",
    "explore_parallel",
]

_thread_local = threading.local()


def active_engine() -> Optional["Engine"]:
    """Return the engine currently exploring on this thread, if any."""

    return getattr(_thread_local, "engine", None)


class _PathAbort(Exception):
    """Internal: unwinds the program when the current path must be abandoned."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class EngineConfig:
    """Exploration limits and policies."""

    #: Hard cap on the number of path attempts — completed plus discarded
    #: replays (None = unlimited).
    max_paths: Optional[int] = 200_000
    #: Hard cap on symbolic branch decisions along a single path.
    max_decisions_per_path: int = 4_096
    #: Abort the whole exploration after this many seconds (None = unlimited).
    time_budget: Optional[float] = None
    #: Raise instead of silently truncating when a limit is hit.
    strict_limits: bool = False
    #: Frontier discipline: "dfs", "bfs", "random" or "coverage"
    #: (:mod:`repro.symbex.strategies`).
    strategy: str = "dfs"
    #: Seed for the "random" strategy (deterministic exploration order).
    strategy_seed: int = 0
    #: Decide branch feasibility with the incremental :class:`PrefixOracle`
    #: instead of a fresh full :class:`Solver` query per branch side.
    use_prefix_oracle: bool = True


class PathBudget:
    """Thread-safe path-attempt budget shared by engines splitting a frontier."""

    def __init__(self, max_paths: Optional[int]) -> None:
        self._lock = threading.Lock()
        self._remaining = max_paths

    def claim(self) -> bool:
        """Take one attempt from the budget; False when it is exhausted."""

        with self._lock:
            if self._remaining is None:
                return True
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


@dataclass
class PathRecord:
    """Everything SOFT needs to know about one explored path."""

    path_id: int
    condition: PathCondition
    decisions: Tuple[bool, ...]
    events: List[Any] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    result: Any = None
    #: Exception info if the program raised (engine-level failure, not an
    #: agent crash — agent crashes are normal events recorded by the harness).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def constraint_size(self) -> int:
        return self.condition.size()


@dataclass
class ExplorationStats:
    """Aggregate statistics of one exploration."""

    paths: int = 0
    failed_paths: int = 0
    decisions: int = 0
    forced_decisions: int = 0
    forks: int = 0
    #: Replays abandoned via abort_current_path(); they produce no record
    #: but still count against the max_paths attempt budget.
    discarded_replays: int = 0
    #: Decision-procedure checks issued *by this exploration* (branch
    #: feasibility + concretization) — a per-run delta, not the cumulative
    #: counter of a possibly-reused solver.
    solver_queries: int = 0
    wall_time: float = 0.0
    truncated: bool = False
    truncation_reason: Optional[str] = None
    #: Frontier discipline this exploration ran with.
    strategy: str = "dfs"
    #: Engines the frontier was split across (1 = sequential).
    workers: int = 1
    #: Global simplify-memo activity during this exploration (per-run deltas;
    #: the cache is process-wide, so concurrent explorations overlap).
    simplify_cache_hits: int = 0
    simplify_cache_misses: int = 0
    #: Size of the global simplify memo when the exploration finished (gauge).
    simplify_cache_size: int = 0
    #: Global compiled-evaluation memo activity (per-run deltas, same
    #: process-wide caveat as the simplify counters; see symbex/compile.py).
    compiled_cache_hits: int = 0
    compiled_cache_misses: int = 0
    compiled_cache_evictions: int = 0
    #: Size of the global compile memo when the exploration finished (gauge).
    compiled_cache_size: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "paths": self.paths,
            "failed_paths": self.failed_paths,
            "decisions": self.decisions,
            "forced_decisions": self.forced_decisions,
            "forks": self.forks,
            "discarded_replays": self.discarded_replays,
            "solver_queries": self.solver_queries,
            "wall_time": self.wall_time,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "strategy": self.strategy,
            "workers": self.workers,
            "simplify_cache_hits": self.simplify_cache_hits,
            "simplify_cache_misses": self.simplify_cache_misses,
            "simplify_cache_size": self.simplify_cache_size,
            "compiled_cache_hits": self.compiled_cache_hits,
            "compiled_cache_misses": self.compiled_cache_misses,
            "compiled_cache_evictions": self.compiled_cache_evictions,
            "compiled_cache_size": self.compiled_cache_size,
        }


@dataclass
class ExplorationResult:
    """All paths of one exploration plus bookkeeping."""

    paths: List[PathRecord]
    stats: ExplorationStats
    solver_stats: Dict[str, float]
    #: Prefixes left unexplored when the scheduler stopped early (budget
    #: truncation or a ``frontier_target`` handoff); empty when exhaustive.
    frontier: List[Prefix] = field(default_factory=list)
    #: Frontier-discipline counters from the strategy that ran.
    strategy_metrics: Dict[str, object] = field(default_factory=dict)

    def successful_paths(self) -> List[PathRecord]:
        return [p for p in self.paths if p.ok]

    @property
    def exhausted(self) -> bool:
        """True when nothing is left to explore (empty frontier)."""

        return not self.frontier

    def resume(self, engine: "Engine", program: Callable[[PathState], Any], *,
               budget: Optional["PathBudget"] = None,
               deadline: Optional[float] = None) -> "ExplorationResult":
        """Continue a truncated exploration from its handed-back frontier.

        A budget-truncated :meth:`Engine.explore` returns the unexplored
        prefixes in :attr:`frontier`; ``resume`` seeds a new exploration with
        exactly those prefixes (``initial_frontier=self.frontier``) and merges
        the continuation into this result — path ids renumbered, stats and
        solver counters summed, the *new* leftover frontier handed back again.
        Because every prefix is self-contained (re-execution replays it from
        scratch), slicing one exploration into N resumed slices reaches the
        same path set as a single uninterrupted run; the regression test in
        ``tests/test_symbex_engine.py`` pins this down.  The hybrid
        scheduler's symbex stage leans on it: each time slice resumes where
        the previous one stopped instead of re-exploring from the root.

        When the frontier is already empty the result is returned unchanged.
        *engine* may be the engine that produced this result or a fresh one
        (solver/oracle state is reusable across slices by design).
        """

        if not self.frontier:
            return self
        continuation = engine.explore(program, initial_frontier=self.frontier,
                                      budget=budget, deadline=deadline)
        return _merge_results(
            [self, continuation], leftover=[],
            wall_time=self.stats.wall_time + continuation.stats.wall_time,
            workers=max(self.stats.workers, continuation.stats.workers),
            strategy_name=self.stats.strategy)

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def average_constraint_size(self) -> float:
        sizes = [p.constraint_size() for p in self.paths]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def max_constraint_size(self) -> int:
        sizes = [p.constraint_size() for p in self.paths]
        return max(sizes) if sizes else 0


class Engine:
    """Exhaustive exploration of a symbolic program, strategy-scheduled."""

    def __init__(self, solver: Optional[Solver] = None,
                 config: Optional[EngineConfig] = None,
                 strategy: Optional[SearchStrategy] = None) -> None:
        self.solver = solver if solver is not None else Solver(SolverConfig())
        self.config = config if config is not None else EngineConfig()
        #: Optional pre-built strategy instance; overrides config.strategy
        #: (used to hand a coverage tracker to the coverage-guided strategy).
        self.strategy = strategy
        self._oracle: Optional[PrefixOracle] = None
        self._current_state: Optional[PathState] = None
        self._current_prefix: Prefix = ()
        self._frontier: Optional[SearchStrategy] = None
        self._stats = ExplorationStats()
        self._deadline: Optional[float] = None
        # Prefix-trie node mirroring the current path condition (oracle
        # mode): each decision extends the node by one literal delta.
        self._path_node: Optional[PrefixNode] = None
        self._synced_constraints = 0

    @property
    def oracle(self) -> Optional[PrefixOracle]:
        """The prefix-feasibility oracle (lazily built; None in legacy mode)."""

        if self._oracle is None and self.config.use_prefix_oracle:
            self._oracle = PrefixOracle(self.solver.config)
        return self._oracle

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def explore(self, program: Callable[[PathState], Any], *,
                initial_frontier: Optional[Sequence[Prefix]] = None,
                frontier_target: Optional[int] = None,
                budget: Optional[PathBudget] = None,
                deadline: Optional[float] = None) -> ExplorationResult:
        """Run *program* once per feasible path and collect all path records.

        *program* receives a fresh :class:`PathState` per path.  It must be
        deterministic: for the same sequence of branch outcomes it must make
        the same branch queries in the same order.

        Scheduler extensions (all optional, used by :func:`explore_parallel`):
        *initial_frontier* seeds the frontier with recorded prefixes instead
        of the root; *frontier_target* stops (without marking truncation)
        once the frontier holds that many prefixes, returning them in
        :attr:`ExplorationResult.frontier`; *budget* shares a path-attempt
        budget across engines; *deadline* is an absolute
        ``time.perf_counter()`` cutoff overriding ``config.time_budget``.
        """

        started = time.perf_counter()
        self._stats = ExplorationStats()
        strategy = self._make_frontier()
        self._frontier = strategy
        self._stats.strategy = strategy.name
        for prefix in (initial_frontier if initial_frontier is not None else [()]):
            strategy.push(tuple(prefix))
        if deadline is not None:
            self._deadline = deadline
        elif self.config.time_budget:
            self._deadline = started + self.config.time_budget
        else:
            self._deadline = None

        solver_queries_before = self.solver.stats.queries
        solver_stats_before = self.solver.stats_dict()
        simplify_before = simplify_cache_stats()
        compiled_before = compiled_cache_stats()
        oracle = self.oracle
        oracle_solves_before = oracle.stats.assumption_solves if oracle else 0
        oracle_stats_before = self._oracle_mode_stats() if oracle else {}

        records: List[PathRecord] = []
        path_id = 0

        previous_engine = getattr(_thread_local, "engine", None)
        _thread_local.engine = self
        previous_hook = set_branch_hook(self._branch_hook)
        try:
            while len(strategy):
                if self._deadline is not None and time.perf_counter() > self._deadline:
                    self._note_truncation("time_budget")
                    break
                if frontier_target is not None and len(strategy) >= frontier_target:
                    break  # frontier handoff to other engines, not a truncation
                if budget is not None:
                    if not budget.claim():
                        self._note_truncation("max_paths")
                        break
                elif (self.config.max_paths is not None
                      and path_id + self._stats.discarded_replays >= self.config.max_paths):
                    self._note_truncation("max_paths")
                    break
                prefix = strategy.pop()
                record = self._run_one(program, path_id, prefix)
                if record is None:
                    # Aborted replay: no record, but the attempt still counts
                    # against the path budget so infeasible prefixes cannot
                    # spin the scheduler past its limits.
                    self._stats.discarded_replays += 1
                    strategy.on_path_discarded()
                    continue
                records.append(record)
                strategy.on_path_complete(record)
                path_id += 1
        finally:
            set_branch_hook(previous_hook)
            _thread_local.engine = previous_engine
            self._current_state = None

        self._stats.paths = len(records)
        self._stats.failed_paths = sum(1 for r in records if not r.ok)
        self._stats.wall_time = time.perf_counter() - started
        simplify_after = simplify_cache_stats()
        self._stats.simplify_cache_hits = int(
            simplify_after["hits"] - simplify_before["hits"])
        self._stats.simplify_cache_misses = int(
            simplify_after["misses"] - simplify_before["misses"])
        self._stats.simplify_cache_size = int(simplify_after["size"])
        compiled_after = compiled_cache_stats()
        self._stats.compiled_cache_hits = int(
            compiled_after["hits"] - compiled_before["hits"])
        self._stats.compiled_cache_misses = int(
            compiled_after["misses"] - compiled_before["misses"])
        self._stats.compiled_cache_evictions = int(
            compiled_after["evictions"] - compiled_before["evictions"])
        self._stats.compiled_cache_size = int(compiled_after["size"])
        concretize_queries = self.solver.stats.queries - solver_queries_before
        self._stats.solver_queries = concretize_queries + (
            oracle.stats.assumption_solves - oracle_solves_before if oracle else 0)
        return ExplorationResult(
            paths=records,
            stats=self._stats,
            solver_stats=self._solver_stats_snapshot(
                concretize_queries,
                oracle_stats_before if oracle else solver_stats_before),
            frontier=strategy.drain(),
            strategy_metrics=strategy.metrics(),
        )

    # ------------------------------------------------------------------
    # Frontier / reporting helpers
    # ------------------------------------------------------------------

    def _make_frontier(self) -> SearchStrategy:
        if self.strategy is not None:
            self.strategy.reset()
            return self.strategy
        return make_strategy(self.config.strategy, seed=self.config.strategy_seed)

    #: solver_stats entries that describe instance *state*, not per-run work;
    #: they stay absolute when the snapshot is converted to per-run deltas.
    _STATS_GAUGES = ("sat_variables", "sat_clauses", "max_query_time",
                     "model_pool_size")

    def _oracle_mode_stats(self) -> Dict[str, float]:
        """Oracle counters plus the concretization solver's portfolio ones.

        Concretization queries go through ``self.solver`` even in oracle
        mode, so its portfolio attribution (routed queries, per-backend
        wins) must ride along in the same snapshot for the per-run delta
        arithmetic to apply to it.
        """

        stats = self._oracle.stats_dict()
        if self.solver.portfolio is not None:
            stats.update(self.solver.portfolio.stats_dict())
        return stats

    def _solver_stats_snapshot(self, concretize_queries: int,
                               before: Dict[str, float]) -> Dict[str, float]:
        """Per-run solver counters (a reused engine must not accumulate)."""

        if self._oracle is not None:
            stats = self._oracle_mode_stats()
            mode = "prefix-oracle"
        else:
            stats = self.solver.stats_dict()
            mode = "legacy"
        for name, value in before.items():
            if name in self._STATS_GAUGES or name not in stats:
                continue
            stats[name] = stats[name] - value
        stats["mode"] = mode
        if self._oracle is not None:
            stats["queries"] = self._stats.solver_queries
            stats["concretize_queries"] = concretize_queries
        return stats

    # ------------------------------------------------------------------
    # Single-path execution
    # ------------------------------------------------------------------

    def _run_one(self, program: Callable[[PathState], Any], path_id: int,
                 prefix: Prefix) -> Optional[PathRecord]:
        state = PathState(path_id=path_id)
        state._engine = self
        self._current_state = state
        self._current_prefix = prefix
        self._path_node = self._oracle.root() if self._oracle is not None else None
        self._synced_constraints = 0
        error: Optional[str] = None
        result: Any = None
        try:
            result = program(state)
        except _PathAbort:
            # Infeasible replay or deliberate abandonment: not a real path.
            return None
        except (DecisionLimitExceeded, PathDivergedError) as exc:
            if self.config.strict_limits:
                raise
            error = "%s: %s" % (type(exc).__name__, exc)
            if isinstance(exc, DecisionLimitExceeded):
                self._note_truncation("max_decisions_per_path")
        # soft-lint: disable=broad-except -- the explored program is arbitrary agent code; any crash is this path's error output
        except Exception as exc:  # noqa: BLE001 - program bugs become path errors
            error = "%s: %s" % (type(exc).__name__, exc)
        return PathRecord(
            path_id=path_id,
            condition=state.condition,
            decisions=tuple(state.decisions),
            events=list(state.events),
            symbols=dict(state.symbols),
            result=result,
            error=error,
        )

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _branch_hook(self, condition: BoolExpr) -> bool:
        state = self._current_state
        if state is None:
            raise EngineError("branch taken with no active path state")
        condition = simplify_bool(condition)
        if isinstance(condition, BoolConst):
            return condition.value

        if len(state.decisions) >= self.config.max_decisions_per_path:
            raise DecisionLimitExceeded(
                "path exceeded %d symbolic decisions" % self.config.max_decisions_per_path
            )

        index = len(state.decisions)
        if index < len(self._current_prefix):
            # Replaying a previously scheduled prefix: follow it blindly (its
            # feasibility was established when it was scheduled).
            outcome = self._current_prefix[index]
        elif self._oracle is not None:
            outcome = self._decide_with_oracle(state, condition)
        else:
            outcome = self._decide_with_solver(state, condition)
        self._commit_decision(state, condition, outcome)
        return outcome

    def _commit_decision(self, state: PathState, condition: BoolExpr,
                         outcome: bool) -> None:
        if self._oracle is not None:
            # Mirror the branch in the prefix trie.  The branch literal is
            # a full equivalence, so the False side is its negation — no
            # second encoding of the negated constraint; extending the node
            # is a one-literal delta on the parent prefix.
            self._sync_path_node(state)
            lit = self._oracle.literal(condition)
            self._path_node = self._oracle.extend(
                self._path_node, lit if outcome else -lit)
        state.decisions.append(outcome)
        state.condition.add(condition if outcome else bool_not(condition))
        if self._oracle is not None:
            self._synced_constraints = len(state.condition)
        self._stats.decisions += 1

    def _sync_path_node(self, state: PathState) -> None:
        """Encode constraints added outside branching (assume/concretize)."""

        for constraint in state.condition.since(self._synced_constraints):
            self._path_node = self._oracle.extend(
                self._path_node, self._oracle.literal(constraint))
        self._synced_constraints = len(state.condition)

    def _decide_with_oracle(self, state: PathState, condition: BoolExpr) -> bool:
        self._sync_path_node(state)
        oracle = self._oracle
        lit = oracle.literal(condition)
        node = self._path_node
        if self._oracle_check(oracle.extend(node, lit)) == SATStatus.UNSAT:
            self._stats.forced_decisions += 1
            return False
        if self._oracle_check(oracle.extend(node, -lit)) == SATStatus.UNSAT:
            self._stats.forced_decisions += 1
            return True
        # Both sides feasible: take True now, schedule False for later.
        self._stats.forks += 1
        self._frontier.push(tuple(state.decisions) + (False,))
        return True

    def _oracle_check(self, node: "PrefixNode") -> str:
        status = self._oracle.check_node(node)
        if status == SATStatus.UNKNOWN:
            raise SolverError(
                "solver gave up while checking branch feasibility; raise the "
                "conflict budget in SolverConfig"
            )
        return status

    def _decide_with_solver(self, state: PathState, condition: BoolExpr) -> bool:
        base = state.condition.constraints()
        true_result = self._query(base + [condition])
        if true_result.is_unsat:
            self._stats.forced_decisions += 1
            return False
        false_result = self._query(base + [bool_not(condition)])
        if false_result.is_unsat:
            self._stats.forced_decisions += 1
            return True
        # Both sides feasible: take True now, schedule False for later.
        self._stats.forks += 1
        self._frontier.push(tuple(state.decisions) + (False,))
        return True

    def _query(self, constraints: Sequence[BoolExpr]) -> SatResult:
        result = self.solver.check(constraints)
        if result.is_unknown:
            raise SolverError(
                "solver gave up while checking branch feasibility; raise the "
                "conflict budget in SolverConfig"
            )
        return result

    # ------------------------------------------------------------------
    # Concretization support
    # ------------------------------------------------------------------

    def concretize_in_state(self, state: PathState, value: BVExpr,
                            hint: Optional[int] = None) -> int:
        """Pin *value* to one concrete integer consistent with the path.

        Concretization always runs on the legacy :class:`Solver` — the model
        it picks (and therefore the pinned value) must be identical across
        oracle and legacy engines for path-set equivalence to hold exactly.
        """

        if isinstance(value, BVConst):
            return value.value
        if isinstance(value, int):
            return value
        constraints = state.condition.constraints()
        if hint is not None:
            hinted = self.solver.check(constraints + [value == hint])
            if hinted.is_sat:
                state.condition.add(value == hint)
                return hint
        result = self.solver.check(constraints)
        if not result.is_sat:
            raise EngineError("current path condition is unsatisfiable during concretization")
        concrete = evaluate_compiled(value, result.model, default=0)
        state.condition.add(value == concrete)
        return concrete

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _note_truncation(self, reason: str) -> None:
        if self.config.strict_limits:
            raise PathLimitExceeded("exploration truncated: %s" % reason)
        self._stats.truncated = True
        if self._stats.truncation_reason is None:
            self._stats.truncation_reason = reason

    def abort_current_path(self, reason: str = "aborted by program") -> None:
        """Abandon the path currently being executed (it produces no record)."""

        raise _PathAbort(reason)


# ---------------------------------------------------------------------------
# Parallel exploration: one frontier, many engines
# ---------------------------------------------------------------------------


WorkerSetup = Callable[[int], Tuple[Callable[[PathState], Any],
                                    Optional[SearchStrategy]]]


def explore_parallel(setup: WorkerSetup, workers: int,
                     config: Optional[EngineConfig] = None,
                     solver_factory: Optional[Callable[[], Solver]] = None,
                     ) -> ExplorationResult:
    """Split one exploration's frontier across *workers* engines.

    ``setup(i)`` returns ``(program, strategy_or_None)`` for worker *i*.
    Worker 0 runs a short **breadth-first** seeding pass — regardless of the
    configured strategy, because a depth-first frontier stays ≈ path-depth
    deep and would never reach the handoff threshold — until the frontier
    holds one prefix per worker (or the program is exhausted); the remaining
    frontier is then sharded round-robin across fresh engines running in a
    thread pool.  Each engine owns its own solver, oracle and strategy — the
    only shared state is the path budget and the deadline — and the branch
    hook is thread-local, so workers never observe each other.

    Determinism: re-execution makes every prefix self-contained, so the
    merged path set equals the sequential one; records are merged in worker
    order and renumbered.  ``max_paths``/``time_budget`` are enforced
    globally via a shared :class:`PathBudget` and an absolute deadline.

    Caveat: workers are *threads*; on GIL-bound CPython the split bounds
    per-engine state growth but does not multiply throughput — true CPU
    parallelism comes from ``Campaign(executor="process")`` across (agent,
    test) units.  The sharding seam exists so a process-based shard executor
    (and free-threaded Python) can slot in without touching the scheduler.
    """

    config = config if config is not None else EngineConfig()
    workers = max(1, int(workers))
    if solver_factory is None:
        solver_factory = lambda: Solver(SolverConfig())  # noqa: E731
    started = time.perf_counter()
    deadline = started + config.time_budget if config.time_budget else None
    budget = PathBudget(config.max_paths)

    program0, strategy0 = setup(0)
    if workers == 1:
        seed_engine = Engine(solver=solver_factory(), config=config,
                             strategy=strategy0)
        result = seed_engine.explore(program0, budget=budget, deadline=deadline)
        result.stats.workers = 1
        return result

    # Seed breadth-first no matter the configured strategy: a depth-first
    # frontier stays ≈ path-depth deep and would rarely reach the handoff
    # threshold, silently degrading the split to a sequential run.  Order
    # does not change the explored set, so the shards (which run the real
    # strategy) are unaffected.
    from repro.symbex.strategies import BFSStrategy

    strategy_name = strategy0.name if strategy0 is not None else config.strategy
    seed_engine = Engine(solver=solver_factory(), config=config,
                         strategy=BFSStrategy())
    seed = seed_engine.explore(program0, frontier_target=workers,
                               budget=budget, deadline=deadline)
    results = [seed]
    leftover: List[Prefix] = list(seed.frontier)
    shard_count = 0
    # Only *global* stops make sharding pointless: an exhausted path budget
    # or an expired deadline.  Per-path truncation (max_decisions_per_path)
    # just marks individual paths failed — the rest of the frontier is still
    # owed to the caller, exactly as the sequential scheduler delivers it.
    global_stop = seed.stats.truncation_reason in ("max_paths", "time_budget")
    if leftover and not global_stop:
        shard_count = min(workers, len(leftover))
        shards = [leftover[i::shard_count] for i in range(shard_count)]
        leftover = []
        jobs = []
        for index, shard in enumerate(shards):
            program, strategy = setup(index + 1)
            engine = Engine(solver=solver_factory(), config=config, strategy=strategy)
            jobs.append((engine, program, shard))
        with ThreadPoolExecutor(max_workers=shard_count) as pool:
            futures = [
                pool.submit(engine.explore, program, initial_frontier=shard,
                            budget=budget, deadline=deadline)
                for engine, program, shard in jobs
            ]
            results.extend(future.result() for future in futures)
    return _merge_results(results, leftover=leftover,
                          wall_time=time.perf_counter() - started,
                          workers=1 + shard_count, strategy_name=strategy_name)


def _merge_results(results: Sequence[ExplorationResult], leftover: List[Prefix],
                   wall_time: float, workers: int,
                   strategy_name: str) -> ExplorationResult:
    records: List[PathRecord] = []
    stats = ExplorationStats(strategy=strategy_name, workers=workers)
    merged_frontier: List[Prefix] = list(leftover)
    solver_stats: Dict[str, float] = {}
    strategy_metrics: Dict[str, object] = {}
    for index, result in enumerate(results):
        for record in result.paths:
            record.path_id = len(records)
            records.append(record)
        if index > 0:
            merged_frontier.extend(result.frontier)
        part = result.stats
        stats.decisions += part.decisions
        stats.forced_decisions += part.forced_decisions
        stats.forks += part.forks
        stats.discarded_replays += part.discarded_replays
        stats.solver_queries += part.solver_queries
        stats.simplify_cache_hits += part.simplify_cache_hits
        stats.simplify_cache_misses += part.simplify_cache_misses
        stats.simplify_cache_size = max(stats.simplify_cache_size,
                                        part.simplify_cache_size)
        stats.compiled_cache_hits += part.compiled_cache_hits
        stats.compiled_cache_misses += part.compiled_cache_misses
        stats.compiled_cache_evictions += part.compiled_cache_evictions
        stats.compiled_cache_size = max(stats.compiled_cache_size,
                                        part.compiled_cache_size)
        if part.truncated:
            stats.truncated = True
            if stats.truncation_reason is None:
                stats.truncation_reason = part.truncation_reason
        merge_stat_dicts(solver_stats, result.solver_stats)
        merge_stat_dicts(strategy_metrics, result.strategy_metrics,
                         max_keys=("max_frontier",))
    stats.paths = len(records)
    stats.failed_paths = sum(1 for record in records if not record.ok)
    stats.wall_time = wall_time
    strategy_metrics["strategy"] = strategy_name
    return ExplorationResult(
        paths=records,
        stats=stats,
        solver_stats=solver_stats,
        frontier=merged_frontier,
        strategy_metrics=strategy_metrics,
    )
