"""The path-exploration engine.

The engine explores every feasible execution path of a deterministic Python
program that computes on symbolic bit-vectors.  The mechanism is the classic
*decision-schedule re-execution* used by lightweight model checkers: a path is
identified by the sequence of boolean outcomes taken at symbolic branches; the
engine re-runs the program from scratch once per path, replaying a recorded
prefix of decisions and scheduling the unexplored sibling of every new branch
for a later run (depth-first).

Compared to state-forking engines (KLEE/Cloud9) this trades CPU time
(re-execution) for implementation simplicity and for the ability to execute
completely ordinary Python code — which is exactly the trade-off a pure-Python
reproduction wants.  The artefacts it produces per path are identical to what
SOFT consumes: a path condition and an output event log.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DecisionLimitExceeded,
    EngineError,
    PathDivergedError,
    PathLimitExceeded,
    SolverError,
)
from repro.symbex.expr import (
    BoolConst,
    BoolExpr,
    BVConst,
    BVExpr,
    bool_not,
    set_branch_hook,
)
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver import SatResult, Solver, SolverConfig
from repro.symbex.state import PathCondition, PathState

__all__ = [
    "EngineConfig",
    "Engine",
    "PathRecord",
    "ExplorationResult",
    "active_engine",
]

_thread_local = threading.local()


def active_engine() -> Optional["Engine"]:
    """Return the engine currently exploring on this thread, if any."""

    return getattr(_thread_local, "engine", None)


class _PathAbort(Exception):
    """Internal: unwinds the program when the current path must be abandoned."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class EngineConfig:
    """Exploration limits and policies."""

    #: Hard cap on the number of completed paths (None = unlimited).
    max_paths: Optional[int] = 200_000
    #: Hard cap on symbolic branch decisions along a single path.
    max_decisions_per_path: int = 4_096
    #: Abort the whole exploration after this many seconds (None = unlimited).
    time_budget: Optional[float] = None
    #: Raise instead of silently truncating when a limit is hit.
    strict_limits: bool = False


@dataclass
class PathRecord:
    """Everything SOFT needs to know about one explored path."""

    path_id: int
    condition: PathCondition
    decisions: Tuple[bool, ...]
    events: List[Any] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    result: Any = None
    #: Exception info if the program raised (engine-level failure, not an
    #: agent crash — agent crashes are normal events recorded by the harness).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def constraint_size(self) -> int:
        return self.condition.size()


@dataclass
class ExplorationStats:
    """Aggregate statistics of one exploration."""

    paths: int = 0
    failed_paths: int = 0
    decisions: int = 0
    forced_decisions: int = 0
    forks: int = 0
    solver_queries: int = 0
    wall_time: float = 0.0
    truncated: bool = False
    truncation_reason: Optional[str] = None


@dataclass
class ExplorationResult:
    """All paths of one exploration plus bookkeeping."""

    paths: List[PathRecord]
    stats: ExplorationStats
    solver_stats: Dict[str, float]

    def successful_paths(self) -> List[PathRecord]:
        return [p for p in self.paths if p.ok]

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def average_constraint_size(self) -> float:
        sizes = [p.constraint_size() for p in self.paths]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def max_constraint_size(self) -> int:
        sizes = [p.constraint_size() for p in self.paths]
        return max(sizes) if sizes else 0


class Engine:
    """Depth-first exhaustive exploration of a symbolic program."""

    def __init__(self, solver: Optional[Solver] = None,
                 config: Optional[EngineConfig] = None) -> None:
        self.solver = solver if solver is not None else Solver(SolverConfig())
        self.config = config if config is not None else EngineConfig()
        self._current_state: Optional[PathState] = None
        self._current_prefix: Tuple[bool, ...] = ()
        self._pending: List[Tuple[bool, ...]] = []
        self._stats = ExplorationStats()
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def explore(self, program: Callable[[PathState], Any]) -> ExplorationResult:
        """Run *program* once per feasible path and collect all path records.

        *program* receives a fresh :class:`PathState` per path.  It must be
        deterministic: for the same sequence of branch outcomes it must make
        the same branch queries in the same order.
        """

        started = time.perf_counter()
        self._stats = ExplorationStats()
        self._pending = [()]
        self._deadline = (
            started + self.config.time_budget if self.config.time_budget else None
        )
        records: List[PathRecord] = []
        path_id = 0

        previous_engine = getattr(_thread_local, "engine", None)
        _thread_local.engine = self
        previous_hook = set_branch_hook(self._branch_hook)
        try:
            while self._pending:
                if self.config.max_paths is not None and path_id >= self.config.max_paths:
                    self._note_truncation("max_paths")
                    break
                if self._deadline is not None and time.perf_counter() > self._deadline:
                    self._note_truncation("time_budget")
                    break
                prefix = self._pending.pop()
                record = self._run_one(program, path_id, prefix)
                if record is not None:
                    records.append(record)
                    path_id += 1
        finally:
            set_branch_hook(previous_hook)
            _thread_local.engine = previous_engine
            self._current_state = None

        self._stats.paths = len(records)
        self._stats.failed_paths = sum(1 for r in records if not r.ok)
        self._stats.wall_time = time.perf_counter() - started
        self._stats.solver_queries = self.solver.stats.queries
        return ExplorationResult(
            paths=records,
            stats=self._stats,
            solver_stats=self.solver.stats.as_dict(),
        )

    # ------------------------------------------------------------------
    # Single-path execution
    # ------------------------------------------------------------------

    def _run_one(self, program: Callable[[PathState], Any], path_id: int,
                 prefix: Tuple[bool, ...]) -> Optional[PathRecord]:
        state = PathState(path_id=path_id)
        state._engine = self
        self._current_state = state
        self._current_prefix = prefix
        error: Optional[str] = None
        result: Any = None
        try:
            result = program(state)
        except _PathAbort:
            # Infeasible replay or deliberate abandonment: not a real path.
            return None
        except (DecisionLimitExceeded, PathDivergedError) as exc:
            if self.config.strict_limits:
                raise
            error = "%s: %s" % (type(exc).__name__, exc)
        except Exception as exc:  # noqa: BLE001 - program bugs become path errors
            error = "%s: %s" % (type(exc).__name__, exc)
        return PathRecord(
            path_id=path_id,
            condition=state.condition,
            decisions=tuple(state.decisions),
            events=list(state.events),
            symbols=dict(state.symbols),
            result=result,
            error=error,
        )

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _branch_hook(self, condition: BoolExpr) -> bool:
        state = self._current_state
        if state is None:
            raise EngineError("branch taken with no active path state")
        condition = simplify_bool(condition)
        if isinstance(condition, BoolConst):
            return condition.value

        if len(state.decisions) >= self.config.max_decisions_per_path:
            raise DecisionLimitExceeded(
                "path exceeded %d symbolic decisions" % self.config.max_decisions_per_path
            )

        index = len(state.decisions)
        if index < len(self._current_prefix):
            # Replaying a previously scheduled prefix: follow it blindly (its
            # feasibility was established when it was scheduled).
            outcome = self._current_prefix[index]
            state.decisions.append(outcome)
            state.condition.add(condition if outcome else bool_not(condition))
            self._stats.decisions += 1
            return outcome

        # Fresh branch: determine which outcomes are feasible.
        base = state.condition.constraints()
        true_result = self._query(base + [condition])
        if true_result.is_unsat:
            outcome = False
            self._stats.forced_decisions += 1
        else:
            false_result = self._query(base + [bool_not(condition)])
            if false_result.is_unsat:
                outcome = True
                self._stats.forced_decisions += 1
            else:
                # Both sides feasible: take True now, schedule False for later.
                outcome = True
                self._stats.forks += 1
                self._pending.append(tuple(state.decisions) + (False,))

        state.decisions.append(outcome)
        state.condition.add(condition if outcome else bool_not(condition))
        self._stats.decisions += 1
        return outcome

    def _query(self, constraints: Sequence[BoolExpr]) -> SatResult:
        result = self.solver.check(constraints)
        if result.is_unknown:
            raise SolverError(
                "solver gave up while checking branch feasibility; raise the "
                "conflict budget in SolverConfig"
            )
        return result

    # ------------------------------------------------------------------
    # Concretization support
    # ------------------------------------------------------------------

    def concretize_in_state(self, state: PathState, value: BVExpr,
                            hint: Optional[int] = None) -> int:
        """Pin *value* to one concrete integer consistent with the path."""

        if isinstance(value, BVConst):
            return value.value
        if isinstance(value, int):
            return value
        constraints = state.condition.constraints()
        if hint is not None:
            hinted = self.solver.check(constraints + [value == hint])
            if hinted.is_sat:
                state.condition.add(value == hint)
                return hint
        result = self.solver.check(constraints)
        if not result.is_sat:
            raise EngineError("current path condition is unsatisfiable during concretization")
        from repro.symbex.simplify import evaluate_bv

        concrete = evaluate_bv(value, result.model, default=0)
        state.condition.add(value == concrete)
        return concrete

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _note_truncation(self, reason: str) -> None:
        if self.config.strict_limits:
            raise PathLimitExceeded("exploration truncated: %s" % reason)
        self._stats.truncated = True
        self._stats.truncation_reason = reason

    def abort_current_path(self, reason: str = "aborted by program") -> None:
        """Abandon the path currently being executed (it produces no record)."""

        raise _PathAbort(reason)
