"""Search strategies: pluggable frontiers for the exploration scheduler.

The exploration engine is a *scheduler* over a frontier of pending path
prefixes: it pops one prefix, re-executes the program along it, and pushes
the unexplored sibling of every fresh two-sided branch.  Which prefix is
popped next — the *search strategy* — does not change the set of feasible
paths (exploration is exhaustive), but it decides the order in which they
appear, which matters as soon as a budget (``max_paths``, ``time_budget``)
truncates the search: a good strategy front-loads the interesting paths.

Four strategies ship with the engine:

``dfs``
    Depth-first (LIFO).  The legacy engine's order; cheapest frontier and
    the best cache locality for the prefix-feasibility oracle, because
    consecutive paths share the longest common ancestry.
``bfs``
    Breadth-first (FIFO).  Shallow behaviours surface first; useful with a
    tight ``max_paths`` when early divergence between agents is expected.
``random``
    Random-restart: pops a uniformly random frontier entry (deterministic
    for a fixed ``seed``).  De-correlates truncation bias from program
    structure.
``coverage``
    Coverage-guided via :class:`repro.coverage.tracker.CoverageTracker`:
    prefixes forked from paths that discovered new coverage (or, without a
    tracker, a previously unseen output log) are explored first.

Frontiers are *forkable*: :meth:`SearchStrategy.drain` empties the frontier
(the scheduler hands the drained prefixes back through
``ExplorationResult.frontier``), and ``explore_parallel`` shards them across
worker engines, each running its own strategy instance seeded via
``Engine.explore(initial_frontier=...)``.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError

__all__ = [
    "SearchStrategy",
    "DFSStrategy",
    "BFSStrategy",
    "RandomRestartStrategy",
    "CoverageGuidedStrategy",
    "STRATEGIES",
    "make_strategy",
    "strategy_names",
]

#: A path prefix: the branch outcomes to replay before exploring freely.
Prefix = Tuple[bool, ...]


class SearchStrategy:
    """Owns the pending-prefix frontier of one exploration.

    Subclasses implement :meth:`_push`, :meth:`_pop` and :meth:`_length`;
    the base class tracks the frontier high-water mark and pop count, which
    every strategy reports through :meth:`metrics`.
    """

    name = "base"

    def __init__(self) -> None:
        self.pushes = 0
        self.pops = 0
        self.max_frontier = 0

    # -- frontier ---------------------------------------------------------

    def push(self, prefix: Prefix) -> None:
        self._push(tuple(prefix))
        self.pushes += 1
        self.max_frontier = max(self.max_frontier, self._length())

    def pop(self) -> Prefix:
        if not self._length():
            raise EngineError("pop from an empty exploration frontier")
        self.pops += 1
        return self._pop()

    def __len__(self) -> int:
        return self._length()

    def drain(self) -> List[Prefix]:
        """Empty the frontier and return the remaining prefixes (pop order)."""

        remaining: List[Prefix] = []
        while self._length():
            remaining.append(self._pop())
        return remaining

    def reset(self) -> None:
        """Drop all frontier state and metrics (engine reuse)."""

        self.drain()
        self.pushes = 0
        self.pops = 0
        self.max_frontier = 0

    # -- scheduler feedback ----------------------------------------------

    def on_path_complete(self, record: Any) -> None:
        """Called by the scheduler after each completed path (default no-op).

        *record* is the :class:`~repro.symbex.engine.PathRecord` just
        produced; prioritizing strategies use it to score the prefixes that
        were pushed while that path ran.
        """

    def on_path_discarded(self) -> None:
        """Called when a replay was abandoned without producing a record.

        Prefixes pushed during the discarded run must not inherit the next
        completed path's score (default no-op).
        """

    # -- reporting --------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        return {
            "strategy": self.name,
            "frontier_pushes": self.pushes,
            "frontier_pops": self.pops,
            "max_frontier": self.max_frontier,
        }

    # -- subclass interface ----------------------------------------------

    def _push(self, prefix: Prefix) -> None:
        raise NotImplementedError

    def _pop(self) -> Prefix:
        raise NotImplementedError

    def _length(self) -> int:
        raise NotImplementedError


class DFSStrategy(SearchStrategy):
    """Depth-first: LIFO stack, identical to the legacy engine's order."""

    name = "dfs"

    def __init__(self) -> None:
        super().__init__()
        self._stack: List[Prefix] = []

    def _push(self, prefix: Prefix) -> None:
        self._stack.append(prefix)

    def _pop(self) -> Prefix:
        return self._stack.pop()

    def _length(self) -> int:
        return len(self._stack)


class BFSStrategy(SearchStrategy):
    """Breadth-first: FIFO queue; shallow paths complete first."""

    name = "bfs"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque = deque()

    def _push(self, prefix: Prefix) -> None:
        self._queue.append(prefix)

    def _pop(self) -> Prefix:
        return self._queue.popleft()

    def _length(self) -> int:
        return len(self._queue)


class RandomRestartStrategy(SearchStrategy):
    """Pop a uniformly random frontier entry (seeded, so deterministic).

    Every pop is a "restart" to an arbitrary point of the explored tree,
    which decorrelates a truncated sample of paths from program structure.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)
        self._entries: List[Prefix] = []

    def _push(self, prefix: Prefix) -> None:
        self._entries.append(prefix)

    def _pop(self) -> Prefix:
        index = self._rng.randrange(len(self._entries))
        self._entries[index], self._entries[-1] = self._entries[-1], self._entries[index]
        return self._entries.pop()

    def _length(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)


class CoverageGuidedStrategy(SearchStrategy):
    """Prefer prefixes forked from paths that discovered something new.

    Prefixes pushed while a path runs are held in a batch; when the path
    completes, the batch is scored and moved into a max-heap:

    * with a :class:`~repro.coverage.tracker.CoverageTracker`, the score is
      the number of new executed lines + branch arcs the path contributed
      (the tracker is cumulative across paths, so the delta is exactly the
      novelty);
    * without a tracker, the score is 1 when the path produced a
      previously-unseen event log and 0 otherwise.

    Ties break FIFO, so with a constant score this degrades gracefully to
    breadth-first order.

    When *targets* — static decision-map sites as ``(path, line)`` pairs —
    are supplied alongside a tracker, a path that executes a target site for
    the first time earns an extra :attr:`TARGET_BONUS` per site, so the
    search leans toward the statically-known branches it has not reached yet
    rather than generic novelty.
    """

    name = "coverage"

    #: Extra score per statically-known branch site reached for the first time.
    TARGET_BONUS = 25

    def __init__(self, tracker: Optional[Any] = None,
                 targets: Optional[Any] = None) -> None:
        super().__init__()
        self.tracker = tracker
        self.targets = set(targets) if targets else set()
        self._targets_hit: set = set()
        self._heap: List[Tuple[int, int, Prefix]] = []
        self._batch: List[Prefix] = []
        self._counter = 0
        self._covered = 0
        self._seen_logs: set = set()
        self.rescores = 0

    # -- scoring ----------------------------------------------------------

    def _coverage_total(self) -> int:
        executed = sum(len(lines) for lines in self.tracker.executed.values())
        arcs = sum(len(pairs) for pairs in self.tracker.arcs.values())
        return executed + arcs

    def _new_target_hits(self) -> int:
        if not self.targets or self.tracker is None:
            return 0
        hits = {
            (path, line)
            for path, line in self.targets - self._targets_hit
            if line in self.tracker.executed.get(path, ())
        }
        self._targets_hit |= hits
        return len(hits)

    def _score_path(self, record: Any) -> int:
        if self.tracker is not None:
            total = self._coverage_total()
            delta = total - self._covered
            self._covered = total
            return delta + self.TARGET_BONUS * self._new_target_hits()
        log_key = repr(getattr(record, "events", None))
        if log_key in self._seen_logs:
            return 0
        self._seen_logs.add(log_key)
        return 1

    def on_path_complete(self, record: Any) -> None:
        # Always consume the path's novelty signal — a fork-less path still
        # advances the coverage baseline / seen-log set, otherwise its
        # discoveries would be credited to the next forking path.
        score = self._score_path(record)
        if not self._batch:
            return
        if score:
            self.rescores += 1
        self._flush_batch(score)

    def on_path_discarded(self) -> None:
        # An aborted replay has no coverage signal; its forks go in neutral.
        self._flush_batch(0)

    def _flush_batch(self, score: int) -> None:
        for prefix in self._batch:
            heappush(self._heap, (-score, self._counter, prefix))
            self._counter += 1
        self._batch = []

    # -- frontier ---------------------------------------------------------

    def _push(self, prefix: Prefix) -> None:
        self._batch.append(prefix)

    def _pop(self) -> Prefix:
        if not self._heap:
            # Entries with no completed parent yet (e.g. the root prefix, or
            # an initial_frontier shard handed to a worker): neutral order.
            self._flush_batch(0)
        return heappop(self._heap)[2]

    def _length(self) -> int:
        return len(self._heap) + len(self._batch)

    def drain(self) -> List[Prefix]:
        self._flush_batch(0)
        return super().drain()

    def reset(self) -> None:
        super().reset()
        self._counter = 0
        self.rescores = 0
        self._seen_logs = set()
        # Re-baseline against the (cumulative) tracker so a fresh exploration
        # scores only coverage it discovers itself, not the previous run's.
        self._covered = self._coverage_total() if self.tracker is not None else 0
        self._targets_hit = set()
        if self.targets and self.tracker is not None:
            self._new_target_hits()  # absorb sites the tracker already covers

    def metrics(self) -> Dict[str, object]:
        data = super().metrics()
        data["scored_batches"] = self.rescores
        data["target_sites"] = len(self.targets)
        data["target_sites_hit"] = len(self._targets_hit)
        return data


STRATEGIES = {
    DFSStrategy.name: DFSStrategy,
    BFSStrategy.name: BFSStrategy,
    RandomRestartStrategy.name: RandomRestartStrategy,
    CoverageGuidedStrategy.name: CoverageGuidedStrategy,
}


def strategy_names() -> List[str]:
    """The selectable strategy names (CLI choices), sorted."""

    return sorted(STRATEGIES)


def make_strategy(name: str, seed: int = 0,
                  tracker: Optional[Any] = None,
                  targets: Optional[Any] = None) -> SearchStrategy:
    """Instantiate a registered strategy by name.

    *seed* parameterizes ``random``; *tracker* and *targets* (static
    decision-map sites) feed ``coverage`` (all are ignored by strategies
    that do not use them).
    """

    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise EngineError(
            "unknown search strategy %r (available: %s)"
            % (name, ", ".join(strategy_names())))
    if cls is RandomRestartStrategy:
        return cls(seed=seed)
    if cls is CoverageGuidedStrategy:
        return cls(tracker=tracker, targets=targets)
    return cls()
