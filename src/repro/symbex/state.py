"""Per-path execution state.

A :class:`PathState` is handed to the program under test for every explored
path.  It carries the accumulated *path condition*, the list of branch
decisions taken so far, and a free-form event log that the test harness uses
to record externally observable outputs (OpenFlow messages, data-plane
packets, crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConcretizationError, EngineError
from repro.symbex.expr import (
    BoolConst,
    BoolExpr,
    BVExpr,
    BVVar,
    bool_and,
    bvvar,
    collect_variables,
    expr_size,
)

__all__ = ["PathCondition", "PathState"]


class PathCondition:
    """An ordered conjunction of boolean constraints."""

    def __init__(self, constraints: Optional[List[BoolExpr]] = None) -> None:
        self._constraints: List[BoolExpr] = list(constraints or [])

    def add(self, constraint: BoolExpr) -> None:
        """Append a constraint (constant ``true`` is dropped)."""

        if isinstance(constraint, BoolConst) and constraint.value:
            return
        self._constraints.append(constraint)

    def constraints(self) -> List[BoolExpr]:
        """Return a copy of the constraint list."""

        return list(self._constraints)

    def since(self, index: int) -> List[BoolExpr]:
        """Constraints appended at or after position *index*.

        The engine's feasibility oracle uses this to incrementally mirror
        constraints added outside branching (``assume``/concretization)
        without copying the whole list at every branch.
        """

        return self._constraints[index:]

    def to_expr(self) -> BoolExpr:
        """The conjunction of all constraints as a single expression."""

        return bool_and(True, *self._constraints) if self._constraints else BoolConst(True)

    def copy(self) -> "PathCondition":
        return PathCondition(self._constraints)

    def size(self) -> int:
        """Total number of operator nodes across all constraints.

        This is the "constraint size" metric reported in Table 2 of the paper.
        """

        return sum(expr_size(c) for c in self._constraints)

    def variables(self) -> Dict[str, int]:
        """Mapping of every free variable name to its width."""

        merged: Dict[str, int] = {}
        for constraint in self._constraints:
            merged.update(collect_variables(constraint))
        return merged

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "PathCondition(%d constraints)" % len(self._constraints)


@dataclass
class PathState:
    """Mutable state of a single explored path."""

    path_id: int
    condition: PathCondition = field(default_factory=PathCondition)
    decisions: List[bool] = field(default_factory=list)
    events: List[Any] = field(default_factory=list)
    #: Names and widths of the symbolic inputs created through new_symbol().
    symbols: Dict[str, int] = field(default_factory=dict)
    #: Arbitrary per-path scratch storage for the program under test.
    data: Dict[str, Any] = field(default_factory=dict)
    _engine: Any = None

    # -- symbolic inputs ------------------------------------------------------

    def new_symbol(self, name: str, width: int) -> BVVar:
        """Create (or re-create, deterministically) a named symbolic input.

        The same name must map to the same width on every path; exploration
        re-runs the program once per path and input names are the join points
        between paths.
        """

        existing = self.symbols.get(name)
        if existing is not None and existing != width:
            raise EngineError(
                "symbolic input %r created with widths %d and %d" % (name, existing, width)
            )
        self.symbols[name] = width
        return bvvar(name, width)

    # -- constraints -----------------------------------------------------------

    def assume(self, constraint: BoolExpr) -> None:
        """Add *constraint* to the path condition without branching.

        Used by the harness to encode input well-formedness (e.g. "the message
        length field equals the concrete length we serialized").
        """

        if isinstance(constraint, bool):
            if constraint:
                return
            raise EngineError("assumed a concretely false constraint")
        self.condition.add(constraint)

    def record_event(self, event: Any) -> None:
        """Append an externally observable event to the path's output log."""

        self.events.append(event)

    # -- concretization -----------------------------------------------------------

    def concretize(self, value: BVExpr, hint: Optional[int] = None) -> int:
        """Pin *value* to a single concrete integer consistent with the path.

        The engine asks the solver for a model of the current path condition
        and constrains ``value == model(value)`` so subsequent execution on
        this path is consistent.  Use sparingly — every concretization may
        hide behaviours (the paper's §5.3 quantifies the coverage cost).
        """

        if self._engine is None:
            raise ConcretizationError("no engine attached to this path state")
        return self._engine.concretize_in_state(self, value, hint=hint)

    # -- introspection -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of symbolic branch decisions taken so far."""

        return len(self.decisions)

    def snapshot(self) -> Tuple[Tuple[bool, ...], int]:
        return tuple(self.decisions), len(self.condition)
