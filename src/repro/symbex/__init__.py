"""Pure-Python symbolic execution engine.

This package is the substrate that replaces Cloud9/KLEE + STP in the original
SOFT prototype.  It provides:

* :mod:`repro.symbex.expr` — bit-vector and boolean expression ASTs with
  operator overloading, so agent code can compute on symbolic values using
  ordinary Python operators.
* :mod:`repro.symbex.simplify` — algebraic simplification and constant
  propagation over expressions.
* :mod:`repro.symbex.interval` — an unsigned-interval abstract domain used as
  a fast, sound-but-incomplete satisfiability pre-check.
* :mod:`repro.symbex.solver` — a complete decision procedure for the
  quantifier-free bit-vector fragment used by path conditions: bit-blasting to
  CNF plus a CDCL SAT solver, with model extraction.
* :mod:`repro.symbex.state` / :mod:`repro.symbex.engine` — the path
  exploration engine.  A program under test is re-executed once per path with
  a prescribed schedule of branch decisions; branching on a symbolic boolean
  forks the schedule.

The public names re-exported here form the stable API used by the rest of the
library and by downstream users.
"""

from repro.symbex.expr import (
    BitVec,
    Bool,
    BoolConst,
    BoolExpr,
    BVConst,
    BVExpr,
    BVVar,
    FALSE,
    TRUE,
    bv,
    bvvar,
    bool_and,
    bool_not,
    bool_or,
    concat,
    extract,
    intern_table,
    InternTable,
    is_concrete,
    ite,
    sign_extend,
    zero_extend,
)
from repro.symbex.engine import (
    Engine,
    EngineConfig,
    ExplorationResult,
    ExplorationStats,
    PathBudget,
    PathRecord,
    active_engine,
    explore_parallel,
)
from repro.symbex.simplify import (
    clear_simplify_cache,
    simplify,
    simplify_bool,
    simplify_cache_stats,
)
from repro.symbex.solver import PrefixOracle, SatResult, Solver, SolverConfig
from repro.symbex.state import PathCondition, PathState
from repro.symbex.strategies import SearchStrategy, make_strategy, strategy_names

__all__ = [
    "BitVec",
    "Bool",
    "BoolConst",
    "BoolExpr",
    "BVConst",
    "BVExpr",
    "BVVar",
    "FALSE",
    "TRUE",
    "bv",
    "bvvar",
    "bool_and",
    "bool_not",
    "bool_or",
    "concat",
    "extract",
    "intern_table",
    "InternTable",
    "is_concrete",
    "ite",
    "sign_extend",
    "zero_extend",
    "Engine",
    "EngineConfig",
    "ExplorationResult",
    "ExplorationStats",
    "PathBudget",
    "PathRecord",
    "active_engine",
    "explore_parallel",
    "simplify",
    "simplify_bool",
    "simplify_cache_stats",
    "clear_simplify_cache",
    "PrefixOracle",
    "SatResult",
    "Solver",
    "SolverConfig",
    "PathCondition",
    "PathState",
    "SearchStrategy",
    "make_strategy",
    "strategy_names",
]
