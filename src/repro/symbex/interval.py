"""Unsigned-interval abstract domain used as a fast satisfiability pre-check.

The complete decision procedure (bit-blasting + SAT) is comparatively slow in
pure Python, while the vast majority of path-condition atoms produced by the
OpenFlow agents have the shape ``field <cmp> constant``.  This module derives,
for each free variable, an over-approximating set of feasible values
(an interval plus a small set of excluded points).  Two sound outcomes are
possible:

* ``UNSAT`` — some variable's feasible set is empty; the conjunction is
  definitely unsatisfiable and the SAT solver never runs.
* ``UNKNOWN`` — a candidate model is proposed (and verified by concrete
  evaluation whenever the conjunction only mentions supported atoms); the
  caller falls back to the complete procedure if the candidate fails.

The domain is deliberately simple; completeness comes from the SAT backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BVCmp,
    BVConst,
    BVExpr,
    BVVar,
    BVZeroExt,
    BVExtract,
)
from repro.symbex.compile import compile_term

__all__ = ["IntervalDomain", "IntervalOutcome", "analyze_conjunction"]


@dataclass
class _VarDomain:
    """Feasible unsigned values for one variable."""

    width: int
    low: int = 0
    high: int = 0
    excluded: Set[int] = field(default_factory=set)
    forced_bits_low: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.high = (1 << self.width) - 1

    def constrain_low(self, value: int) -> None:
        if value > self.low:
            self.low = value

    def constrain_high(self, value: int) -> None:
        if value < self.high:
            self.high = value

    def exclude(self, value: int) -> None:
        self.excluded.add(value)

    def is_empty(self) -> bool:
        if self.low > self.high:
            return True
        span = self.high - self.low + 1
        if span <= len(self.excluded):
            remaining = span - sum(1 for v in self.excluded if self.low <= v <= self.high)
            return remaining <= 0
        return False

    def pick(self) -> Optional[int]:
        """Return some feasible value, preferring the interval bounds."""

        if self.low > self.high:
            return None
        for candidate in (self.low, self.high):
            if candidate not in self.excluded and self._bits_ok(candidate):
                return candidate
        value = self.low
        # The excluded set is small in practice (a handful of != atoms).
        limit = min(self.high, self.low + len(self.excluded) + 64)
        while value <= limit:
            if value not in self.excluded and self._bits_ok(value):
                return value
            value += 1
        return None

    def _bits_ok(self, value: int) -> bool:
        for (high, low), (expected, _relation) in self.forced_bits_low.items():
            chunk = (value >> low) & ((1 << (high - low + 1)) - 1)
            if chunk != expected:
                return False
        return True


class IntervalOutcome:
    """Result of the interval analysis of a conjunction."""

    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __init__(self, status: str, candidate: Optional[Dict[str, int]] = None,
                 verified: bool = False) -> None:
        self.status = status
        self.candidate = candidate or {}
        #: True when the candidate was checked by concrete evaluation of the
        #: full conjunction and found satisfying (i.e. this is a real model).
        self.verified = verified

    @property
    def is_unsat(self) -> bool:
        return self.status == self.UNSAT

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "IntervalOutcome(%s, verified=%s)" % (self.status, self.verified)


class IntervalDomain:
    """Accumulates per-variable interval facts from comparison atoms."""

    def __init__(self) -> None:
        self._domains: Dict[str, _VarDomain] = {}
        self._unsupported: List[BoolExpr] = []
        self._contradiction = False

    # -- construction ------------------------------------------------------

    def add(self, atom: BoolExpr) -> None:
        """Incorporate *atom*; unsupported shapes are recorded, not dropped."""

        if isinstance(atom, BoolConst):
            if not atom.value:
                self._contradiction = True
            return
        if isinstance(atom, BoolAnd):
            for operand in atom.operands:
                self.add(operand)
            return
        if isinstance(atom, BoolNot):
            inner = atom.operand
            if isinstance(inner, BVCmp):
                self.add(_negate_cmp(inner))
                return
            self._unsupported.append(atom)
            return
        if isinstance(atom, BVCmp):
            if not self._add_cmp(atom):
                self._unsupported.append(atom)
            return
        self._unsupported.append(atom)

    def _domain_for(self, var: BVVar) -> _VarDomain:
        domain = self._domains.get(var.name)
        if domain is None:
            domain = _VarDomain(width=var.width)
            self._domains[var.name] = domain
        return domain

    def _add_cmp(self, atom: BVCmp) -> bool:
        var, const, op = _normalize(atom)
        if var is None:
            return False
        if isinstance(var, BVVar):
            domain = self._domain_for(var)
            return _apply(domain, op, const)
        if isinstance(var, BVExtract) and isinstance(var.operand, BVVar) and op == "eq":
            domain = self._domain_for(var.operand)
            domain.forced_bits_low[(var.high, var.low)] = (const, 0)
            return True
        return False

    # -- queries -------------------------------------------------------------

    def is_definitely_unsat(self) -> bool:
        if self._contradiction:
            return True
        return any(d.is_empty() for d in self._domains.values())

    def candidate_model(self) -> Optional[Dict[str, int]]:
        model: Dict[str, int] = {}
        for name, domain in self._domains.items():
            value = domain.pick()
            if value is None:
                return None
            model[name] = value
        return model

    @property
    def has_unsupported_atoms(self) -> bool:
        return bool(self._unsupported)

    @property
    def unsupported_atoms(self) -> List[BoolExpr]:
        return self._unsupported


def _negate_cmp(atom: BVCmp) -> BVCmp:
    flipped = {"eq": "ne", "ne": "eq"}
    if atom.op in flipped:
        return BVCmp(flipped[atom.op], atom.lhs, atom.rhs)
    if atom.op == "ult":
        return BVCmp("ule", atom.rhs, atom.lhs)
    if atom.op == "ule":
        return BVCmp("ult", atom.rhs, atom.lhs)
    if atom.op == "slt":
        return BVCmp("sle", atom.rhs, atom.lhs)
    return BVCmp("slt", atom.rhs, atom.lhs)


def _strip_zext(expr: BVExpr) -> BVExpr:
    while isinstance(expr, BVZeroExt):
        expr = expr.operand
    return expr


def _normalize(atom: BVCmp) -> Tuple[Optional[BVExpr], int, str]:
    """Rewrite the atom as ``term <op> constant`` when possible."""

    lhs, rhs, op = _strip_zext(atom.lhs), _strip_zext(atom.rhs), atom.op
    if isinstance(lhs, BVConst) and not isinstance(rhs, BVConst):
        lhs, rhs = rhs, lhs
        op = {"eq": "eq", "ne": "ne", "ult": "ugt", "ule": "uge", "slt": "sgt", "sle": "sge"}[op]
    if not isinstance(rhs, BVConst):
        return None, 0, op
    if isinstance(lhs, (BVVar, BVExtract)):
        return lhs, rhs.value, op
    return None, 0, op


def _apply(domain: _VarDomain, op: str, value: int) -> bool:
    # The constant is NOT masked to the variable's width: comparisons that
    # reach here through a stripped zero-extension can carry a constant wider
    # than the variable, and the unmasked semantics are exactly right —
    # ``x == big`` empties the interval, ``x != big`` excludes an unreachable
    # point, ``x < big`` is a no-op bound.  This is what makes every
    # *supported* atom satisfied-by-construction by ``candidate_model``.
    if op == "eq":
        domain.constrain_low(value)
        domain.constrain_high(value)
        return True
    if op == "ne":
        domain.exclude(value)
        return True
    if op == "ult":
        domain.constrain_high(value - 1) if value > 0 else domain.constrain_high(-1)
        return True
    if op == "ule":
        domain.constrain_high(value)
        return True
    if op == "ugt":
        domain.constrain_low(value + 1)
        return True
    if op == "uge":
        domain.constrain_low(value)
        return True
    # Signed comparisons against constants are rare in the agents; treat them
    # as unsupported so the complete solver decides.
    return False


def analyze_conjunction(atoms: Iterable[BoolExpr]) -> IntervalOutcome:
    """Analyze the conjunction of *atoms*.

    Returns an :class:`IntervalOutcome` whose status is ``unsat`` when the
    interval domain proves infeasibility, and ``unknown`` otherwise.  In the
    unknown case a candidate model is attached; when every atom was supported
    (or the candidate satisfies the full conjunction under concrete
    evaluation), the candidate is flagged as verified, so callers may skip the
    SAT backend entirely.
    """

    atoms = list(atoms)
    domain = IntervalDomain()
    for atom in atoms:
        domain.add(atom)
    if domain.is_definitely_unsat():
        return IntervalOutcome(IntervalOutcome.UNSAT)

    candidate = domain.candidate_model()
    if candidate is None:
        return IntervalOutcome(IntervalOutcome.UNKNOWN)

    # Every *supported* atom is satisfied by construction: ``pick`` honours
    # the interval bounds, the excluded points and the forced bit fields that
    # are exactly the facts those atoms contributed (``_apply`` keeps the
    # constants unmasked, so out-of-range comparisons empty the interval
    # instead of aliasing).  Only unsupported atoms need concrete
    # verification — their free variables are bound (default zero) from the
    # compiled programs' precomputed variable lists.
    unsupported = domain.unsupported_atoms
    if not unsupported:
        return IntervalOutcome(IntervalOutcome.UNKNOWN, candidate=candidate,
                               verified=True)

    all_vars: Dict[str, int] = dict(candidate)
    programs = [compile_term(atom) for atom in unsupported]
    for program in programs:
        for name in program.variables:
            all_vars.setdefault(name, 0)
    try:
        satisfied = all(program.run_bool(all_vars) for program in programs)
    except (ReproError, ArithmeticError):  # pragma: no cover - defensive; evaluation never raises on closed terms
        satisfied = False
    return IntervalOutcome(IntervalOutcome.UNKNOWN, candidate=all_vars, verified=satisfied)
