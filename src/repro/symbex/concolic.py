"""Concolic mode: concrete-input replay that recovers the path condition.

The exploration engine (:mod:`repro.symbex.engine`) answers "which paths
exist?" by solver-guided search.  Concolic execution answers the inverse
question: *given one concrete input, which path does it take — and which
nearby paths does it almost take?*  This module replays a concrete assignment
of the symbolic input variables through the same instrumented program the
engine runs, but decides every symbolic branch by **evaluating the branch
condition under the assignment** instead of asking a solver.  One replay, no
search, and the result is the full path condition of that input: the ordered
list of branch conditions with their concrete outcomes.

From the recovered trace, :class:`ConcolicExecutor.solve_flip` generates
*directed* new inputs Driller-style: take the constraints up to branch *i*,
negate branch *i*'s condition, and ask the solver for a model.  The
feasibility pre-check reuses the :class:`~repro.symbex.solver.oracle.
PrefixOracle`'s incremental SAT machinery — every distinct condition is
bit-blasted once into the shared instance and a flip candidacy is a single
assumption re-solve — so scanning a deep trace for feasible flips costs far
less than one full solver query per branch.  Only feasible flips pay for a
model-extracting :class:`~repro.symbex.solver.solver.Solver` query (the
oracle never extracts models, by design).

The executor deduplicates flips across seeds by decision prefix: once branch
``decisions[:i] + (not outcome,)`` has been solved (or proven infeasible), no
later seed re-solves it, which is what makes repeated concolic slices over a
growing seed pool converge instead of thrash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.symbex.expr import (
    BoolConst,
    BoolExpr,
    BVConst,
    BVExpr,
    bool_not,
    reset_branch_hook,
    set_branch_hook,
)
from repro.symbex.compile import evaluate_compiled, evaluate_compiled_bool
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver import Solver, SolverConfig
from repro.symbex.solver.oracle import PrefixOracle
from repro.symbex.solver.sat import SATStatus
from repro.symbex.state import PathState

__all__ = ["ConcolicBranch", "ConcolicTrace", "ConcolicStats", "ConcolicExecutor"]


@dataclass
class ConcolicBranch:
    """One symbolic branch crossed during a concolic replay."""

    #: Position in the decision sequence (0-based).
    index: int
    #: The branch condition exactly as the program queried it.
    condition: BoolExpr
    #: The side the concrete assignment took.
    outcome: bool
    #: Number of path-condition constraints accumulated *before* this branch
    #: (assumes + earlier branches) — the prefix a flip must preserve.
    pc_prefix_len: int

    def flip_key(self, decisions: Tuple[bool, ...]) -> Tuple[bool, ...]:
        """Identity of the flipped sibling: the decision prefix + negated side."""

        return tuple(decisions[: self.index]) + (not self.outcome,)


@dataclass
class ConcolicTrace:
    """The full path one concrete assignment takes through the program."""

    assignment: Dict[str, int]
    decisions: Tuple[bool, ...]
    branches: List[ConcolicBranch]
    events: List[Any]
    symbols: Dict[str, int]
    #: Ordered path-condition constraints (assumes + branch constraints).
    constraints: List[BoolExpr]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ConcolicStats:
    """Counters of one :class:`ConcolicExecutor` (cumulative across seeds)."""

    traces: int = 0
    branches_seen: int = 0
    flips_attempted: int = 0
    #: Flip candidates the oracle pre-check proved infeasible (no model query).
    flips_infeasible: int = 0
    #: Flip candidates skipped because their sibling was already solved.
    flips_deduped: int = 0
    flips_solved: int = 0
    flips_failed: int = 0
    trace_time: float = 0.0
    solve_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "traces": self.traces,
            "branches_seen": self.branches_seen,
            "flips_attempted": self.flips_attempted,
            "flips_infeasible": self.flips_infeasible,
            "flips_deduped": self.flips_deduped,
            "flips_solved": self.flips_solved,
            "flips_failed": self.flips_failed,
            "trace_time": self.trace_time,
            "solve_time": self.solve_time,
        }


class _ConcolicEngineShim:
    """Minimal engine stand-in so ``state.concretize`` works concolically.

    Under a concrete assignment there is nothing to solve: the concretized
    value *is* the expression evaluated under the assignment (unbound
    variables zero-fill, matching test-case materialization).
    """

    def __init__(self, assignment: Dict[str, int]) -> None:
        self._assignment = assignment

    def concretize_in_state(self, state: PathState, value: BVExpr,
                            hint: Optional[int] = None) -> int:
        if isinstance(value, BVConst):
            return value.value
        if isinstance(value, int):
            return value
        concrete = evaluate_compiled(value, self._assignment, default=0)
        state.condition.add(value == concrete)
        return concrete


class ConcolicExecutor:
    """Replays concrete assignments symbolically and solves branch flips.

    One executor is meant to live as long as a hunt: the prefix oracle, the
    model solver (and its query cache) and the flip-dedup set all accumulate
    across :meth:`trace`/:meth:`solve_flip` calls, so the marginal cost of
    each additional seed drops as the condition vocabulary saturates.
    """

    def __init__(self, solver: Optional[Solver] = None,
                 oracle: Optional[PrefixOracle] = None,
                 max_decisions: int = 4096) -> None:
        self.solver = solver if solver is not None else Solver(SolverConfig())
        self.oracle = oracle if oracle is not None else PrefixOracle(self.solver.config)
        self.max_decisions = max_decisions
        self.stats = ConcolicStats()
        #: Decision-prefix identities of every flip already attempted.
        self._flipped: Set[Tuple[bool, ...]] = set()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def trace(self, program: Callable[[PathState], Any],
              assignment: Dict[str, int]) -> ConcolicTrace:
        """Run *program* once, deciding every branch under *assignment*.

        *program* is the same instrumented callable the engine explores
        (e.g. ``TestDriver(...).program``).  Branch conditions evaluate with
        unbound variables zero-filled — the same convention test-case
        materialization uses, so tracing a materialized test case follows
        exactly the path that test case takes concretely.
        """

        started = time.perf_counter()
        state = PathState(path_id=-1)
        state._engine = _ConcolicEngineShim(assignment)
        branches: List[ConcolicBranch] = []
        error: Optional[str] = None

        def concrete_hook(condition: BoolExpr) -> bool:
            reduced = simplify_bool(condition)
            if isinstance(reduced, BoolConst):
                return reduced.value
            if len(state.decisions) >= self.max_decisions:
                raise RuntimeError(
                    "concolic replay exceeded %d decisions" % self.max_decisions)
            outcome = evaluate_compiled_bool(reduced, assignment, default=0)
            branches.append(ConcolicBranch(
                index=len(state.decisions),
                condition=reduced,
                outcome=outcome,
                pc_prefix_len=len(state.condition),
            ))
            state.decisions.append(outcome)
            state.condition.add(reduced if outcome else bool_not(reduced))
            return outcome

        previous = set_branch_hook(concrete_hook)
        try:
            program(state)
        # soft-lint: disable=broad-except -- the traced program is arbitrary agent code; any crash is this trace's error output
        except Exception as exc:  # noqa: BLE001 - program bugs become trace errors
            error = "%s: %s" % (type(exc).__name__, exc)
        finally:
            reset_branch_hook(previous)

        self.stats.traces += 1
        self.stats.branches_seen += len(branches)
        self.stats.trace_time += time.perf_counter() - started
        return ConcolicTrace(
            assignment=dict(assignment),
            decisions=tuple(state.decisions),
            branches=branches,
            events=list(state.events),
            symbols=dict(state.symbols),
            constraints=state.condition.constraints(),
            error=error,
        )

    # ------------------------------------------------------------------
    # Flipping
    # ------------------------------------------------------------------

    def flip_candidates(self, trace: ConcolicTrace) -> List[ConcolicBranch]:
        """Branches of *trace* whose sibling has not been attempted yet."""

        return [branch for branch in trace.branches
                if branch.flip_key(trace.decisions) not in self._flipped]

    def solve_flip(self, trace: ConcolicTrace,
                   branch: ConcolicBranch) -> Optional[Dict[str, int]]:
        """Solve for an input taking the other side of *branch*.

        Returns a full assignment — the solver model layered over the seed
        assignment, so variables the flip does not constrain keep their seed
        values and the new input stays maximally close to the seed — or
        ``None`` when the sibling is infeasible (or already attempted).
        """

        key = branch.flip_key(trace.decisions)
        if key in self._flipped:
            self.stats.flips_deduped += 1
            return None
        self._flipped.add(key)
        self.stats.flips_attempted += 1
        started = time.perf_counter()
        try:
            prefix = trace.constraints[: branch.pc_prefix_len]
            negated = bool_not(branch.condition) if branch.outcome else branch.condition

            # Cheap feasibility first: assumption re-solve on the shared
            # incremental instance.  The branch literal is an equivalence, so
            # the flipped side is just the negated literal — no re-encoding.
            literals = [self.oracle.literal(constraint) for constraint in prefix]
            lit = self.oracle.literal(branch.condition)
            literals.append(-lit if branch.outcome else lit)
            if self.oracle.check_prefix(literals) == SATStatus.UNSAT:
                self.stats.flips_infeasible += 1
                return None

            # Feasible (or unknown): pay for one model-extracting query.
            result = self.solver.check(prefix + [negated])
            if not result.is_sat:
                if result.is_unsat:
                    self.stats.flips_infeasible += 1
                else:
                    self.stats.flips_failed += 1
                return None
            merged = dict(trace.assignment)
            merged.update(result.model)
            self.stats.flips_solved += 1
            return merged
        finally:
            self.stats.solve_time += time.perf_counter() - started

    def flip_all(self, trace: ConcolicTrace,
                 limit: Optional[int] = None,
                 deadline: Optional[float] = None) -> List[Dict[str, int]]:
        """Solve up to *limit* un-attempted flips of *trace* (deepest last).

        *deadline* is an absolute ``time.perf_counter()`` cutoff; the scan
        stops between flips once it passes.
        """

        solved: List[Dict[str, int]] = []
        for branch in self.flip_candidates(trace):
            if limit is not None and len(solved) >= limit:
                break
            if deadline is not None and time.perf_counter() > deadline:
                break
            model = self.solve_flip(trace, branch)
            if model is not None:
                solved.append(model)
        return solved
