"""Expression simplification, substitution and concrete evaluation.

The smart constructors in :mod:`repro.symbex.expr` already perform constant
folding at construction time.  This module adds:

* :func:`simplify` / :func:`simplify_bool` — a bottom-up rewriting pass that
  re-applies the smart constructors over an existing term, which folds terms
  whose operands *became* constant after substitution and applies a handful of
  deeper algebraic identities.
* :func:`substitute` — replace free variables by expressions (typically
  constants from a solver model).
* :func:`evaluate_bv` / :func:`evaluate_bool` — fully concrete big-int
  evaluation under a complete assignment.  Used to validate solver models and
  to replay generated test cases.

Because expressions are hash-consed (see :mod:`repro.symbex.expr`),
simplification is a pure function of the node's *identity*: the
substitution-free :func:`simplify` / :func:`simplify_bool` entry points are
memoized process-wide in a bounded ``id``-keyed cache
(:class:`SimplifyCache`), so the engine's per-branch re-simplification of
recurring conditions is a dictionary hit after the first path that builds
them.  The cache is bounded (oldest-half eviction between top-level calls)
and observable through :func:`simplify_cache_stats` so long campaigns cannot
grow it silently.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple, Union

from repro.errors import ExpressionError
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinOp,
    BVCmp,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVSignExt,
    BVUnOp,
    BVVar,
    BVZeroExt,
    Expr,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    concat,
    extract,
    ite,
    sign_extend,
    zero_extend,
    _make_binop,
    _make_cmp,
    _make_unop,
)

__all__ = [
    "simplify",
    "simplify_bool",
    "substitute",
    "evaluate_bv",
    "evaluate_bool",
    "SimplifyCache",
    "simplify_cache_stats",
    "clear_simplify_cache",
    "set_simplify_cache_limit",
]

Assignment = Mapping[str, int]


class SimplifyCache:
    """Bounded process-wide memo for substitution-free simplification.

    Entries map ``id(expr) -> (expr, simplified)``; storing the input
    expression pins it alive so its id can never be recycled while the entry
    exists.  Hits re-insert their entry (cheap LRU), so eviction — dropping
    the first half in insertion order, run only between top-level
    ``simplify*`` calls, never mid-recursion — sheds the coldest entries
    rather than the hottest shared subterms.
    """

    __slots__ = ("entries", "max_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = 200_000) -> None:
        self.entries: Dict[int, Tuple[Expr, Expr]] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def maybe_evict(self) -> None:
        if len(self.entries) < self.max_entries:
            return
        drop = len(self.entries) // 2
        for key in list(self.entries.keys())[:drop]:
            # pop() tolerates a concurrent evictor racing over the same keys.
            self.entries.pop(key, None)
        self.evictions += drop

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats_dict(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "size": len(self.entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


_SIMPLIFY_CACHE = SimplifyCache()


def simplify_cache_stats() -> Dict[str, float]:
    """Snapshot of the global simplification memo (size, hits, evictions)."""

    return _SIMPLIFY_CACHE.stats_dict()


def clear_simplify_cache() -> None:
    """Drop every memoized simplification (e.g. after an intern-table reset)."""

    _SIMPLIFY_CACHE.clear()


def set_simplify_cache_limit(max_entries: int) -> None:
    """Re-bound the global memo; takes effect at the next top-level call."""

    _SIMPLIFY_CACHE.max_entries = max(1, int(max_entries))


def _rebuild(expr: Expr, cache: Dict[int, Tuple[Expr, Expr]],
             substitution: Mapping[str, BVExpr],
             stats: SimplifyCache = None) -> Expr:
    key = id(expr)
    entry = cache.get(key)
    if entry is not None:
        if stats is not None:
            stats.hits += 1
            # Cheap LRU: re-insert so half-eviction (insertion order) drops
            # the coldest entries, not the hottest shared subterms.
            cache[key] = cache.pop(key, entry)
        return entry[1]
    if stats is not None:
        stats.misses += 1
    result = _rebuild_uncached(expr, cache, substitution, stats)
    cache[key] = (expr, result)
    return result


def _rebuild_uncached(expr: Expr, cache: Dict[int, Tuple[Expr, Expr]],
                      substitution: Mapping[str, BVExpr],
                      stats: SimplifyCache = None) -> Expr:
    if isinstance(expr, BVConst) or isinstance(expr, BoolConst):
        return expr
    if isinstance(expr, BVVar):
        replacement = substitution.get(expr.name)
        if replacement is None:
            return expr
        if replacement.width != expr.width:
            raise ExpressionError(
                "substitution for %r has width %d, expected %d"
                % (expr.name, replacement.width, expr.width)
            )
        return replacement
    if isinstance(expr, BVBinOp):
        lhs = _rebuild(expr.lhs, cache, substitution, stats)
        rhs = _rebuild(expr.rhs, cache, substitution, stats)
        return _make_binop(expr.op, lhs, rhs)  # type: ignore[arg-type]
    if isinstance(expr, BVUnOp):
        return _make_unop(expr.op, _rebuild(expr.operand, cache, substitution, stats))  # type: ignore[arg-type]
    if isinstance(expr, BVExtract):
        return extract(_rebuild(expr.operand, cache, substitution, stats), expr.high, expr.low)  # type: ignore[arg-type]
    if isinstance(expr, BVConcat):
        return concat(*[_rebuild(p, cache, substitution, stats) for p in expr.parts])  # type: ignore[misc]
    if isinstance(expr, BVZeroExt):
        return zero_extend(_rebuild(expr.operand, cache, substitution, stats), expr.width)  # type: ignore[arg-type]
    if isinstance(expr, BVSignExt):
        return sign_extend(_rebuild(expr.operand, cache, substitution, stats), expr.width)  # type: ignore[arg-type]
    if isinstance(expr, BVIte):
        cond = _rebuild(expr.cond, cache, substitution, stats)
        then = _rebuild(expr.then, cache, substitution, stats)
        otherwise = _rebuild(expr.otherwise, cache, substitution, stats)
        return ite(cond, then, otherwise)  # type: ignore[arg-type]
    if isinstance(expr, BVCmp):
        lhs = _rebuild(expr.lhs, cache, substitution, stats)
        rhs = _rebuild(expr.rhs, cache, substitution, stats)
        return _make_cmp(expr.op, lhs, rhs)  # type: ignore[arg-type]
    if isinstance(expr, BoolNot):
        return bool_not(_rebuild(expr.operand, cache, substitution, stats))  # type: ignore[arg-type]
    if isinstance(expr, BoolAnd):
        return bool_and(*[_rebuild(o, cache, substitution, stats) for o in expr.operands])  # type: ignore[misc]
    if isinstance(expr, BoolOr):
        return bool_or(*[_rebuild(o, cache, substitution, stats) for o in expr.operands])  # type: ignore[misc]
    raise ExpressionError("cannot simplify unknown expression node %r" % (expr,))


_EMPTY_SUBSTITUTION: Dict[str, BVExpr] = {}


def simplify(expr: BVExpr) -> BVExpr:
    """Return an equivalent, usually smaller bit-vector expression."""

    cache = _SIMPLIFY_CACHE
    cache.maybe_evict()
    result = _rebuild(expr, cache.entries, _EMPTY_SUBSTITUTION, cache)
    assert isinstance(result, BVExpr)
    return result


def simplify_bool(expr: BoolExpr) -> BoolExpr:
    """Return an equivalent, usually smaller boolean expression."""

    cache = _SIMPLIFY_CACHE
    cache.maybe_evict()
    result = _rebuild(expr, cache.entries, _EMPTY_SUBSTITUTION, cache)
    assert isinstance(result, BoolExpr)
    return result


def substitute(expr: Expr, bindings: Mapping[str, Union[int, BVExpr]],
               widths: Mapping[str, int] = None) -> Expr:
    """Replace free variables of *expr* according to *bindings*.

    Integer bindings need the variable's width; it is taken from *widths* when
    provided, otherwise from the first occurrence of the variable inside
    *expr* (which requires the variable to actually occur).
    """

    substitution: Dict[str, BVExpr] = {}
    pending_ints: Dict[str, int] = {}
    for name, value in bindings.items():
        if isinstance(value, BVExpr):
            substitution[name] = value
        elif isinstance(value, bool):
            raise ExpressionError("refusing to substitute a Python bool for %r" % (name,))
        elif isinstance(value, int):
            if widths is not None and name in widths:
                substitution[name] = BVConst(value, widths[name])
            else:
                pending_ints[name] = value
        else:
            raise ExpressionError("unsupported substitution value %r for %r" % (value, name))
    if pending_ints:
        from repro.symbex.expr import collect_variables

        found = collect_variables(expr)
        for name, value in pending_ints.items():
            if name in found:
                substitution[name] = BVConst(value, found[name])
            # Variables not present in the expression are silently ignored;
            # models routinely bind more variables than any single constraint uses.
    return _rebuild(expr, {}, substitution)


# ---------------------------------------------------------------------------
# Concrete evaluation
# ---------------------------------------------------------------------------


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _signed(value: int, width: int) -> int:
    value = _mask(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def evaluate_bv(expr: BVExpr, assignment: Assignment,
                default: int = None) -> int:
    """Evaluate *expr* to a Python int under *assignment* (name -> int).

    Unbound variables take *default* when given, otherwise evaluation fails.

    This is the interpreted fallback; hot loops should prefer
    :func:`repro.symbex.compile.evaluate_compiled` (same semantics, one
    compile per distinct term).  The interpreter itself dispatches through a
    module-level handler table — no closures are allocated per call; the
    only per-call state is the ``id``-keyed memo dict threaded through the
    recursion (interned nodes are canonical and the tree under *expr* stays
    alive for the duration of the evaluation).
    """

    return _eval(expr, assignment, default, {})


def _eval(node: Expr, assignment: Assignment, default, cache: Dict[int, int]) -> int:
    key = id(node)
    value = cache.get(key)
    if value is None:
        handler = _EVAL_HANDLERS.get(type(node))
        if handler is None:
            raise ExpressionError("cannot evaluate unknown node %r" % (node,))
        value = handler(node, assignment, default, cache)
        cache[key] = value
    return value


def _eval_const(node, assignment, default, cache):
    return node.value


def _eval_bool_const(node, assignment, default, cache):
    return int(node.value)


def _eval_var(node, assignment, default, cache):
    if node.name in assignment:
        return _mask(assignment[node.name], node.width)
    if default is not None:
        return _mask(default, node.width)
    raise ExpressionError("no binding for variable %r during evaluation" % (node.name,))


def _eval_binop_node(node, assignment, default, cache):
    return _eval_binop(node.op, _eval(node.lhs, assignment, default, cache),
                       _eval(node.rhs, assignment, default, cache), node.width)


def _eval_unop_node(node, assignment, default, cache):
    operand = _eval(node.operand, assignment, default, cache)
    return _mask(~operand if node.op == "not" else -operand, node.width)


def _eval_extract(node, assignment, default, cache):
    return _mask(_eval(node.operand, assignment, default, cache) >> node.low,
                 node.width)


def _eval_concat(node, assignment, default, cache):
    value = 0
    for part in node.parts:
        value = (value << part.width) | _eval(part, assignment, default, cache)
    return value


def _eval_zero_ext(node, assignment, default, cache):
    return _eval(node.operand, assignment, default, cache)


def _eval_sign_ext(node, assignment, default, cache):
    return _mask(_signed(_eval(node.operand, assignment, default, cache),
                         node.operand.width), node.width)


def _eval_ite(node, assignment, default, cache):
    if _eval(node.cond, assignment, default, cache):
        return _eval(node.then, assignment, default, cache)
    return _eval(node.otherwise, assignment, default, cache)


def _eval_cmp_node(node, assignment, default, cache):
    return int(_eval_cmp(node.op, _eval(node.lhs, assignment, default, cache),
                         _eval(node.rhs, assignment, default, cache),
                         node.lhs.width))


def _eval_bool_not(node, assignment, default, cache):
    return 0 if _eval(node.operand, assignment, default, cache) else 1


def _eval_bool_and(node, assignment, default, cache):
    for operand in node.operands:
        if not _eval(operand, assignment, default, cache):
            return 0
    return 1


def _eval_bool_or(node, assignment, default, cache):
    for operand in node.operands:
        if _eval(operand, assignment, default, cache):
            return 1
    return 0


#: Per-type handlers, resolved once at import: replaces the former per-call
#: nested closures + isinstance ladder with one dict lookup per node.
_EVAL_HANDLERS = {
    BVConst: _eval_const,
    BVVar: _eval_var,
    BVBinOp: _eval_binop_node,
    BVUnOp: _eval_unop_node,
    BVExtract: _eval_extract,
    BVConcat: _eval_concat,
    BVZeroExt: _eval_zero_ext,
    BVSignExt: _eval_sign_ext,
    BVIte: _eval_ite,
    BVCmp: _eval_cmp_node,
    BoolConst: _eval_bool_const,
    BoolNot: _eval_bool_not,
    BoolAnd: _eval_bool_and,
    BoolOr: _eval_bool_or,
}


def _eval_binop(op: str, lhs: int, rhs: int, width: int) -> int:
    if op == "add":
        return _mask(lhs + rhs, width)
    if op == "sub":
        return _mask(lhs - rhs, width)
    if op == "mul":
        return _mask(lhs * rhs, width)
    if op == "udiv":
        return _mask(lhs // rhs, width) if rhs else _mask(-1, width)
    if op == "urem":
        return _mask(lhs % rhs, width) if rhs else lhs
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return _mask(lhs << rhs, width) if rhs < width else 0
    if op == "lshr":
        return lhs >> rhs if rhs < width else 0
    if op == "ashr":
        return _mask(_signed(lhs, width) >> min(rhs, width - 1), width)
    raise ExpressionError("unknown operator %r" % (op,))


def _eval_cmp(op: str, lhs: int, rhs: int, width: int) -> bool:
    if op == "eq":
        return lhs == rhs
    if op == "ne":
        return lhs != rhs
    if op == "ult":
        return lhs < rhs
    if op == "ule":
        return lhs <= rhs
    if op == "slt":
        return _signed(lhs, width) < _signed(rhs, width)
    if op == "sle":
        return _signed(lhs, width) <= _signed(rhs, width)
    raise ExpressionError("unknown comparison %r" % (op,))


def evaluate_bool(expr: BoolExpr, assignment: Assignment,
                  default: int = None) -> bool:
    """Evaluate a boolean expression to a Python bool under *assignment*."""

    if isinstance(expr, BoolConst):
        return expr.value
    return bool(evaluate_bv(expr, assignment, default=default))  # type: ignore[arg-type]
