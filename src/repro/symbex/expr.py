"""Bit-vector and boolean expression ASTs.

Agent code in this repository computes on :class:`BVExpr` values exactly as it
would on Python integers: the usual arithmetic, bitwise and comparison
operators are overloaded and produce new expression nodes.  When every operand
is concrete, operators fold to constants immediately, so purely concrete runs
carry no symbolic overhead.

Design notes
------------

* Widths are explicit and checked.  OpenFlow fields are 8/16/32/48/64-bit
  unsigned quantities; all comparisons default to *unsigned* semantics, with
  signed variants available as methods (``slt``, ``sle`` ...).
* Every node is **hash-consed**: construction interns the term in a global
  :class:`InternTable`, so two structurally identical terms built through any
  code path are the *same object* and ``a is b`` decides structural equality
  in O(1).  Caches throughout the solver stack key on ``id(expr)`` instead of
  the nested :meth:`Expr.key` tuples (which are still available, computed at
  most once per distinct term, and remain the cross-process/cross-generation
  fallback used by :func:`structurally_equal`).
* ``BVExpr.__eq__`` is *symbolic*: it returns a :class:`BoolExpr`.  Never use
  raw ``BVExpr`` objects as dictionary keys — use ``id(expr)`` (keeping a
  reference to the expression alive) or ``expr.key()``.
* Branching on a symbolic :class:`BoolExpr` (``if cond:``) calls back into the
  active exploration engine through a registered hook.  Outside an exploration
  context this raises :class:`~repro.errors.NoActiveEngineError` so that bugs
  where symbolic values leak into plain code are caught immediately.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConcretizationError,
    ExpressionError,
    NoActiveEngineError,
    WidthMismatchError,
)

__all__ = [
    "Expr",
    "InternTable",
    "intern_table",
    "BVExpr",
    "BVConst",
    "BVVar",
    "BVBinOp",
    "BVUnOp",
    "BVExtract",
    "BVConcat",
    "BVZeroExt",
    "BVSignExt",
    "BVIte",
    "BoolExpr",
    "BoolConst",
    "BoolNot",
    "BoolAnd",
    "BoolOr",
    "BVCmp",
    "TRUE",
    "FALSE",
    "BitVec",
    "Bool",
    "bv",
    "bvvar",
    "ite",
    "concat",
    "extract",
    "zero_extend",
    "sign_extend",
    "bool_and",
    "bool_or",
    "bool_not",
    "is_concrete",
    "concrete_value",
    "structurally_equal",
    "expr_size",
    "collect_variables",
    "set_branch_hook",
    "reset_branch_hook",
    "BVLike",
]

#: Values accepted wherever a bit-vector operand is expected.
BVLike = Union["BVExpr", int]

# ---------------------------------------------------------------------------
# Branch hook — installed by the exploration engine.
# ---------------------------------------------------------------------------


def _no_engine_branch(cond: "BoolExpr") -> bool:
    raise NoActiveEngineError(
        "attempted to branch on the symbolic condition %r outside of an "
        "exploration context; wrap the computation in Engine.explore() or "
        "concretize the value first" % (cond,)
    )


# The hook is thread-local so that several engines may explore concurrently
# (one per worker thread of a Campaign) without observing each other's hook.
_branch_hooks = threading.local()


def _current_branch_hook() -> Callable[["BoolExpr"], bool]:
    return getattr(_branch_hooks, "hook", _no_engine_branch)


def set_branch_hook(hook: Callable[["BoolExpr"], bool]) -> Callable[["BoolExpr"], bool]:
    """Install *hook* as this thread's handler for truth-testing symbolic booleans.

    Returns the previously installed hook so callers can restore it.
    """

    previous = _current_branch_hook()
    _branch_hooks.hook = hook
    return previous


def reset_branch_hook(previous: Optional[Callable[["BoolExpr"], bool]] = None) -> None:
    """Restore *previous* (or the default error-raising hook) on this thread."""

    _branch_hooks.hook = previous if previous is not None else _no_engine_branch


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------


class InternTable:
    """The hash-consing table behind every expression constructor.

    Keys are shallow tuples ``(cls, ...scalars..., id(child), ...)`` — because
    children are themselves interned (and kept alive by the table), a child's
    ``id`` is a canonical O(1) stand-in for its whole subtree, so interning a
    node costs one small-tuple hash instead of a deep structural one.

    The table holds strong references to every distinct term, which is what
    makes ``id``-keyed caches elsewhere safe (a live id is never recycled).
    Long multi-scale campaigns can :meth:`reset` it between scales to release
    the accumulated terms; terms from different generations remain *correct*
    (``structurally_equal`` falls back to key comparison) but are no longer
    pointer-identical.

    Thread-safety: the single mutating operation is ``dict.setdefault``,
    which is atomic under the GIL; the hit/miss counters are best-effort
    under concurrent construction.
    """

    __slots__ = ("_terms", "hits", "misses")

    def __init__(self) -> None:
        self._terms: dict = {}
        self.hits = 0
        self.misses = 0

    def _intern(self, key: tuple, candidate: "Expr") -> "Expr":
        interned = self._terms.setdefault(key, candidate)
        if interned is candidate:
            self.misses += 1  # soft-lint: disable=unlocked-shared-state -- counters are documented best-effort; setdefault is the GIL-atomic mutation
        else:
            self.hits += 1  # soft-lint: disable=unlocked-shared-state -- counters are documented best-effort; setdefault is the GIL-atomic mutation
        return interned

    @property
    def distinct_terms(self) -> int:
        return len(self._terms)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def memory_bytes(self) -> int:
        """Approximate retained size of the table (keys + term objects)."""

        import sys

        total = sys.getsizeof(self._terms)
        for key, term in list(self._terms.items()):
            total += sys.getsizeof(key) + sys.getsizeof(term)
        return total

    def stats_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "distinct_terms": self.distinct_terms,
            "hit_rate": self.hit_rate,
            "memory_bytes": self.memory_bytes(),
        }

    def reset(self) -> None:
        """Drop every interned term (a new *generation*) and zero the counters.

        The module-level ``TRUE``/``FALSE`` singletons are re-seeded so
        boolean constants stay pointer-identical across generations.
        """

        # reset() is a documented generation boundary, called only from the
        # one campaign that owns the process's exploration life cycle —
        # never concurrently with construction.
        self._terms.clear()  # soft-lint: disable=unlocked-shared-state -- reset is a single-threaded generation boundary (see Campaign.reset_intern)
        self.hits = 0  # soft-lint: disable=unlocked-shared-state -- reset is a single-threaded generation boundary (see Campaign.reset_intern)
        self.misses = 0  # soft-lint: disable=unlocked-shared-state -- reset is a single-threaded generation boundary (see Campaign.reset_intern)
        for singleton in (globals().get("TRUE"), globals().get("FALSE")):
            if singleton is not None:
                # soft-lint: disable=unlocked-shared-state -- reset is a single-threaded generation boundary (see Campaign.reset_intern)
                self._terms[(BoolConst, singleton.value)] = singleton


_INTERN = InternTable()
#: Hot-path alias: constructor lookups go straight to the backing dict.
_TERMS = _INTERN._terms


def intern_table() -> InternTable:
    """The process-wide expression intern table (stats / reset live here)."""

    return _INTERN


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


class Expr:
    """Common base class of bit-vector and boolean expressions."""

    __slots__ = ("_key", "_hash")

    def key(self) -> tuple:
        """Return a hashable nested tuple uniquely describing this term."""

        key = getattr(self, "_key", None)
        if key is None:
            key = self._compute_key()
            object.__setattr__(self, "_key", key)
        return key

    def _compute_key(self) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Return the immediate sub-expressions (possibly empty)."""

        return ()

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash(self.key())
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return self.pretty()

    def pretty(self) -> str:
        """Human readable rendering of the expression."""

        raise NotImplementedError


def structurally_equal(a: Expr, b: Expr) -> bool:
    """True when *a* and *b* denote the same term (structural identity).

    With hash-consing this is pointer equality for terms of the same intern
    generation; the key comparison only runs for terms that straddle an
    :meth:`InternTable.reset` (or were built in another process).
    """

    return a is b or a.key() == b.key()


def expr_size(expr: Expr) -> int:
    """Number of distinct operator nodes in *expr*, counting shared subterms once.

    This is the metric the paper calls "constraint size" (number of boolean
    operations in a path condition).
    """

    seen = set()
    stack = [expr]
    count = 0
    while stack:
        node = stack.pop()
        # Interning makes id() the structural identity of a live node; the
        # whole tree is pinned by *expr* for the duration of the walk.
        k = id(node)
        if k in seen:
            continue
        seen.add(k)
        count += 1
        stack.extend(node.children())
    return count


def collect_variables(expr: Expr) -> dict:
    """Return a mapping ``name -> width`` of every free variable in *expr*."""

    variables: dict = {}
    seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        k = id(node)
        if k in seen:
            continue
        seen.add(k)
        if isinstance(node, BVVar):
            existing = variables.get(node.name)
            if existing is not None and existing != node.width:
                raise ExpressionError(
                    "variable %r used with widths %d and %d"
                    % (node.name, existing, node.width)
                )
            variables[node.name] = node.width
        stack.extend(node.children())
    return variables


# ---------------------------------------------------------------------------
# Bit-vector expressions
# ---------------------------------------------------------------------------


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _to_signed(value: int, width: int) -> int:
    value = _mask(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def _check_width(width: int) -> None:
    if not isinstance(width, int) or width <= 0:
        raise ExpressionError("bit-vector width must be a positive integer, got %r" % (width,))


class BVExpr(Expr):
    """A fixed-width unsigned bit-vector expression.

    Concrete subclasses construct through ``__new__`` and intern the node in
    the global :class:`InternTable`; ``width`` is set by each subclass.
    """

    __slots__ = ("width",)

    # -- coercion helpers -------------------------------------------------

    def _coerce(self, other: BVLike) -> "BVExpr":
        if isinstance(other, BVExpr):
            if other.width != self.width:
                raise WidthMismatchError(
                    "cannot combine %d-bit and %d-bit values (%r, %r)"
                    % (self.width, other.width, self, other)
                )
            return other
        if isinstance(other, bool):
            # Accidental bool arithmetic is almost always a bug in agent code.
            raise ExpressionError("cannot combine a bit-vector with a Python bool")
        if isinstance(other, int):
            return BVConst(other, self.width)
        return NotImplemented  # type: ignore[return-value]

    # -- concrete access ---------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, BVConst)

    def as_int(self) -> int:
        """Return the concrete value, or raise :class:`ConcretizationError`."""

        raise ConcretizationError("value %r is symbolic and has no single concrete value" % (self,))

    def __int__(self) -> int:
        return self.as_int()

    def __index__(self) -> int:
        return self.as_int()

    def __bool__(self) -> bool:
        return bool(self != 0)

    # -- arithmetic --------------------------------------------------------

    def _binop(self, op: str, other: BVLike, swapped: bool = False) -> "BVExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        lhs: BVExpr = self
        if swapped:
            lhs, rhs = rhs, lhs
        return _make_binop(op, lhs, rhs)

    def __add__(self, other: BVLike) -> "BVExpr":
        return self._binop("add", other)

    def __radd__(self, other: BVLike) -> "BVExpr":
        return self._binop("add", other, swapped=True)

    def __sub__(self, other: BVLike) -> "BVExpr":
        return self._binop("sub", other)

    def __rsub__(self, other: BVLike) -> "BVExpr":
        return self._binop("sub", other, swapped=True)

    def __mul__(self, other: BVLike) -> "BVExpr":
        return self._binop("mul", other)

    def __rmul__(self, other: BVLike) -> "BVExpr":
        return self._binop("mul", other, swapped=True)

    def __and__(self, other: BVLike) -> "BVExpr":
        return self._binop("and", other)

    def __rand__(self, other: BVLike) -> "BVExpr":
        return self._binop("and", other, swapped=True)

    def __or__(self, other: BVLike) -> "BVExpr":
        return self._binop("or", other)

    def __ror__(self, other: BVLike) -> "BVExpr":
        return self._binop("or", other, swapped=True)

    def __xor__(self, other: BVLike) -> "BVExpr":
        return self._binop("xor", other)

    def __rxor__(self, other: BVLike) -> "BVExpr":
        return self._binop("xor", other, swapped=True)

    def __lshift__(self, other: BVLike) -> "BVExpr":
        return self._binop("shl", other)

    def __rshift__(self, other: BVLike) -> "BVExpr":
        return self._binop("lshr", other)

    def __invert__(self) -> "BVExpr":
        return _make_unop("not", self)

    def __neg__(self) -> "BVExpr":
        return _make_unop("neg", self)

    # -- comparisons (unsigned by default) ---------------------------------

    def __eq__(self, other: object) -> "BoolExpr":  # type: ignore[override]
        if not isinstance(other, (BVExpr, int)) or isinstance(other, bool):
            return NotImplemented  # type: ignore[return-value]
        return _make_cmp("eq", self, self._coerce(other))

    def __ne__(self, other: object) -> "BoolExpr":  # type: ignore[override]
        if not isinstance(other, (BVExpr, int)) or isinstance(other, bool):
            return NotImplemented  # type: ignore[return-value]
        return _make_cmp("ne", self, self._coerce(other))

    def __lt__(self, other: BVLike) -> "BoolExpr":
        return _make_cmp("ult", self, self._coerce(other))

    def __le__(self, other: BVLike) -> "BoolExpr":
        return _make_cmp("ule", self, self._coerce(other))

    def __gt__(self, other: BVLike) -> "BoolExpr":
        return _make_cmp("ult", self._coerce(other), self)

    def __ge__(self, other: BVLike) -> "BoolExpr":
        return _make_cmp("ule", self._coerce(other), self)

    def slt(self, other: BVLike) -> "BoolExpr":
        """Signed less-than."""

        return _make_cmp("slt", self, self._coerce(other))

    def sle(self, other: BVLike) -> "BoolExpr":
        """Signed less-or-equal."""

        return _make_cmp("sle", self, self._coerce(other))

    def sgt(self, other: BVLike) -> "BoolExpr":
        """Signed greater-than."""

        return _make_cmp("slt", self._coerce(other), self)

    def sge(self, other: BVLike) -> "BoolExpr":
        """Signed greater-or-equal."""

        return _make_cmp("sle", self._coerce(other), self)

    # -- structural helpers -------------------------------------------------

    def extract(self, high: int, low: int) -> "BVExpr":
        """Return bits ``high..low`` (inclusive) as a ``high-low+1``-bit value."""

        return extract(self, high, low)

    def zext(self, width: int) -> "BVExpr":
        """Zero-extend to *width* bits."""

        return zero_extend(self, width)

    def sext(self, width: int) -> "BVExpr":
        """Sign-extend to *width* bits."""

        return sign_extend(self, width)


class BVConst(BVExpr):
    """A concrete bit-vector constant."""

    __slots__ = ("value",)

    def __new__(cls, value: int, width: int) -> "BVConst":
        _check_width(width)
        if not isinstance(value, int):
            raise ExpressionError("constant value must be an int, got %r" % (value,))
        value = value & ((1 << width) - 1)
        key = (cls, width, value)
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.width = width
        self.value = value
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVConst, (self.value, self.width))

    def as_int(self) -> int:
        return self.value

    def as_signed_int(self) -> int:
        return _to_signed(self.value, self.width)

    def _compute_key(self) -> tuple:
        return ("const", self.width, self.value)

    def pretty(self) -> str:
        if self.width % 4 == 0:
            return "0x%0*x[%d]" % (self.width // 4, self.value, self.width)
        return "%d[%d]" % (self.value, self.width)


class BVVar(BVExpr):
    """A free symbolic variable."""

    __slots__ = ("name",)

    def __new__(cls, name: str, width: int) -> "BVVar":
        # Validate BEFORE the cache lookup: scalar key components hash by
        # value, so e.g. a float 8.0 width would otherwise silently hit the
        # entry interned for the valid int 8.
        _check_width(width)
        if not name:
            raise ExpressionError("variable name must be non-empty")
        key = (cls, name, width)
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.width = width
        self.name = name
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVVar, (self.name, self.width))

    def _compute_key(self) -> tuple:
        return ("var", self.width, self.name)

    def pretty(self) -> str:
        return "%s[%d]" % (self.name, self.width)


_BINOPS = frozenset(
    {"add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr", "ashr"}
)


class BVBinOp(BVExpr):
    """A binary operation over two same-width bit-vectors."""

    __slots__ = ("op", "lhs", "rhs")

    def __new__(cls, op: str, lhs: BVExpr, rhs: BVExpr) -> "BVBinOp":
        key = (cls, op, id(lhs), id(rhs))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if op not in _BINOPS:
            raise ExpressionError("unknown bit-vector binary operator %r" % (op,))
        if lhs.width != rhs.width:
            raise WidthMismatchError(
                "operands of %s must share a width: %d vs %d" % (op, lhs.width, rhs.width)
            )
        self = object.__new__(cls)
        self.width = lhs.width
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVBinOp, (self.op, self.lhs, self.rhs))

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _compute_key(self) -> tuple:
        return ("binop", self.op, self.width, self.lhs.key(), self.rhs.key())

    def pretty(self) -> str:
        return "(%s %s %s)" % (self.lhs.pretty(), self.op, self.rhs.pretty())


class BVUnOp(BVExpr):
    """A unary bit-vector operation (bitwise not / arithmetic negation)."""

    __slots__ = ("op", "operand")

    def __new__(cls, op: str, operand: BVExpr) -> "BVUnOp":
        key = (cls, op, id(operand))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if op not in ("not", "neg"):
            raise ExpressionError("unknown bit-vector unary operator %r" % (op,))
        self = object.__new__(cls)
        self.width = operand.width
        self.op = op
        self.operand = operand
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVUnOp, (self.op, self.operand))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _compute_key(self) -> tuple:
        return ("unop", self.op, self.width, self.operand.key())

    def pretty(self) -> str:
        symbol = "~" if self.op == "not" else "-"
        return "%s%s" % (symbol, self.operand.pretty())


class BVExtract(BVExpr):
    """Bits ``high..low`` (inclusive) of a wider expression."""

    __slots__ = ("operand", "high", "low")

    def __new__(cls, operand: BVExpr, high: int, low: int) -> "BVExtract":
        # Validate before the lookup: high/low hash by value in the key
        # (8.0 == 8), so invalid numeric types must not reach the cache.
        if not (isinstance(high, int) and isinstance(low, int)
                and 0 <= low <= high < operand.width):
            raise ExpressionError(
                "invalid extract [%s:%s] of a %d-bit value" % (high, low, operand.width)
            )
        key = (cls, high, low, id(operand))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.width = high - low + 1
        self.operand = operand
        self.high = high
        self.low = low
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVExtract, (self.operand, self.high, self.low))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _compute_key(self) -> tuple:
        return ("extract", self.high, self.low, self.operand.key())

    def pretty(self) -> str:
        return "%s[%d:%d]" % (self.operand.pretty(), self.high, self.low)


class BVConcat(BVExpr):
    """Concatenation of bit-vectors; the first part holds the most significant bits."""

    __slots__ = ("parts",)

    def __new__(cls, parts: Sequence[BVExpr]) -> "BVConcat":
        parts = tuple(parts)
        key = (cls,) + tuple(map(id, parts))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if len(parts) < 2:
            raise ExpressionError("concat requires at least two parts")
        self = object.__new__(cls)
        self.width = sum(p.width for p in parts)
        self.parts = parts
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVConcat, (self.parts,))

    def children(self) -> Tuple[Expr, ...]:
        return self.parts

    def _compute_key(self) -> tuple:
        return ("concat",) + tuple(p.key() for p in self.parts)

    def pretty(self) -> str:
        return "(%s)" % " . ".join(p.pretty() for p in self.parts)


class BVZeroExt(BVExpr):
    """Zero extension of a narrower expression."""

    __slots__ = ("operand",)

    def __new__(cls, operand: BVExpr, width: int) -> "BVZeroExt":
        _check_width(width)  # before the lookup: width hashes by value
        if width <= operand.width:
            raise ExpressionError(
                "zero-extend target width %d must exceed operand width %d"
                % (width, operand.width)
            )
        key = (cls, width, id(operand))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.width = width
        self.operand = operand
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVZeroExt, (self.operand, self.width))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _compute_key(self) -> tuple:
        return ("zext", self.width, self.operand.key())

    def pretty(self) -> str:
        return "zext%d(%s)" % (self.width, self.operand.pretty())


class BVSignExt(BVExpr):
    """Sign extension of a narrower expression."""

    __slots__ = ("operand",)

    def __new__(cls, operand: BVExpr, width: int) -> "BVSignExt":
        _check_width(width)  # before the lookup: width hashes by value
        if width <= operand.width:
            raise ExpressionError(
                "sign-extend target width %d must exceed operand width %d"
                % (width, operand.width)
            )
        key = (cls, width, id(operand))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.width = width
        self.operand = operand
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVSignExt, (self.operand, self.width))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _compute_key(self) -> tuple:
        return ("sext", self.width, self.operand.key())

    def pretty(self) -> str:
        return "sext%d(%s)" % (self.width, self.operand.pretty())


class BVIte(BVExpr):
    """If-then-else over bit-vectors."""

    __slots__ = ("cond", "then", "otherwise")

    def __new__(cls, cond: "BoolExpr", then: BVExpr, otherwise: BVExpr) -> "BVIte":
        key = (cls, id(cond), id(then), id(otherwise))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if then.width != otherwise.width:
            raise WidthMismatchError(
                "ite branches must share a width: %d vs %d" % (then.width, otherwise.width)
            )
        self = object.__new__(cls)
        self.width = then.width
        self.cond = cond
        self.then = then
        self.otherwise = otherwise
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVIte, (self.cond, self.then, self.otherwise))

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def _compute_key(self) -> tuple:
        return ("ite", self.cond.key(), self.then.key(), self.otherwise.key())

    def pretty(self) -> str:
        return "ite(%s, %s, %s)" % (
            self.cond.pretty(),
            self.then.pretty(),
            self.otherwise.pretty(),
        )


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------


class BoolExpr(Expr):
    """A boolean expression over bit-vector atoms."""

    __slots__ = ()

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, BoolConst)

    def as_bool(self) -> bool:
        raise ConcretizationError("condition %r is symbolic" % (self,))

    def __bool__(self) -> bool:
        if isinstance(self, BoolConst):
            return self.value
        return _current_branch_hook()(self)

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return bool_and(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return bool_or(self, other)

    def __invert__(self) -> "BoolExpr":
        return bool_not(self)

    # Structural equality (note: unlike BVExpr, == on BoolExpr is *not* symbolic).
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BoolExpr):
            return NotImplemented
        return self.key() == other.key()

    def __ne__(self, other: object) -> bool:
        if self is other:
            return False
        if not isinstance(other, BoolExpr):
            return NotImplemented
        return self.key() != other.key()

    __hash__ = Expr.__hash__


class BoolConst(BoolExpr):
    """The constants ``TRUE`` and ``FALSE``."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "BoolConst":
        value = bool(value)
        key = (cls, value)
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.value = value
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BoolConst, (self.value,))

    def as_bool(self) -> bool:
        return self.value

    def _compute_key(self) -> tuple:
        return ("bool", self.value)

    def pretty(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class BoolNot(BoolExpr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __new__(cls, operand: BoolExpr) -> "BoolNot":
        key = (cls, id(operand))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        self = object.__new__(cls)
        self.operand = operand
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BoolNot, (self.operand,))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _compute_key(self) -> tuple:
        return ("not", self.operand.key())

    def pretty(self) -> str:
        return "!%s" % (self.operand.pretty(),)


class _BoolNary(BoolExpr):
    __slots__ = ("operands",)

    _NAME = "?"

    def __new__(cls, operands: Sequence[BoolExpr]) -> "_BoolNary":
        operands = tuple(operands)
        key = (cls,) + tuple(map(id, operands))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if len(operands) < 2:
            raise ExpressionError("%s requires at least two operands" % cls._NAME)
        self = object.__new__(cls)
        self.operands = operands
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (type(self), (self.operands,))

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def _compute_key(self) -> tuple:
        return (self._NAME,) + tuple(o.key() for o in self.operands)

    def pretty(self) -> str:
        joiner = " %s " % ("&&" if self._NAME == "and" else "||")
        return "(%s)" % joiner.join(o.pretty() for o in self.operands)


class BoolAnd(_BoolNary):
    """N-ary conjunction."""

    __slots__ = ()
    _NAME = "and"


class BoolOr(_BoolNary):
    """N-ary disjunction."""

    __slots__ = ()
    _NAME = "or"


_CMPS = frozenset({"eq", "ne", "ult", "ule", "slt", "sle"})


class BVCmp(BoolExpr):
    """A comparison atom between two same-width bit-vectors."""

    __slots__ = ("op", "lhs", "rhs")

    def __new__(cls, op: str, lhs: BVExpr, rhs: BVExpr) -> "BVCmp":
        key = (cls, op, id(lhs), id(rhs))
        cached = _TERMS.get(key)
        if cached is not None:
            _INTERN.hits += 1
            return cached
        if op not in _CMPS:
            raise ExpressionError("unknown comparison operator %r" % (op,))
        if lhs.width != rhs.width:
            raise WidthMismatchError(
                "comparison operands must share a width: %d vs %d" % (lhs.width, rhs.width)
            )
        self = object.__new__(cls)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        return _INTERN._intern(key, self)

    def __reduce__(self):
        return (BVCmp, (self.op, self.lhs, self.rhs))

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _compute_key(self) -> tuple:
        return ("cmp", self.op, self.lhs.key(), self.rhs.key())

    def pretty(self) -> str:
        symbols = {"eq": "==", "ne": "!=", "ult": "<u", "ule": "<=u", "slt": "<s", "sle": "<=s"}
        return "(%s %s %s)" % (self.lhs.pretty(), symbols[self.op], self.rhs.pretty())


# Convenience aliases used in type annotations throughout the code base.
BitVec = BVExpr
Bool = BoolExpr


# ---------------------------------------------------------------------------
# Smart constructors (perform constant folding and light normalization)
# ---------------------------------------------------------------------------


def bv(value: BVLike, width: int) -> BVExpr:
    """Coerce *value* into a *width*-bit expression (constants are masked)."""

    if isinstance(value, BVExpr):
        if value.width == width:
            return value
        if value.width < width:
            return zero_extend(value, width)
        return extract(value, width - 1, 0)
    if isinstance(value, bool):
        raise ExpressionError("refusing to build a bit-vector from a Python bool")
    if isinstance(value, int):
        return BVConst(value, width)
    raise ExpressionError("cannot build a bit-vector from %r" % (value,))


def bvvar(name: str, width: int) -> BVVar:
    """Create a fresh free variable."""

    return BVVar(name, width)


def is_concrete(value: object) -> bool:
    """True for Python ints, concrete bit-vectors and concrete booleans."""

    if isinstance(value, (int, bytes)):
        return True
    if isinstance(value, BVExpr):
        return isinstance(value, BVConst)
    if isinstance(value, BoolExpr):
        return isinstance(value, BoolConst)
    return False


def concrete_value(value: object) -> int:
    """Extract the concrete integer behind *value* or raise ConcretizationError."""

    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, BVConst):
        return value.value
    if isinstance(value, BVExpr):
        raise ConcretizationError("value %r is symbolic" % (value,))
    raise ConcretizationError("cannot interpret %r as a concrete integer" % (value,))


def _fold_binop(op: str, lhs: int, rhs: int, width: int) -> int:
    if op == "add":
        return _mask(lhs + rhs, width)
    if op == "sub":
        return _mask(lhs - rhs, width)
    if op == "mul":
        return _mask(lhs * rhs, width)
    if op == "udiv":
        return _mask(lhs // rhs, width) if rhs != 0 else _mask(-1, width)
    if op == "urem":
        return _mask(lhs % rhs, width) if rhs != 0 else lhs
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return _mask(lhs << rhs, width) if rhs < width else 0
    if op == "lshr":
        return lhs >> rhs if rhs < width else 0
    if op == "ashr":
        signed = _to_signed(lhs, width)
        shift = min(rhs, width - 1)
        return _mask(signed >> shift, width)
    raise ExpressionError("unknown operator %r" % (op,))


def _make_binop(op: str, lhs: BVExpr, rhs: BVExpr) -> BVExpr:
    if isinstance(lhs, BVConst) and isinstance(rhs, BVConst):
        return BVConst(_fold_binop(op, lhs.value, rhs.value, lhs.width), lhs.width)
    # Identity / absorbing element shortcuts keep path conditions small.
    if isinstance(rhs, BVConst):
        if rhs.value == 0 and op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
            return lhs
        if rhs.value == 0 and op in ("and", "mul"):
            return BVConst(0, lhs.width)
        if rhs.value == _mask(-1, lhs.width) and op == "and":
            return lhs
        if rhs.value == 1 and op == "mul":
            return lhs
    if isinstance(lhs, BVConst):
        if lhs.value == 0 and op in ("add", "or", "xor"):
            return rhs
        if lhs.value == 0 and op in ("and", "mul", "shl", "lshr", "ashr"):
            return BVConst(0, lhs.width)
        if lhs.value == _mask(-1, lhs.width) and op == "and":
            return rhs
        if lhs.value == 1 and op == "mul":
            return rhs
    return BVBinOp(op, lhs, rhs)


def _make_unop(op: str, operand: BVExpr) -> BVExpr:
    if isinstance(operand, BVConst):
        if op == "not":
            return BVConst(~operand.value, operand.width)
        return BVConst(-operand.value, operand.width)
    if isinstance(operand, BVUnOp) and operand.op == op:
        # ~~x == x and -(-x) == x
        return operand.operand
    return BVUnOp(op, operand)


def _fold_cmp(op: str, lhs: BVConst, rhs: BVConst) -> BoolConst:
    if op == "eq":
        return TRUE if lhs.value == rhs.value else FALSE
    if op == "ne":
        return TRUE if lhs.value != rhs.value else FALSE
    if op == "ult":
        return TRUE if lhs.value < rhs.value else FALSE
    if op == "ule":
        return TRUE if lhs.value <= rhs.value else FALSE
    if op == "slt":
        return TRUE if lhs.as_signed_int() < rhs.as_signed_int() else FALSE
    if op == "sle":
        return TRUE if lhs.as_signed_int() <= rhs.as_signed_int() else FALSE
    raise ExpressionError("unknown comparison %r" % (op,))


def _make_cmp(op: str, lhs: BVExpr, rhs: BVExpr) -> BoolExpr:
    if isinstance(lhs, BVConst) and isinstance(rhs, BVConst):
        return _fold_cmp(op, lhs, rhs)
    if structurally_equal(lhs, rhs):
        if op in ("eq", "ule", "sle"):
            return TRUE
        if op in ("ne", "ult", "slt"):
            return FALSE
    return BVCmp(op, lhs, rhs)


def ite(cond: BoolExpr, then: BVLike, otherwise: BVLike) -> BVExpr:
    """Bit-vector if-then-else; folds when the condition is concrete."""

    if not isinstance(cond, BoolExpr):
        raise ExpressionError("ite condition must be a BoolExpr, got %r" % (cond,))
    if isinstance(then, int) and isinstance(otherwise, int):
        raise ExpressionError("at least one ite branch must be a bit-vector to fix the width")
    if isinstance(then, int):
        then = BVConst(then, otherwise.width)  # type: ignore[union-attr]
    if isinstance(otherwise, int):
        otherwise = BVConst(otherwise, then.width)
    if isinstance(cond, BoolConst):
        return then if cond.value else otherwise
    if structurally_equal(then, otherwise):
        return then
    return BVIte(cond, then, otherwise)


def concat(*parts: BVExpr) -> BVExpr:
    """Concatenate bit-vectors, most significant part first."""

    flattened: list = []
    for part in parts:
        if not isinstance(part, BVExpr):
            raise ExpressionError("concat operands must be bit-vectors, got %r" % (part,))
        if isinstance(part, BVConcat):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        raise ExpressionError("concat requires at least one operand")
    if len(flattened) == 1:
        return flattened[0]
    # Merge adjacent constants and re-join adjacent extracts of the same term
    # (so a field that was split into bytes by a writer re-emerges intact).
    merged: list = [flattened[0]]
    for part in flattened[1:]:
        last = merged[-1]
        if isinstance(last, BVConst) and isinstance(part, BVConst):
            merged[-1] = BVConst((last.value << part.width) | part.value, last.width + part.width)
            continue
        if (
            isinstance(last, BVExtract)
            and isinstance(part, BVExtract)
            and structurally_equal(last.operand, part.operand)
            and last.low == part.high + 1
        ):
            merged[-1] = extract(last.operand, last.high, part.low)
            continue
        merged.append(part)
    if len(merged) == 1:
        return merged[0]
    return BVConcat(merged)


def extract(operand: BVExpr, high: int, low: int) -> BVExpr:
    """Return bits ``high..low`` (inclusive)."""

    if not isinstance(operand, BVExpr):
        raise ExpressionError("extract operand must be a bit-vector, got %r" % (operand,))
    if high == operand.width - 1 and low == 0:
        return operand
    if isinstance(operand, BVConst):
        return BVConst(operand.value >> low, high - low + 1)
    if isinstance(operand, BVExtract):
        return extract(operand.operand, operand.low + high, operand.low + low)
    if isinstance(operand, BVConcat):
        # Try to satisfy the extract from a single part to keep terms small.
        offset = 0
        for part in reversed(operand.parts):
            if low >= offset and high < offset + part.width:
                return extract(part, high - offset, low - offset)
            offset += part.width
    if isinstance(operand, (BVZeroExt,)):
        if high < operand.operand.width:
            return extract(operand.operand, high, low)
        if low >= operand.operand.width:
            return BVConst(0, high - low + 1)
    return BVExtract(operand, high, low)


def zero_extend(operand: BVExpr, width: int) -> BVExpr:
    """Zero-extend *operand* to *width* bits (no-op when already that wide)."""

    if operand.width == width:
        return operand
    if operand.width > width:
        raise ExpressionError(
            "cannot zero-extend a %d-bit value to %d bits" % (operand.width, width)
        )
    if isinstance(operand, BVConst):
        return BVConst(operand.value, width)
    return BVZeroExt(operand, width)


def sign_extend(operand: BVExpr, width: int) -> BVExpr:
    """Sign-extend *operand* to *width* bits (no-op when already that wide)."""

    if operand.width == width:
        return operand
    if operand.width > width:
        raise ExpressionError(
            "cannot sign-extend a %d-bit value to %d bits" % (operand.width, width)
        )
    if isinstance(operand, BVConst):
        return BVConst(_to_signed(operand.value, operand.width), width)
    return BVSignExt(operand, width)


def _coerce_bool(value: Union[BoolExpr, bool]) -> BoolExpr:
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise ExpressionError("expected a boolean, got %r" % (value,))


def bool_not(operand: Union[BoolExpr, bool]) -> BoolExpr:
    """Logical negation with folding and double-negation elimination."""

    operand = _coerce_bool(operand)
    if isinstance(operand, BoolConst):
        return FALSE if operand.value else TRUE
    if isinstance(operand, BoolNot):
        return operand.operand
    if isinstance(operand, BVCmp):
        negations = {"eq": "ne", "ne": "eq", "ult": None, "ule": None, "slt": None, "sle": None}
        flipped = negations[operand.op]
        if flipped is not None:
            return BVCmp(flipped, operand.lhs, operand.rhs)
        # !(a < b)  ==  b <= a ; !(a <= b) == b < a
        if operand.op == "ult":
            return BVCmp("ule", operand.rhs, operand.lhs)
        if operand.op == "ule":
            return BVCmp("ult", operand.rhs, operand.lhs)
        if operand.op == "slt":
            return BVCmp("sle", operand.rhs, operand.lhs)
        if operand.op == "sle":
            return BVCmp("slt", operand.rhs, operand.lhs)
    return BoolNot(operand)


def _nary(kind: type, absorbing: BoolConst, neutral: BoolConst,
          operands: Iterable[Union[BoolExpr, bool]]) -> BoolExpr:
    flat: list = []
    seen = set()
    for operand in operands:
        operand = _coerce_bool(operand)
        if isinstance(operand, BoolConst):
            if operand is absorbing or operand.value == absorbing.value:
                return absorbing
            continue
        if isinstance(operand, kind):
            for inner in operand.operands:  # type: ignore[attr-defined]
                if id(inner) not in seen:
                    seen.add(id(inner))
                    flat.append(inner)
            continue
        if id(operand) not in seen:
            seen.add(id(operand))
            flat.append(operand)
    if not flat:
        return neutral
    if len(flat) == 1:
        return flat[0]
    return kind(flat)


def bool_and(*operands: Union[BoolExpr, bool]) -> BoolExpr:
    """N-ary conjunction with flattening, deduplication and folding."""

    return _nary(BoolAnd, FALSE, TRUE, operands)


def bool_or(*operands: Union[BoolExpr, bool]) -> BoolExpr:
    """N-ary disjunction with flattening, deduplication and folding."""

    return _nary(BoolOr, TRUE, FALSE, operands)
