"""Incremental crosscheck solving: encode once, solve under assumptions.

Phase 2b asks up to ``|RES_A| * |RES_B|`` satisfiability questions per agent
pair, and an N-agent campaign asks them for every pair — but the group
conditions themselves only come from N groupings per test.  The legacy
pipeline pays full price per query: every pair re-simplifies, re-bit-blasts
and re-solves both conditions from scratch in a fresh SAT instance.

:class:`GroupEncoding` keeps **one** SAT instance per test.  Each output-group
condition is simplified and bit-blasted exactly once, guarded by a fresh
*activation literal* ``act`` with implications ``act -> atom`` for every
conjunct of the simplified condition.  The pair query (i, j) then becomes
``solve(assumptions=[act_i, act_j])`` on the shared instance, re-using the
shared bit-blasting structure and every clause learned while answering
earlier pairs instead of rebuilding the backend.  The interval pre-check
still short-circuits trivially-UNSAT (and concretely-verifiable SAT) pairs
without touching the SAT backend, exactly as the legacy pipeline does.

All public methods are thread-safe.  Pair queries on one engine serialize on
its lock (the shared SAT instance is stateful); a campaign's thread pool
still overlaps Phase 2b across *different* tests' engines, and the pure-
Python backend is GIL-bound either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.errors import SolverError
from repro.symbex.expr import BoolAnd, BoolConst, BoolExpr
from repro.symbex.interval import analyze_conjunction
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver.model import complete_model, require_verified
from repro.symbex.solver.sat import SATStatus
from repro.symbex.solver.solver import SatResult, SolverConfig

__all__ = ["GroupEncoding", "IncrementalStats", "PairOutcome"]


@dataclass
class IncrementalStats:
    """Counters of one :class:`GroupEncoding` engine."""

    #: Distinct group conditions bit-blasted into the shared CNF.
    groups_encoded: int = 0
    #: Conditions requested again after their first encoding (the saving).
    encoding_reuses: int = 0
    #: Queries answered by re-solving the shared instance under assumptions.
    assumption_solves: int = 0
    #: SAT instances constructed (1 per engine; the legacy path pays 1/query).
    backend_rebuilds: int = 0
    #: Pair queries decided by the interval pre-check (no SAT backend).
    interval_decides: int = 0
    #: Pair queries answered from the (condition, condition) result cache.
    pair_cache_hits: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    encode_time: float = 0.0
    solve_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "groups_encoded": self.groups_encoded,
            "encoding_reuses": self.encoding_reuses,
            "assumption_solves": self.assumption_solves,
            "backend_rebuilds": self.backend_rebuilds,
            "interval_decides": self.interval_decides,
            "pair_cache_hits": self.pair_cache_hits,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "encode_time": self.encode_time,
            "solve_time": self.solve_time,
        }


@dataclass
class _EncodedGroup:
    """One group condition installed in the shared CNF."""

    #: Assuming this literal activates the condition's clauses.
    activation: int
    #: The simplified conjuncts (used by the interval pre-check and for
    #: model verification); empty when the condition simplified to a constant.
    atoms: List[BoolExpr] = field(default_factory=list)
    trivially_false: bool = False
    #: The original condition; pins the interned term alive so the engine's
    #: id-keyed group map stays valid for the lifetime of this entry.
    condition: Optional[BoolExpr] = None


@dataclass
class PairOutcome:
    """Result of one pair query plus how it was decided."""

    result: SatResult
    #: "trivial" | "interval" | "assumption" | "pair-cache"
    via: str


class GroupEncoding:
    """Shared incremental encoding of output-group conditions for ONE test.

    Conditions from different tests use different symbolic namespaces and
    must not share an instance; :meth:`bind_test` enforces this for callers
    that hold engines in a cache.
    """

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config if config is not None else SolverConfig()
        self.stats = IncrementalStats(backend_rebuilds=1)
        self._lock = threading.RLock()
        # Activation literals need the CNF-level surface (new_var/add_clause),
        # so the engine asks for an *incremental* backend; a non-incremental
        # configured backend (interval) falls back to the reference CDCL one.
        self._backend = self.config.make_incremental_backend()
        # id-keyed: group conditions are hash-consed, so identity is
        # structural identity (each _EncodedGroup pins its condition alive).
        self._groups: Dict[int, _EncodedGroup] = {}
        self._pair_cache: Dict[FrozenSet[int], SatResult] = {}
        self._bound_test: Optional[str] = None

    # ------------------------------------------------------------------
    # Guard rails
    # ------------------------------------------------------------------

    def bind_test(self, test_key: str) -> None:
        """Pin the engine to one test; reuse across tests is an error."""

        with self._lock:
            if self._bound_test is None:
                self._bound_test = test_key
            elif self._bound_test != test_key:
                raise SolverError(
                    "GroupEncoding bound to test %r cannot crosscheck test %r; "
                    "conditions of different tests must not share one SAT "
                    "instance" % (self._bound_test, test_key))

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, condition: BoolExpr) -> _EncodedGroup:
        """Install *condition* behind an activation literal (once per key)."""

        with self._lock:
            key = id(condition)
            group = self._groups.get(key)
            if group is not None:
                self.stats.encoding_reuses += 1
                return group
            started = time.perf_counter()
            simplified = simplify_bool(condition)
            if isinstance(simplified, BoolConst):
                if simplified.value:
                    group = _EncodedGroup(activation=self._backend.true_lit,
                                          condition=condition)
                else:
                    group = _EncodedGroup(activation=self._backend.false_lit,
                                          trivially_false=True,
                                          condition=condition)
            else:
                if isinstance(simplified, BoolAnd):
                    atoms = list(simplified.operands)
                else:
                    atoms = [simplified]
                activation = self._backend.new_var()
                for atom in atoms:
                    self._backend.add_clause(
                        [-activation, self._backend.declare(atom)])
                group = _EncodedGroup(activation=activation, atoms=atoms,
                                      condition=condition)
            self._groups[key] = group
            self.stats.groups_encoded += 1
            self.stats.encode_time += time.perf_counter() - started
            return group

    # ------------------------------------------------------------------
    # Pair queries
    # ------------------------------------------------------------------

    def check_pair(self, condition_a: BoolExpr, condition_b: BoolExpr) -> PairOutcome:
        """Decide satisfiability of ``condition_a AND condition_b``."""

        with self._lock:
            group_a = self.encode(condition_a)
            group_b = self.encode(condition_b)
            started = time.perf_counter()
            try:
                return self._check_groups(group_a, group_b)
            finally:
                self.stats.solve_time += time.perf_counter() - started

    def _check_groups(self, group_a: _EncodedGroup,
                      group_b: _EncodedGroup) -> PairOutcome:
        if group_a.trivially_false or group_b.trivially_false:
            self.stats.unsat += 1
            return PairOutcome(SatResult(SATStatus.UNSAT), via="trivial")
        atoms = group_a.atoms + group_b.atoms
        if not atoms:
            self.stats.sat += 1
            return PairOutcome(SatResult(SATStatus.SAT, model={}), via="trivial")

        cache_key = frozenset((group_a.activation, group_b.activation))
        if self.config.use_cache:
            cached = self._pair_cache.get(cache_key)
            if cached is not None:
                self.stats.pair_cache_hits += 1
                return PairOutcome(SatResult(cached.status, dict(cached.model)),
                                   via="pair-cache")

        if self.config.use_interval_precheck:
            outcome = analyze_conjunction(atoms)
            if outcome.is_unsat:
                self.stats.interval_decides += 1
                self.stats.unsat += 1
                self._remember(cache_key, SatResult(SATStatus.UNSAT))
                return PairOutcome(SatResult(SATStatus.UNSAT), via="interval")
            if outcome.verified:
                self.stats.interval_decides += 1
                self.stats.sat += 1
                model = complete_model(outcome.candidate, atoms)
                self._remember(cache_key, SatResult(SATStatus.SAT, model=dict(model)))
                return PairOutcome(SatResult(SATStatus.SAT, model=model), via="interval")

        self.stats.assumption_solves += 1
        status = self._backend.check_sat(
            assumptions=[group_a.activation, group_b.activation],
            max_conflicts=self.config.max_conflicts)
        if status == SATStatus.UNKNOWN:
            # Never cached: a later call may run with a raised budget.
            self.stats.unknown += 1
            return PairOutcome(SatResult(SATStatus.UNKNOWN), via="assumption")
        if status == SATStatus.UNSAT:
            self.stats.unsat += 1
            self._remember(cache_key, SatResult(SATStatus.UNSAT))
            return PairOutcome(SatResult(SATStatus.UNSAT), via="assumption")

        model = self._backend.get_value()
        if self.config.verify_models:
            model = require_verified(model, atoms)
        else:
            model = complete_model(model, atoms)
        self.stats.sat += 1
        self._remember(cache_key, SatResult(SATStatus.SAT, model=dict(model)))
        return PairOutcome(SatResult(SATStatus.SAT, model=model), via="assumption")

    def _remember(self, cache_key: FrozenSet[int], result: SatResult) -> None:
        if self.config.use_cache:
            self._pair_cache[cache_key] = result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def group_count(self) -> int:
        with self._lock:
            return len(self._groups)

    def stats_dict(self) -> Dict[str, float]:
        """Counter snapshot plus the size of the shared backend."""

        with self._lock:
            snapshot = self.stats.as_dict()
            snapshot["sat_variables"] = self._backend.num_vars
            snapshot["sat_clauses"] = self._backend.num_clauses
            snapshot["backend_solves"] = self._backend.solves
            return snapshot
