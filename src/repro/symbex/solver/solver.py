"""Solver front-end: the STP replacement used by the rest of the library.

The :class:`Solver` answers satisfiability queries over lists of boolean
constraints (implicitly conjoined).  The pipeline is:

1. simplify every constraint (constant folding may already decide the query),
2. run the interval pre-check; a verified candidate model short-circuits SAT,
3. bit-blast the remaining constraints and run the CDCL SAT solver,
4. extract the model, verify it by concrete evaluation and return it.

Queries are cached on the identities of the (sorted) simplified constraints
— hash-consing makes identity structural, so the cache key is a tuple of
small ints instead of nested structural keys; each cached entry keeps the
constraint list alive so ids cannot be recycled.  This matters for the
crosscheck phase where many grouped conditions share clauses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    FALSE,
    TRUE,
    collect_variables,
)
from repro.symbex.interval import analyze_conjunction
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver.backends import PortfolioSolver, SolverBackend, make_backend
from repro.symbex.solver.model import complete_model, require_verified
from repro.symbex.solver.sat import SATSolver, SATStatus
from repro.testing.faults import fault_point

__all__ = ["Solver", "SolverConfig", "SolverStats", "SatResult", "merge_stat_dicts"]


def merge_stat_dicts(target: Dict[str, object], source: Dict[str, object],
                     max_keys: Sequence[str] = ("max_query_time",)
                     ) -> Dict[str, object]:
    """Fold one stats dict into *target* (shared by every stats aggregator).

    Non-numeric values keep the first one seen, *max_keys* merge as
    high-water marks, and every other number sums.  Used by the parallel
    exploration merge and the campaign-wide solver-stats rollup so gauge
    semantics live in exactly one place.
    """

    for name, value in source.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            target.setdefault(name, value)
        elif name in max_keys:
            target[name] = max(target.get(name, 0), value)
        else:
            target[name] = target.get(name, 0) + value
    return target


@dataclass
class SolverConfig:
    """Tunable knobs of the decision procedure."""

    #: Maximum number of CDCL conflicts per query before giving up (None = unlimited).
    max_conflicts: Optional[int] = 200_000
    #: Whether to run the interval pre-check before bit-blasting.
    use_interval_precheck: bool = True
    #: Whether to cache query results keyed on constraint structure.
    use_cache: bool = True
    #: Verify every SAT model by concrete evaluation (cheap; keep on).
    verify_models: bool = True
    #: SAT-core: decisions re-use each variable's last assigned polarity.
    phase_saving: bool = True
    #: SAT-core: learned-clause count triggering the first DB reduction.
    learned_db_base: int = 4000
    #: SAT-core: growth factor of the reduction threshold after each pass.
    learned_db_growth: float = 1.2
    #: SAT-core: conflicts before the first restart (geometric growth after).
    restart_first: int = 100
    #: Registered backend answering one-shot queries ("cdcl" is the reference;
    #: see :mod:`repro.symbex.solver.backends`).
    backend: str = "cdcl"
    #: Backend names raced per query; empty disables the portfolio (the
    #: single ``backend`` runs alone).
    portfolio: Tuple[str, ...] = ()
    #: Portfolio only: learn per-feature-bucket routing so interval-friendly
    #: queries go straight to the cheap word-level backend (no race).
    route_queries: bool = True

    def sat_knobs(self) -> Dict[str, object]:
        """The SAT-core knobs as ``SATSolver`` constructor kwargs."""

        return {
            "phase_saving": self.phase_saving,
            "restart_first": self.restart_first,
            "learned_db_base": self.learned_db_base,
            "learned_db_growth": self.learned_db_growth,
        }

    def make_sat_solver(self) -> SATSolver:
        """Build a :class:`SATSolver` configured with these knobs."""

        return SATSolver(**self.sat_knobs())

    def make_backend(self, name: Optional[str] = None) -> SolverBackend:
        """A fresh instance of *name* (default: the configured backend)."""

        return make_backend(name or self.backend, self.sat_knobs())

    def make_incremental_backend(self) -> SolverBackend:
        """An incremental backend for assumption-based consumers.

        The PrefixOracle / GroupEncoding machinery needs ``declare`` and the
        CNF-level surface; when the configured backend cannot provide them
        (the interval engine), fall back to the reference CDCL backend — the
        word-level engine still participates through those consumers' own
        interval pre-filters.
        """

        backend = self.make_backend()
        if not backend.incremental:
            backend = self.make_backend("cdcl")
        return backend

    def make_portfolio(self) -> Optional[PortfolioSolver]:
        """The configured :class:`PortfolioSolver`, or None when disabled."""

        if not self.portfolio:
            return None
        return PortfolioSolver(self.portfolio, factory=self.make_backend,
                               route_queries=self.route_queries)

    def backend_key(self) -> Tuple[object, ...]:
        """Identity of the decision procedure for query-cache keying.

        Two configs sharing a cache must never exchange answers produced by
        different engines or budgets: SAT models differ across backends, and
        a looser budget can turn UNKNOWN into a verdict.
        """

        return (self.backend, tuple(self.portfolio), self.route_queries,
                self.max_conflicts)


@dataclass
class SolverStats:
    """Aggregate statistics across all queries issued to one :class:`Solver`."""

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    cache_hits: int = 0
    #: UNKNOWN results deliberately not installed in the query cache (a retry
    #: with a raised conflict budget must reach the backend again).
    unknown_cache_skips: int = 0
    interval_decides: int = 0
    sat_backend_runs: int = 0
    total_time: float = 0.0
    sat_backend_time: float = 0.0
    max_query_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "cache_hits": self.cache_hits,
            "unknown_cache_skips": self.unknown_cache_skips,
            "interval_decides": self.interval_decides,
            "sat_backend_runs": self.sat_backend_runs,
            "total_time": self.total_time,
            "sat_backend_time": self.sat_backend_time,
            "max_query_time": self.max_query_time,
        }


@dataclass
class SatResult:
    """Outcome of a satisfiability query."""

    status: str
    model: Dict[str, int] = field(default_factory=dict)
    time: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status == SATStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SATStatus.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == SATStatus.UNKNOWN

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "SatResult(%s, model=%r)" % (self.status, self.model)


class Solver:
    """The decision procedure used by both the engine and the crosscheck phase."""

    def __init__(self, config: SolverConfig = None) -> None:
        self.config = config if config is not None else SolverConfig()
        self.stats = SolverStats()
        self._portfolio = self.config.make_portfolio()
        # Cache keys carry the decision-procedure identity alongside the
        # constraint ids: answers from different backends/budgets must never
        # be exchanged.  Values carry the constraint list to pin the interned
        # terms the id components refer to.
        self._backend_key = self.config.backend_key()
        self._cache: Dict[Tuple[object, ...],
                          Tuple[List[BoolExpr], SatResult]] = {}

    @property
    def portfolio(self):
        """The live :class:`PortfolioSolver`, or None when disabled."""

        return self._portfolio

    def stats_dict(self) -> Dict[str, float]:
        """Aggregate counters, including portfolio attribution when racing."""

        snapshot = self.stats.as_dict()
        if self._portfolio is not None:
            snapshot.update(self._portfolio.stats_dict())
        return snapshot

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def check(self, constraints: Iterable[BoolExpr]) -> SatResult:
        """Decide satisfiability of the conjunction of *constraints*."""

        fault_point("solver.check")
        started = time.perf_counter()
        constraints = [self._coerce(c) for c in constraints]
        result = self._check_inner(constraints)
        elapsed = time.perf_counter() - started
        result.time = elapsed
        self.stats.queries += 1
        self.stats.total_time += elapsed
        self.stats.max_query_time = max(self.stats.max_query_time, elapsed)
        if result.is_sat:
            self.stats.sat += 1
        elif result.is_unsat:
            self.stats.unsat += 1
        else:
            self.stats.unknown += 1
        return result

    def is_satisfiable(self, constraints: Iterable[BoolExpr]) -> bool:
        """Convenience wrapper; raises on an inconclusive answer."""

        result = self.check(constraints)
        if result.is_unknown:
            raise SolverError("solver gave up on the query (conflict budget exhausted)")
        return result.is_sat

    def get_model(self, constraints: Iterable[BoolExpr]) -> Optional[Dict[str, int]]:
        """Return a satisfying assignment or None when unsatisfiable."""

        result = self.check(constraints)
        if result.is_unknown:
            raise SolverError("solver gave up on the query (conflict budget exhausted)")
        return dict(result.model) if result.is_sat else None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(constraint: object) -> BoolExpr:
        if isinstance(constraint, BoolExpr):
            return constraint
        if isinstance(constraint, bool):
            return TRUE if constraint else FALSE
        raise SolverError("constraints must be BoolExpr instances, got %r" % (constraint,))

    def _check_inner(self, constraints: List[BoolExpr]) -> SatResult:
        simplified: List[BoolExpr] = []
        for constraint in constraints:
            reduced = simplify_bool(constraint)
            if isinstance(reduced, BoolConst):
                if not reduced.value:
                    return SatResult(SATStatus.UNSAT)
                continue
            # Conjunctions can be split so the interval pre-check sees atoms.
            if isinstance(reduced, BoolAnd):
                simplified.extend(reduced.operands)
            else:
                simplified.append(reduced)

        if not simplified:
            return SatResult(SATStatus.SAT, model={})

        cache_key: Optional[Tuple[object, ...]] = None
        if self.config.use_cache:
            cache_key = (self._backend_key,
                         tuple(sorted(id(c) for c in simplified)))
            cached = self._cache.get(cache_key)
            if cached is not None:
                self.stats.cache_hits += 1
                return SatResult(cached[1].status, dict(cached[1].model))

        result = self._decide(simplified)

        if cache_key is not None:
            if result.is_unknown:
                # A budget-exhausted answer is not a property of the query;
                # caching it would make a retry with a raised max_conflicts
                # return the stale UNKNOWN forever.
                self.stats.unknown_cache_skips += 1
            else:
                self._cache[cache_key] = (
                    simplified, SatResult(result.status, dict(result.model)))
        return result

    def _decide(self, constraints: List[BoolExpr]) -> SatResult:
        if self._portfolio is not None:
            # The portfolio's router owns the interval-vs-CDCL decision; the
            # inline pre-check would double-pay the interval analysis and rob
            # the routed backend of its wins.
            return self._decide_with_portfolio(constraints)

        if self.config.use_interval_precheck:
            outcome = analyze_conjunction(constraints)
            if outcome.is_unsat:
                self.stats.interval_decides += 1
                return SatResult(SATStatus.UNSAT)
            if outcome.verified:
                self.stats.interval_decides += 1
                model = complete_model(outcome.candidate, constraints)
                return SatResult(SATStatus.SAT, model=model)

        return self._decide_with_sat(constraints)

    def _decide_with_sat(self, constraints: List[BoolExpr]) -> SatResult:
        """One-shot query through a fresh instance of the configured backend."""

        started = time.perf_counter()
        self.stats.sat_backend_runs += 1
        backend = self.config.make_backend()
        for constraint in constraints:
            backend.assert_formula(constraint)
        status = backend.check_sat(max_conflicts=self.config.max_conflicts)
        self.stats.sat_backend_time += time.perf_counter() - started

        if status != SATStatus.SAT:
            return SatResult(status)
        return SatResult(SATStatus.SAT,
                         model=self._finish_model(backend.get_value(),
                                                  constraints))

    def _decide_with_portfolio(self, constraints: List[BoolExpr]) -> SatResult:
        started = time.perf_counter()
        self.stats.sat_backend_runs += 1
        answer = self._portfolio.check(constraints,
                                       max_conflicts=self.config.max_conflicts)
        self.stats.sat_backend_time += time.perf_counter() - started

        if answer.status != SATStatus.SAT:
            return SatResult(answer.status)
        if answer.verified:
            # The winning backend already checked the model by concrete
            # evaluation (interval wins) — mirror the inline pre-check path
            # and only fill in the unconstrained variables.
            self.stats.interval_decides += 1
            return SatResult(SATStatus.SAT,
                             model=complete_model(answer.model, constraints))
        return SatResult(SATStatus.SAT,
                         model=self._finish_model(answer.model, constraints))

    def _finish_model(self, model: Dict[str, int],
                      constraints: List[BoolExpr]) -> Dict[str, int]:
        if self.config.verify_models:
            return require_verified(model, constraints)
        return complete_model(model, constraints)
