"""Bit-blasting of bit-vector expressions to CNF.

Every bit-vector term is translated to a list of SAT literals (LSB first);
every boolean term to a single literal.  Translation is memoized on the
*identity* of the (hash-consed) term so shared sub-terms are encoded once —
path conditions produced by the exploration engine share most of their
structure, and interning makes the memo lookup a single small-int hash
instead of a deep structural one.  Cache entries keep a reference to the
expression so the id can never be recycled while the entry is live.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SolverError
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinOp,
    BVCmp,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtract,
    BVIte,
    BVSignExt,
    BVUnOp,
    BVVar,
    BVZeroExt,
)
from repro.symbex.solver.cnf import CNFBuilder

__all__ = ["BitBlaster"]


class BitBlaster:
    """Translate expressions into CNF clauses over a :class:`CNFBuilder`."""

    def __init__(self, cnf: CNFBuilder) -> None:
        self.cnf = cnf
        self._bv_cache: Dict[int, Tuple[BVExpr, List[int]]] = {}
        self._bool_cache: Dict[int, Tuple[BoolExpr, int]] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._var_widths: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def assert_bool(self, expr: BoolExpr) -> None:
        """Add clauses forcing *expr* to hold."""

        self.cnf.assert_true(self.bool_lit(expr))

    def variable_bits(self) -> Dict[str, List[int]]:
        """Mapping from variable name to its SAT literals (LSB first)."""

        return dict(self._var_bits)

    def variable_widths(self) -> Dict[str, int]:
        return dict(self._var_widths)

    # ------------------------------------------------------------------
    # Bit-vector translation
    # ------------------------------------------------------------------

    def bv_bits(self, expr: BVExpr) -> List[int]:
        cached = self._bv_cache.get(id(expr))
        if cached is not None:
            return cached[1]
        bits = self._bv_bits_uncached(expr)
        if len(bits) != expr.width:
            raise SolverError(
                "internal bit-blasting error: %r produced %d bits, expected %d"
                % (expr, len(bits), expr.width)
            )
        self._bv_cache[id(expr)] = (expr, bits)
        return bits

    def _bv_bits_uncached(self, expr: BVExpr) -> List[int]:
        cnf = self.cnf
        if isinstance(expr, BVConst):
            return [cnf.const(bool((expr.value >> i) & 1)) for i in range(expr.width)]
        if isinstance(expr, BVVar):
            bits = self._var_bits.get(expr.name)
            if bits is None:
                bits = [cnf.new_var() for _ in range(expr.width)]
                self._var_bits[expr.name] = bits
                self._var_widths[expr.name] = expr.width
            elif self._var_widths[expr.name] != expr.width:
                raise SolverError(
                    "variable %r used with widths %d and %d in the same query"
                    % (expr.name, self._var_widths[expr.name], expr.width)
                )
            return list(bits)
        if isinstance(expr, BVUnOp):
            operand = self.bv_bits(expr.operand)
            if expr.op == "not":
                return [-bit for bit in operand]
            # neg == (~x) + 1
            inverted = [-bit for bit in operand]
            return self._add(inverted, [cnf.const(i == 0) for i in range(expr.width)])
        if isinstance(expr, BVBinOp):
            return self._binop(expr)
        if isinstance(expr, BVExtract):
            operand = self.bv_bits(expr.operand)
            return operand[expr.low:expr.high + 1]
        if isinstance(expr, BVConcat):
            bits: List[int] = []
            for part in reversed(expr.parts):  # LSB-first: last part is least significant
                bits.extend(self.bv_bits(part))
            return bits
        if isinstance(expr, BVZeroExt):
            operand = self.bv_bits(expr.operand)
            return operand + [cnf.false_lit] * (expr.width - expr.operand.width)
        if isinstance(expr, BVSignExt):
            operand = self.bv_bits(expr.operand)
            sign = operand[-1]
            return operand + [sign] * (expr.width - expr.operand.width)
        if isinstance(expr, BVIte):
            cond = self.bool_lit(expr.cond)
            then = self.bv_bits(expr.then)
            otherwise = self.bv_bits(expr.otherwise)
            return [cnf.gate_ite(cond, t, o) for t, o in zip(then, otherwise)]
        raise SolverError("cannot bit-blast unknown bit-vector node %r" % (expr,))

    def _binop(self, expr: BVBinOp) -> List[int]:
        cnf = self.cnf
        lhs = self.bv_bits(expr.lhs)
        rhs = self.bv_bits(expr.rhs)
        op = expr.op
        if op == "and":
            return [cnf.gate_and([a, b]) for a, b in zip(lhs, rhs)]
        if op == "or":
            return [cnf.gate_or([a, b]) for a, b in zip(lhs, rhs)]
        if op == "xor":
            return [cnf.gate_xor(a, b) for a, b in zip(lhs, rhs)]
        if op == "add":
            return self._add(lhs, rhs)
        if op == "sub":
            # a - b == a + ~b + 1
            inverted = [-bit for bit in rhs]
            return self._add(lhs, inverted, carry_in=cnf.true_lit)
        if op == "mul":
            return self._mul(lhs, rhs)
        if op == "shl":
            return self._shift(lhs, expr.rhs, rhs, direction="left")
        if op == "lshr":
            return self._shift(lhs, expr.rhs, rhs, direction="right")
        if op == "ashr":
            return self._shift(lhs, expr.rhs, rhs, direction="aright")
        if op in ("udiv", "urem"):
            raise SolverError(
                "division is not supported by the bit-blaster; rewrite the agent "
                "code to use masks/shifts (OpenFlow field handling never divides)"
            )
        raise SolverError("cannot bit-blast operator %r" % (op,))

    def _add(self, lhs: List[int], rhs: List[int], carry_in: int = None) -> List[int]:
        cnf = self.cnf
        carry = carry_in if carry_in is not None else cnf.false_lit
        out: List[int] = []
        for a, b in zip(lhs, rhs):
            total, carry = cnf.full_adder(a, b, carry)
            out.append(total)
        return out

    def _mul(self, lhs: List[int], rhs: List[int]) -> List[int]:
        cnf = self.cnf
        width = len(lhs)
        accumulator = [cnf.false_lit] * width
        for shift, control in enumerate(rhs):
            if control == cnf.false_lit:
                continue
            shifted = [cnf.false_lit] * shift + lhs[: width - shift]
            guarded = [cnf.gate_and([control, bit]) for bit in shifted]
            accumulator = self._add(accumulator, guarded)
        return accumulator

    def _shift(self, bits: List[int], amount_expr: BVExpr, amount_bits: List[int],
               direction: str) -> List[int]:
        cnf = self.cnf
        width = len(bits)
        if isinstance(amount_expr, BVConst):
            shift = amount_expr.value
            return self._shift_by_constant(bits, shift, direction)
        # Barrel shifter: one mux layer per bit of the shift amount that can
        # influence the result, plus an "overshift" guard.
        result = list(bits)
        stages = max(1, (width - 1).bit_length())
        for stage in range(stages):
            control = amount_bits[stage] if stage < len(amount_bits) else cnf.false_lit
            shifted = self._shift_by_constant(result, 1 << stage, direction)
            result = [cnf.gate_ite(control, s, r) for s, r in zip(shifted, result)]
        # If any higher bit of the amount is set the shift overflows the width.
        high_bits = amount_bits[stages:]
        if high_bits:
            overflow = cnf.gate_or(high_bits)
            fill = bits[-1] if direction == "aright" else cnf.false_lit
            result = [cnf.gate_ite(overflow, fill, r) for r in result]
        return result

    def _shift_by_constant(self, bits: List[int], shift: int, direction: str) -> List[int]:
        cnf = self.cnf
        width = len(bits)
        if shift == 0:
            return list(bits)
        if direction == "left":
            if shift >= width:
                return [cnf.false_lit] * width
            return [cnf.false_lit] * shift + bits[: width - shift]
        fill = bits[-1] if direction == "aright" else cnf.false_lit
        if shift >= width:
            return [fill] * width
        return bits[shift:] + [fill] * shift

    # ------------------------------------------------------------------
    # Boolean translation
    # ------------------------------------------------------------------

    def bool_lit(self, expr: BoolExpr) -> int:
        cached = self._bool_cache.get(id(expr))
        if cached is not None:
            return cached[1]
        lit = self._bool_lit_uncached(expr)
        self._bool_cache[id(expr)] = (expr, lit)
        return lit

    def _bool_lit_uncached(self, expr: BoolExpr) -> int:
        cnf = self.cnf
        if isinstance(expr, BoolConst):
            return cnf.const(expr.value)
        if isinstance(expr, BoolNot):
            return -self.bool_lit(expr.operand)
        if isinstance(expr, BoolAnd):
            return cnf.gate_and([self.bool_lit(o) for o in expr.operands])
        if isinstance(expr, BoolOr):
            return cnf.gate_or([self.bool_lit(o) for o in expr.operands])
        if isinstance(expr, BVCmp):
            return self._compare(expr)
        raise SolverError("cannot bit-blast unknown boolean node %r" % (expr,))

    def _compare(self, expr: BVCmp) -> int:
        cnf = self.cnf
        lhs = self.bv_bits(expr.lhs)
        rhs = self.bv_bits(expr.rhs)
        op = expr.op
        if op in ("eq", "ne"):
            equal = cnf.gate_and([cnf.gate_iff(a, b) for a, b in zip(lhs, rhs)])
            return equal if op == "eq" else -equal
        if op in ("slt", "sle"):
            # Signed comparison == unsigned comparison with the sign bit flipped.
            lhs = lhs[:-1] + [-lhs[-1]]
            rhs = rhs[:-1] + [-rhs[-1]]
            op = "ult" if op == "slt" else "ule"
        less = cnf.false_lit
        for a, b in zip(lhs, rhs):  # LSB to MSB
            differ = cnf.gate_xor(a, b)
            less = cnf.gate_ite(differ, b, less)
        if op == "ult":
            return less
        if op == "ule":
            equal = cnf.gate_and([cnf.gate_iff(a, b) for a, b in zip(lhs, rhs)])
            return cnf.gate_or([less, equal])
        raise SolverError("cannot bit-blast comparison %r" % (op,))
