"""Complete decision procedure for quantifier-free bit-vector constraints.

The pipeline mirrors what STP provides to the original SOFT prototype:

1. algebraic simplification (:mod:`repro.symbex.simplify`),
2. a fast interval pre-check for conjunctions of comparison atoms
   (:mod:`repro.symbex.interval`),
3. bit-blasting of the remaining formula to CNF
   (:mod:`repro.symbex.solver.bitblast`),
4. a CDCL SAT solver (:mod:`repro.symbex.solver.sat`),
5. model extraction and independent verification
   (:mod:`repro.symbex.solver.model`).
"""

from repro.symbex.solver.sat import SATSolver, SATStatus
from repro.symbex.solver.cnf import CNFBuilder
from repro.symbex.solver.bitblast import BitBlaster
from repro.symbex.solver.model import extract_model, verify_model
from repro.symbex.solver.backends import (
    ALT_CDCL_KNOBS,
    BackendCapabilityError,
    CancellationToken,
    CDCLBackend,
    DEFAULT_PORTFOLIO,
    IntervalBackend,
    PortfolioAnswer,
    PortfolioSolver,
    SolverBackend,
    backend_info,
    backend_names,
    classify_query,
    make_backend,
)
from repro.symbex.solver.solver import (
    SatResult,
    Solver,
    SolverConfig,
    SolverStats,
    merge_stat_dicts,
)
from repro.symbex.solver.incremental import GroupEncoding, IncrementalStats, PairOutcome
from repro.symbex.solver.oracle import PrefixOracle, PrefixOracleStats

__all__ = [
    "SATSolver",
    "SATStatus",
    "CNFBuilder",
    "BitBlaster",
    "ALT_CDCL_KNOBS",
    "BackendCapabilityError",
    "CancellationToken",
    "CDCLBackend",
    "DEFAULT_PORTFOLIO",
    "IntervalBackend",
    "PortfolioAnswer",
    "PortfolioSolver",
    "SolverBackend",
    "backend_info",
    "backend_names",
    "classify_query",
    "make_backend",
    "extract_model",
    "verify_model",
    "SatResult",
    "Solver",
    "SolverConfig",
    "SolverStats",
    "GroupEncoding",
    "IncrementalStats",
    "PairOutcome",
    "PrefixOracle",
    "PrefixOracleStats",
    "merge_stat_dicts",
]
