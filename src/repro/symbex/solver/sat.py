"""A CDCL SAT solver.

This is the boolean backend of the bit-vector decision procedure.  It is a
classic conflict-driven clause-learning solver with:

* two-watched-literal unit propagation with a dedicated **binary-clause fast
  path** (implications of 2-literal clauses are stored as ``(other, clause)``
  pairs and propagated without touching watch lists),
* first-UIP conflict analysis and clause learning with **LBD** (literal block
  distance) tracking,
* VSIDS-style variable activities with exponential decay, ordered by a
  **lazy-delete binary heap** so each decision costs O(log n) instead of an
  O(num_vars) scan,
* **phase saving** (decisions re-use the variable's last assigned polarity),
* periodic **learned-clause DB reduction** (glue clauses with LBD <= 2 and
  clauses locked as reasons are kept; the worst half of the rest, by LBD then
  activity, is dropped),
* non-chronological backjumping,
* geometric restarts,
* an optional conflict budget so callers can bound worst-case work.

The solver is **incremental**: :meth:`SATSolver.solve` may be called any
number of times on the same instance, clauses and variables may be added
between calls, and *assumptions* scope a query to a subset of the formula
without touching the clause database.  Learned clauses and variable
activities persist across calls, which is what makes re-querying the same
instance (the crosscheck engine's ``solve under {act_i, act_j}`` pattern)
much cheaper than rebuilding it.  The conflict budget is per *call*, not per
instance lifetime.

Literals use the DIMACS convention: variable ``v`` (a positive integer) has the
positive literal ``v`` and the negative literal ``-v``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError

__all__ = ["SATSolver", "SATStatus"]


class SATStatus:
    """Tri-state result of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _Clause:
    __slots__ = ("literals", "learned", "activity", "lbd")

    def __init__(self, literals: List[int], learned: bool = False,
                 lbd: int = 0) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0
        self.lbd = lbd


class SATSolver:
    """Conflict-driven clause-learning SAT solver."""

    def __init__(self, phase_saving: bool = True, restart_first: int = 100,
                 restart_growth: float = 1.5, learned_db_base: int = 4000,
                 learned_db_growth: float = 1.2) -> None:
        #: Re-use each variable's last assigned polarity for new decisions.
        self.phase_saving = phase_saving
        #: Conflicts before the first restart; grows geometrically.
        self.restart_first = max(1, int(restart_first))
        self.restart_growth = restart_growth
        #: Learned-clause count that triggers the first DB reduction.
        self.learned_db_base = max(1, int(learned_db_base))
        self.learned_db_growth = learned_db_growth

        self._num_vars = 0
        # Clause storage: original (3+ literals), binary (exactly 2, original
        # or learned — never reduced), and learned (3+ literals, reducible).
        self._clauses: List[_Clause] = []
        self._binary: List[_Clause] = []
        self._learned: List[_Clause] = []
        # watches[lit] lists 3+-literal clauses currently watching `lit`.
        self._watches: Dict[int, List[_Clause]] = {}
        # bin_watches[lit] lists (other, clause): when `lit` becomes false,
        # `other` is implied by `clause`.
        self._bin_watches: Dict[int, List[Tuple[int, _Clause]]] = {}
        # assignment[var] is None / True / False.
        self._assignment: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._polarity: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        # Lazy-delete decision-order heap of (-activity, var): stale entries
        # (assigned vars, outdated activities) are discarded or re-keyed at
        # pop time; every unassigned variable is always present.
        self._heap: List[Tuple[float, int]] = []
        self._qhead = 0
        # Assumption-trail reuse: the literal sequence of the previous call's
        # assumptions still standing on the trail, and the decision level
        # reached after applying each one.  A new call keeps the longest
        # matching prefix assigned instead of re-propagating it from level 0.
        self._assumption_seq: List[int] = []
        self._assumption_marks: List[int] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._learned_limit = self.learned_db_base
        self._root_conflict = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.solves = 0
        self.restarts = 0
        self.db_reductions = 0
        self.learned_deleted = 0
        self.cancellations = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable (a positive integer)."""

        self._num_vars += 1
        self._assignment.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        heappush(self._heap, (0.0, self._num_vars))
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses) + len(self._binary) + len(self._learned)

    @property
    def num_learned(self) -> int:
        return len(self._learned)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""

        if self._trail_lim:
            # Clauses may arrive between queries (incremental use); watched
            # literals must be chosen against the root-level state only.
            self._backtrack(0)
            self._reset_assumption_trail()
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError("literal %d references an unallocated variable" % (lit,))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True and self._level[abs(lit)] == 0:
                return True  # already satisfied at the root
            if value is False and self._level[abs(lit)] == 0:
                continue  # literal is dead at the root
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._root_conflict = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._root_conflict = True
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._root_conflict = True
                return False
            return True
        c = _Clause(clause)
        if len(clause) == 2:
            self._binary.append(c)
            self._watch_binary(c)
        else:
            self._clauses.append(c)
            self._watch(c)
        return True

    def _watch(self, clause: _Clause) -> None:
        for lit in clause.literals[:2]:
            self._watches.setdefault(lit, []).append(clause)

    def _watch_binary(self, clause: _Clause) -> None:
        a, b = clause.literals
        self._bin_watches.setdefault(a, []).append((b, clause))
        self._bin_watches.setdefault(b, []).append((a, clause))

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        value = self._assignment[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assignment[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._polarity[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""

        trail = self._trail
        assignment = self._assignment
        bin_watches = self._bin_watches
        watches = self._watches
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = -lit

            # Binary fast path: direct implications, no watch maintenance.
            bins = bin_watches.get(false_lit)
            if bins:
                for other, bin_clause in bins:
                    var = other if other > 0 else -other
                    value = assignment[var]
                    if value is None:
                        self._enqueue(other, bin_clause)
                    elif value != (other > 0):
                        return bin_clause

            watchers = watches.get(false_lit)
            if not watchers:
                continue
            new_watchers: List[_Clause] = []
            conflict: Optional[_Clause] = None
            index = 0
            while index < len(watchers):
                clause = watchers[index]
                index += 1
                if conflict is not None:
                    new_watchers.append(clause)
                    continue
                literals = clause.literals
                # Ensure the false literal is in position 1.
                if literals[0] == false_lit:
                    literals[0] = literals[1]
                    literals[1] = false_lit
                first = literals[0]
                first_var = first if first > 0 else -first
                first_value = assignment[first_var]
                if first_value is not None and first_value == (first > 0):
                    new_watchers.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    cand_var = candidate if candidate > 0 else -candidate
                    cand_value = assignment[cand_var]
                    if cand_value is None or cand_value == (candidate > 0):
                        literals[1] = candidate
                        literals[position] = false_lit
                        watches.setdefault(candidate, []).append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if first_value is not None:  # and it is not satisfying: conflict
                    conflict = clause
                else:
                    self._enqueue(first, clause)
            watches[false_lit] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_heap()
        elif self._assignment[var] is None:
            heappush(self._heap, (-activity, var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            # Rescale every learned clause, including binary ones (stored in
            # _binary): missing any would leave its activity above the
            # threshold forever and re-trigger the rescale on each bump.
            for learned in self._learned:
                learned.activity *= 1e-20
            for binary in self._binary:
                if binary.learned:
                    binary.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict: _Clause) -> (List[int], int, int):
        """First-UIP analysis; returns (learned clause, backjump level, LBD)."""

        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None, "decision literal reached without UIP"
            if reason.learned:
                self._bump_clause(reason)
            for clause_lit in reason.literals:
                if lit is not None and clause_lit == lit:
                    continue
                var = abs(clause_lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_lit)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit = self._trail[trail_index]
            var = abs(lit)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[var]

        if len(learned) == 1:
            backjump = 0
        else:
            # Backjump to the second highest level in the learned clause: a
            # single max scan over the non-asserting literals, tracking the
            # position so the witness literal can be swapped into the watch
            # slot without a second pass (no sort needed).
            backjump = self._level[abs(learned[1])]
            witness = 1
            for position in range(2, len(learned)):
                level = self._level[abs(learned[position])]
                if level > backjump:
                    backjump = level
                    witness = position
            learned[1], learned[witness] = learned[witness], learned[1]
        lbd = len({self._level[abs(l)] for l in learned})
        return learned, backjump, lbd

    def _reset_assumption_trail(self) -> None:
        del self._assumption_seq[:]
        del self._assumption_marks[:]

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        assignment = self._assignment
        reason = self._reason
        activity = self._activity
        heap = self._heap
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            assignment[var] = None
            reason[var] = None
            heappush(heap, (-activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _rebuild_heap(self) -> None:
        self._heap = [(-self._activity[var], var)
                      for var in range(1, self._num_vars + 1)
                      if self._assignment[var] is None]
        heapify(self._heap)

    def _pick_branch_variable(self) -> Optional[int]:
        heap = self._heap
        if len(heap) > 4 * self._num_vars + 64:
            # Lazy deletes accumulated; compact to bound memory.
            self._rebuild_heap()
            heap = self._heap
        assignment = self._assignment
        activity = self._activity
        while heap:
            neg_activity, var = heap[0]
            if assignment[var] is not None:
                heappop(heap)  # stale: assigned since it was pushed
                continue
            if -neg_activity != activity[var]:
                heappop(heap)  # stale priority: re-key with the current one
                heappush(heap, (-activity[var], var))
                continue
            return var
        return None

    # ------------------------------------------------------------------
    # Learned-clause DB reduction
    # ------------------------------------------------------------------

    def _locked(self, clause: _Clause) -> bool:
        first = clause.literals[0]
        var = abs(first)
        return self._assignment[var] is not None and self._reason[var] is clause

    def _reduce_learned(self) -> None:
        """Drop the worst half of the reducible learned clauses.

        Glue clauses (LBD <= 2) and clauses locked as the reason of a current
        assignment are always kept, so the procedure is safe at any decision
        level; surviving clauses keep their watch positions, so rebuilding
        the watch lists preserves the exact propagation state minus the
        deleted clauses.
        """

        keep: List[_Clause] = []
        removable: List[_Clause] = []
        for clause in self._learned:
            if clause.lbd <= 2 or self._locked(clause):
                keep.append(clause)
            else:
                removable.append(clause)
        removable.sort(key=lambda c: (c.lbd, -c.activity))
        cut = len(removable) // 2
        keep.extend(removable[:cut])
        deleted = removable[cut:]
        self._learned_limit = int(self._learned_limit * self.learned_db_growth) + 1
        if not deleted:
            return
        dead = frozenset(map(id, deleted))
        self._learned = keep
        watches = self._watches
        for lit in list(watches.keys()):
            watchers = watches[lit]
            kept = [c for c in watchers if id(c) not in dead]
            if len(kept) != len(watchers):
                watches[lit] = kept
        self.learned_deleted += len(deleted)
        self.db_reductions += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None,
              cancel=None) -> str:
        """Solve the formula; returns one of the :class:`SATStatus` constants.

        *assumptions* are literals forced at the start of the search (they act
        like temporary unit clauses).  When *max_conflicts* is given and
        exhausted within this call, ``UNKNOWN`` is returned.  The instance can
        be re-queried afterwards — each call gets its own conflict budget.

        *cancel* is an optional cooperative cancellation token (any object
        with an ``is_cancelled`` attribute, e.g.
        :class:`repro.symbex.solver.backends.CancellationToken`).  The search
        loop polls it at every conflict and every decision; once it reads
        true, the call unwinds exactly like a budget exhaustion — trail
        backtracked to the root, assumption-reuse state reset — and returns
        ``UNKNOWN``, so the instance stays fully reusable for later calls.
        Portfolio racing uses this to stop losing backends promptly.
        """

        self.solves += 1
        if self._root_conflict:
            return SATStatus.UNSAT

        # Assumption-trail reuse: keep the longest prefix of *assumptions*
        # matching the previous call's sequence assigned on the trail instead
        # of backtracking to level 0 and re-propagating it.  Anything else
        # standing at those levels is formula-implied (learned units enqueued
        # during the previous search), so keeping it is sound regardless of
        # the new assumption suffix.
        matched = 0
        seq = self._assumption_seq
        limit = min(len(seq), len(assumptions))
        while matched < limit and seq[matched] == assumptions[matched]:
            matched += 1
        keep_level = self._assumption_marks[matched - 1] if matched else 0
        self._backtrack(keep_level)
        del self._assumption_seq[matched:]
        del self._assumption_marks[matched:]
        # The kept trail is already propagated to fixpoint: backtrack keeps
        # assignments and add_clause() propagates new root units at insertion
        # time, so only literals enqueued past _qhead (if any) need
        # processing — no O(trail) re-scan per incremental call.
        conflict = self._propagate()
        if conflict is not None:
            if self._decision_level() == 0:
                self._root_conflict = True
                return SATStatus.UNSAT
            self._reset_assumption_trail()
            self._backtrack(0)
            return SATStatus.UNSAT

        # Apply the remaining assumptions as decisions at successive levels.
        for lit in assumptions[matched:]:
            if self._value(lit) is True:
                self._assumption_seq.append(lit)
                self._assumption_marks.append(self._decision_level())
                continue
            if self._value(lit) is False:
                self._reset_assumption_trail()
                self._backtrack(0)
                return SATStatus.UNSAT
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                self._reset_assumption_trail()
                self._backtrack(0)
                return SATStatus.UNSAT
            self._assumption_seq.append(lit)
            self._assumption_marks.append(self._decision_level())
        assumption_level = self._decision_level()

        restart_limit = self.restart_first
        conflicts_since_restart = 0
        total_budget = max_conflicts
        conflicts_at_start = self.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if cancel is not None and cancel.is_cancelled:
                    self.cancellations += 1
                    self._reset_assumption_trail()
                    self._backtrack(0)
                    return SATStatus.UNKNOWN
                if total_budget is not None and self.conflicts - conflicts_at_start > total_budget:
                    self._reset_assumption_trail()
                    self._backtrack(0)
                    return SATStatus.UNKNOWN
                if self._decision_level() <= assumption_level:
                    self._reset_assumption_trail()
                    self._backtrack(0)
                    return SATStatus.UNSAT
                learned, backjump, lbd = self._analyze(conflict)
                self._backtrack(max(backjump, assumption_level))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._reset_assumption_trail()
                        self._backtrack(0)
                        return SATStatus.UNSAT
                else:
                    clause = _Clause(learned, learned=True, lbd=lbd)
                    if len(learned) == 2:
                        self._binary.append(clause)
                        self._watch_binary(clause)
                    else:
                        self._learned.append(clause)
                        self._watch(clause)
                    self._enqueue(learned[0], clause)
                self._decay()
                if len(self._learned) >= self._learned_limit:
                    self._reduce_learned()
            else:
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * self.restart_growth)
                    self.restarts += 1
                    self._backtrack(assumption_level)
                    continue
                if cancel is not None and cancel.is_cancelled:
                    self.cancellations += 1
                    self._reset_assumption_trail()
                    self._backtrack(0)
                    return SATStatus.UNKNOWN
                var = self._pick_branch_variable()
                if var is None:
                    return SATStatus.SAT
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                polarity = self._polarity[var] if self.phase_saving else False
                self._enqueue(var if polarity else -var, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, var: int) -> bool:
        """Value of *var* in the satisfying assignment (False if unassigned)."""

        value = self._assignment[var]
        return bool(value)

    def model(self) -> Dict[int, bool]:
        """Return the full satisfying assignment as ``{var: bool}``."""

        return {
            var: bool(self._assignment[var])
            for var in range(1, self._num_vars + 1)
            if self._assignment[var] is not None
        }

    def stats_dict(self) -> Dict[str, int]:
        """Search counters (decisions, propagations, learned-DB activity)."""

        return {
            "variables": self._num_vars,
            "clauses": self.num_clauses,
            "learned": len(self._learned),
            "solves": self.solves,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "db_reductions": self.db_reductions,
            "learned_deleted": self.learned_deleted,
            "cancellations": self.cancellations,
        }
