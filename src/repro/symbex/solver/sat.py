"""A CDCL SAT solver.

This is the boolean backend of the bit-vector decision procedure.  It is a
classic conflict-driven clause-learning solver with:

* two-watched-literal unit propagation,
* first-UIP conflict analysis and clause learning,
* VSIDS-style variable activities with exponential decay,
* non-chronological backjumping,
* geometric restarts,
* an optional conflict budget so callers can bound worst-case work.

The solver is **incremental**: :meth:`SATSolver.solve` may be called any
number of times on the same instance, clauses and variables may be added
between calls, and *assumptions* scope a query to a subset of the formula
without touching the clause database.  Learned clauses and variable
activities persist across calls, which is what makes re-querying the same
instance (the crosscheck engine's ``solve under {act_i, act_j}`` pattern)
much cheaper than rebuilding it.  The conflict budget is per *call*, not per
instance lifetime.

Literals use the DIMACS convention: variable ``v`` (a positive integer) has the
positive literal ``v`` and the negative literal ``-v``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SolverError

__all__ = ["SATSolver", "SATStatus"]


class SATStatus:
    """Tri-state result of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


class SATSolver:
    """Conflict-driven clause-learning SAT solver."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        # watches[lit] lists clauses currently watching literal `lit`.
        self._watches: Dict[int, List[_Clause]] = {}
        # assignment[var] is None / True / False.
        self._assignment: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._polarity: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._root_conflict = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.solves = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable (a positive integer)."""

        self._num_vars += 1
        self._assignment.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""

        if self._trail_lim:
            # Clauses may arrive between queries (incremental use); watched
            # literals must be chosen against the root-level state only.
            self._backtrack(0)
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError("literal %d references an unallocated variable" % (lit,))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True and self._level[abs(lit)] == 0:
                return True  # already satisfied at the root
            if value is False and self._level[abs(lit)] == 0:
                continue  # literal is dead at the root
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._root_conflict = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._root_conflict = True
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._root_conflict = True
                return False
            return True
        c = _Clause(clause)
        self._clauses.append(c)
        self._watch(c)
        return True

    def _watch(self, clause: _Clause) -> None:
        for lit in clause.literals[:2]:
            self._watches.setdefault(lit, []).append(clause)

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        value = self._assignment[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assignment[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._polarity[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""

        head = len(self._trail) - 1
        # We re-scan from the last unpropagated literal.  The queue pointer is
        # maintained implicitly through _qhead.
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            new_watchers: List[_Clause] = []
            conflict: Optional[_Clause] = None
            index = 0
            while index < len(watchers):
                clause = watchers[index]
                index += 1
                if conflict is not None:
                    new_watchers.append(clause)
                    continue
                literals = clause.literals
                # Ensure the false literal is in position 1.
                if literals[0] == false_lit:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self._value(first) is True:
                    new_watchers.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    if self._value(candidate) is not False:
                        literals[1], literals[position] = literals[position], literals[1]
                        self._watches.setdefault(candidate, []).append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if self._value(first) is False:
                    conflict = clause
                else:
                    self._enqueue(first, clause)
            self._watches[false_lit] = new_watchers
            if conflict is not None:
                return conflict
        del head
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    def _analyze(self, conflict: _Clause) -> (List[int], int):
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""

        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None, "decision literal reached without UIP"
            for clause_lit in reason.literals:
                if lit is not None and clause_lit == lit:
                    continue
                var = abs(clause_lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_lit)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit = self._trail[trail_index]
            var = abs(lit)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[var]

        if len(learned) == 1:
            backjump = 0
        else:
            # Backjump to the second highest level in the learned clause: a
            # single max scan over the non-asserting literals, tracking the
            # position so the witness literal can be swapped into the watch
            # slot without a second pass (no sort needed).
            backjump = self._level[abs(learned[1])]
            witness = 1
            for position in range(2, len(learned)):
                level = self._level[abs(learned[position])]
                if level > backjump:
                    backjump = level
                    witness = position
            learned[1], learned[witness] = learned[witness], learned[1]
        return learned, backjump

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._assignment[var] = None
            self._reason[var] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assignment[var] is None and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None) -> str:
        """Solve the formula; returns one of the :class:`SATStatus` constants.

        *assumptions* are literals forced at the start of the search (they act
        like temporary unit clauses).  When *max_conflicts* is given and
        exhausted within this call, ``UNKNOWN`` is returned.  The instance can
        be re-queried afterwards — each call gets its own conflict budget.
        """

        self.solves += 1
        if self._root_conflict:
            return SATStatus.UNSAT

        self._backtrack(0)
        self._qhead = 0
        conflict = self._propagate()
        if conflict is not None:
            return SATStatus.UNSAT

        # Apply assumptions as decisions at successive levels.
        for lit in assumptions:
            if self._value(lit) is True:
                continue
            if self._value(lit) is False:
                self._backtrack(0)
                return SATStatus.UNSAT
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                self._backtrack(0)
                return SATStatus.UNSAT
        assumption_level = self._decision_level()

        restart_limit = 100
        conflicts_since_restart = 0
        total_budget = max_conflicts
        conflicts_at_start = self.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if total_budget is not None and self.conflicts - conflicts_at_start > total_budget:
                    self._backtrack(0)
                    return SATStatus.UNKNOWN
                if self._decision_level() <= assumption_level:
                    self._backtrack(0)
                    return SATStatus.UNSAT
                learned, backjump = self._analyze(conflict)
                self._backtrack(max(backjump, assumption_level))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._backtrack(0)
                        return SATStatus.UNSAT
                else:
                    clause = _Clause(learned, learned=True)
                    self._clauses.append(clause)
                    self._watch(clause)
                    self._enqueue(learned[0], clause)
                self._decay()
            else:
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(assumption_level)
                    continue
                var = self._pick_branch_variable()
                if var is None:
                    return SATStatus.SAT
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                polarity = self._polarity[var]
                self._enqueue(var if polarity else -var, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, var: int) -> bool:
        """Value of *var* in the satisfying assignment (False if unassigned)."""

        value = self._assignment[var]
        return bool(value)

    def model(self) -> Dict[int, bool]:
        """Return the full satisfying assignment as ``{var: bool}``."""

        return {
            var: bool(self._assignment[var])
            for var in range(1, self._num_vars + 1)
            if self._assignment[var] is not None
        }

    # Internal: propagation queue head (index into the trail).
    _qhead = 0
