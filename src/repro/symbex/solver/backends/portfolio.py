"""Portfolio racing: per-query backend selection + thread-pool races.

Strategy, in priority order:

1. **Route** — :func:`classify_query` features plus the learned
   :class:`RouteTable` send interval-friendly queries to the cheap
   word-level backend inline (no threads).  A conclusive answer ends the
   query there; an UNKNOWN falls through and demotes the feature bucket.
2. **Direct** — with a single expensive member remaining there is nothing
   to race; call it on the query thread.
3. **Race** — two or more CDCL members run concurrently on a small thread
   pool, each with its own :class:`CancellationToken`.  The first
   *conclusive* (SAT/UNSAT) answer wins and cancels the rest; losers unwind
   through the SAT core's budget-exhaustion path, leaving their incremental
   state reusable.

Determinism note: the default portfolio is ``("interval", "cdcl")``, which
never actually races — the interval model equals the legacy inline
pre-check's verified candidate and the CDCL model equals the reference
backend's, so path exploration (which concretizes values out of SAT models)
is bit-identical to a single-backend run.  Configurations that include
``cdcl-alt`` do race; their *verdicts* are still identical (both engines are
sound and complete) but SAT models may differ between runs, so such configs
are for status-only workloads and explicit opt-in.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.symbex.expr import BoolExpr
from repro.symbex.solver.backends.base import CancellationToken, SolverBackend
from repro.symbex.solver.backends.routing import QueryClassifier, RouteTable
from repro.symbex.solver.sat import SATStatus

__all__ = ["PortfolioAnswer", "PortfolioSolver"]

_CONCLUSIVE = (SATStatus.SAT, SATStatus.UNSAT)


class PortfolioAnswer:
    """Outcome of one portfolio query, with attribution for the bench layer."""

    __slots__ = ("status", "model", "backend", "routed", "raced", "verified")

    def __init__(self, status: str, model: Optional[Dict[str, int]],
                 backend: str, routed: bool, raced: bool,
                 verified: bool = False) -> None:
        self.status = status
        self.model = model
        self.backend = backend
        self.routed = routed
        self.raced = raced
        #: The model already passed concrete evaluation inside the backend
        #: (interval wins); callers may skip their own re-verification.
        self.verified = verified


class _ResultBox:
    """First-conclusive-answer-wins rendezvous between racer threads.

    All mutation happens under ``self._lock``; :meth:`wait` blocks the query
    thread until a winner is posted or every racer has reported in.
    """

    def __init__(self, racers: int) -> None:
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._pending = racers
        self._winner: Optional[Tuple[str, str, Optional[Dict[str, int]]]] = None
        self._error: Optional[BaseException] = None

    def post(self, backend_name: str, status: str,
             model: Optional[Dict[str, int]]) -> bool:
        """Report one racer's answer; returns True iff it won the race."""

        with self._lock:
            self._pending -= 1
            won = self._winner is None and status in _CONCLUSIVE
            if won:
                self._winner = (backend_name, status, model)
            if won or self._pending == 0:
                self._done.notify_all()
            return won

    def post_error(self, error: BaseException) -> None:
        with self._lock:
            self._pending -= 1
            if self._error is None:
                self._error = error
            if self._pending == 0:
                self._done.notify_all()

    def wait(self) -> Tuple[str, str, Optional[Dict[str, int]]]:
        """Block until a winner exists or all racers finished; may re-raise."""

        with self._lock:
            while self._winner is None and self._pending > 0:
                self._done.wait()
            if self._winner is not None:
                return self._winner
            if self._error is not None:
                raise self._error
            return ("", SATStatus.UNKNOWN, None)


class PortfolioSolver:
    """Race/route one-shot queries across a fixed set of backend factories.

    The portfolio owns no backend state between queries: every query builds
    fresh backend instances from the factories (matching the one-shot
    ``Solver`` discipline, where learned clauses must not leak across
    unrelated queries).  What persists is the learned route table and the
    win/route accounting.
    """

    def __init__(self, members, factory, route_queries: bool = True) -> None:
        """``members`` are backend names; ``factory(name)`` builds instances."""

        if not members:
            raise SolverError("portfolio needs at least one backend")
        self._members: Tuple[str, ...] = tuple(members)
        self._factory = factory
        #: Capability probe, paid once: which members run inline vs race.
        self._cheap = {name: factory(name).cheap for name in self._members}
        self._route = RouteTable() if route_queries else None
        self._classifier = QueryClassifier() if route_queries else None
        self._routing = route_queries
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stats_lock = threading.Lock()
        self.wins: Dict[str, int] = {name: 0 for name in self._members}
        self.routed_queries = 0
        self.routed_wins = 0
        self.race_queries = 0
        self.cancelled_racers = 0
        self.queries = 0

    @property
    def members(self) -> Tuple[str, ...]:
        return self._members

    def is_cheap(self, name: str) -> bool:
        """Whether *name* runs inline (routed) rather than on a racer thread."""

        return self._cheap[name]

    # -- internal helpers -----------------------------------------------------

    def _pool(self, size: int) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, size),
                thread_name_prefix="portfolio-racer")
        return self._executor

    def _fresh(self, name: str) -> SolverBackend:
        return self._factory(name)

    def _run_one(self, name: str, constraints: Sequence[BoolExpr],
                 max_conflicts: Optional[int],
                 cancel: Optional[CancellationToken]):
        backend = self._fresh(name)
        for constraint in constraints:
            backend.assert_formula(constraint)
        status = backend.check_sat(max_conflicts=max_conflicts, cancel=cancel)
        model = backend.get_value() if status == SATStatus.SAT else None
        return status, model

    def _race(self, names: Sequence[str], constraints: Sequence[BoolExpr],
              max_conflicts: Optional[int]) -> Tuple[str, str,
                                                     Optional[Dict[str, int]]]:
        box = _ResultBox(len(names))
        tokens = {name: CancellationToken() for name in names}

        def racer(name: str) -> None:
            try:
                status, model = self._run_one(
                    name, constraints, max_conflicts, tokens[name])
            # soft-lint: disable=broad-except -- forwarded to the query thread
            except BaseException as exc:
                # Racer threads must surface ANY failure (SolverError or an
                # internal invariant violation) instead of dying silently in
                # the pool; box.wait() re-raises it on the query thread.
                box.post_error(exc)
                return
            if box.post(name, status, model):
                for other, token in tokens.items():
                    if other != name:
                        token.cancel()

        pool = self._pool(len(names))
        for name in names:
            pool.submit(racer, name)
        winner, status, model = box.wait()
        with self._stats_lock:
            self.race_queries += 1
            if winner:
                self.cancelled_racers += len(names) - 1
        return winner, status, model

    # -- the public query surface --------------------------------------------

    def check(self, constraints: Sequence[BoolExpr],
              max_conflicts: Optional[int] = None) -> PortfolioAnswer:
        """Decide ``conj(constraints)``, attributing the answer to a backend."""

        remaining = list(self._members)
        features = (self._classifier.classify(constraints)
                    if self._routing else None)
        routed_attempts = 0

        # Stage 1: cheap backends inline — routed if the table says so,
        # skipped entirely otherwise (that skip is the portfolio's main win
        # over the reference pipeline, which pays the interval pre-analysis
        # on every query).
        for name in list(remaining):
            if not self._cheap[name]:
                continue
            remaining.remove(name)
            if features is not None and self._route is not None:
                if not self._route.route_to_interval(features):
                    continue
            backend = self._fresh(name)
            for constraint in constraints:
                backend.assert_formula(constraint)
            status = backend.check_sat(max_conflicts=max_conflicts)
            conclusive = status in _CONCLUSIVE
            if features is not None and self._route is not None:
                self._route.record(features, conclusive)
            routed_attempts += 1
            if conclusive:
                model = (backend.get_value()
                         if status == SATStatus.SAT else None)
                with self._stats_lock:
                    self.queries += 1
                    self.routed_queries += routed_attempts
                    self.routed_wins += 1
                    self.wins[name] += 1
                # A cheap backend only answers SAT on a candidate that
                # already passed concrete evaluation.
                return PortfolioAnswer(status, model, name,
                                       routed=True, raced=False,
                                       verified=True)

        if not remaining:
            with self._stats_lock:
                self.queries += 1
                self.routed_queries += routed_attempts
            return PortfolioAnswer(SATStatus.UNKNOWN, None, "",
                                   routed=True, raced=False)

        # Stage 2: a lone expensive member runs on the query thread.
        if len(remaining) == 1:
            name = remaining[0]
            status, model = self._run_one(name, constraints, max_conflicts,
                                          None)
            with self._stats_lock:
                self.queries += 1
                self.routed_queries += routed_attempts
                if status in _CONCLUSIVE:
                    self.wins[name] += 1
            return PortfolioAnswer(status, model, name,
                                   routed=False, raced=False)

        # Stage 3: the race.
        winner, status, model = self._race(remaining, constraints,
                                           max_conflicts)
        with self._stats_lock:
            self.queries += 1
            self.routed_queries += routed_attempts
            if winner:
                self.wins[winner] += 1
        return PortfolioAnswer(status, model, winner, routed=False, raced=True)

    def shutdown(self) -> None:
        with self._stats_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- reporting ------------------------------------------------------------

    def stats_dict(self) -> Dict[str, float]:
        with self._stats_lock:
            stats: Dict[str, float] = {
                "portfolio_queries": self.queries,
                "routed_queries": self.routed_queries,
                "routed_wins": self.routed_wins,
                "race_queries": self.race_queries,
                "cancelled_racers": self.cancelled_racers,
            }
            for name, count in self.wins.items():
                stats["win_%s" % name] = count
        return stats

    def route_snapshot(self) -> Dict[str, Dict[str, int]]:
        if self._route is None:
            return {}
        return self._route.snapshot()
