"""The ``SolverBackend`` protocol: one query surface, N interchangeable engines.

Every consumer of satisfiability (the one-shot :class:`~repro.symbex.solver.
solver.Solver`, the Phase-1 :class:`~repro.symbex.solver.oracle.PrefixOracle`
and the Phase-2b :class:`~repro.symbex.solver.incremental.GroupEncoding`)
talks to a backend through the same five verbs, mirroring the ezSMT /
smt_switch surface: ``declare`` a condition as an assumption literal,
``assert_formula`` a permanent constraint, ``check_sat`` under assumptions,
``get_value`` the model, ``cancel`` a running query.  Capability flags
describe what a backend can do:

* ``incremental`` — the instance may be re-queried any number of times with
  new formulas/assumptions in between (CDCL engines).  Non-incremental
  backends answer one query per instance.
* ``complete`` — the backend decides every query given enough budget.  A
  semi-decision backend (the word-level interval engine) answers SAT/UNSAT
  only when its analysis is conclusive and UNKNOWN otherwise.
* ``cheap`` — a query costs roughly as much as reading the formula; the
  portfolio runs such backends inline instead of spending a racer thread.

Backends answering SAT must produce a model that satisfies the asserted
formulas under concrete evaluation — the front-ends re-verify every model, so
a buggy backend fails loudly instead of corrupting a crosscheck.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence

from repro.errors import SolverError
from repro.symbex.expr import BoolExpr

__all__ = ["BackendCapabilityError", "CancellationToken", "SolverBackend"]


class BackendCapabilityError(SolverError):
    """An operation was requested that the backend's flags do not support."""


class CancellationToken:
    """Cooperative cancellation shared between a racer and its observers.

    Thread-safe: the flag is a :class:`threading.Event`, so any number of
    worker threads may poll ``is_cancelled`` while another thread calls
    :meth:`cancel`.  The SAT core's search loop polls the token at every
    conflict and decision, which bounds the cancellation latency to one
    propagation burst.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; idempotent."""

        self._event.set()

    @property
    def is_cancelled(self) -> bool:
        return self._event.is_set()


class SolverBackend:
    """Abstract satisfiability engine behind one declare/assert/check surface."""

    #: Stable identifier (the registry key and the win-rate label).
    name: str = "abstract"
    #: Whether the instance supports repeated queries with incremental state.
    incremental: bool = False
    #: Whether the backend decides every query (given budget); semi-decision
    #: backends may answer UNKNOWN on queries outside their theory fragment.
    complete: bool = True
    #: Whether a query is cheap enough to run inline rather than race.
    cheap: bool = False

    # -- query construction -------------------------------------------------

    def assert_formula(self, constraint: BoolExpr) -> None:
        """Permanently conjoin *constraint* onto the backend's formula."""

        raise NotImplementedError

    def declare(self, condition: BoolExpr) -> int:
        """Encode *condition* once, returning an assumption literal for it.

        Only meaningful on incremental backends: the literal scopes the
        condition into individual :meth:`check_sat` calls without touching
        the permanent formula.
        """

        raise BackendCapabilityError(
            "backend %r does not support declared assumption literals" % (self.name,))

    # -- solving -------------------------------------------------------------

    def check_sat(self, assumptions: Sequence[int] = (),
                  max_conflicts: Optional[int] = None,
                  cancel: Optional[CancellationToken] = None) -> str:
        """Decide the current formula; returns a ``SATStatus`` constant.

        ``UNKNOWN`` means the budget ran out, the query was cancelled, or a
        semi-decision backend could not conclude — never a property of the
        formula itself.
        """

        raise NotImplementedError

    def get_value(self) -> Dict[str, int]:
        """The raw model of the last SAT answer (``{variable: int}``).

        Callers complete/verify it against their constraint set; the backend
        only guarantees the bound variables satisfy the asserted formula.
        """

        raise NotImplementedError

    def cancel(self) -> None:
        """Best-effort cancellation of a query running on another thread."""

    # -- CNF-level surface (incremental backends only) -----------------------

    @property
    def true_lit(self) -> int:
        raise BackendCapabilityError(
            "backend %r has no CNF-level surface" % (self.name,))

    @property
    def false_lit(self) -> int:
        raise BackendCapabilityError(
            "backend %r has no CNF-level surface" % (self.name,))

    def const_lit(self, value: bool) -> int:
        return self.true_lit if value else self.false_lit

    def new_var(self) -> int:
        """A fresh CNF variable (activation literals, selector gadgets)."""

        raise BackendCapabilityError(
            "backend %r has no CNF-level surface" % (self.name,))

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a raw CNF clause (incremental backends only)."""

        raise BackendCapabilityError(
            "backend %r has no CNF-level surface" % (self.name,))

    # -- introspection --------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return 0

    @property
    def num_clauses(self) -> int:
        return 0

    @property
    def solves(self) -> int:
        return 0

    def stats_dict(self) -> Dict[str, float]:
        return {"backend": self.name}
