"""Per-query backend routing: cheap structural features + learned win rates.

Spawning a race for every query is wasteful when one backend is near-certain
to answer: the vast majority of agent-generated queries are small
conjunctions of ``field <cmp> constant`` atoms that the word-level interval
backend decides in microseconds.  The router classifies each query by a
single cheap pass over its atoms (no recursion into bit-vector arithmetic
beyond the shapes the interval domain itself understands) into a small
feature bucket, and keeps per-bucket conclusive/ inconclusive counts for the
interval backend:

* an **interval-friendly** bucket (every atom is a supported comparison
  shape) is routed to the interval backend alone — no race is spawned —
  until its observed conclusive rate drops below :data:`RouteTable.FLOOR`;
* an unfriendly bucket (or a friendly one that stopped converting) skips
  the interval backend entirely, which also skips the legacy inline
  interval pre-analysis the reference pipeline pays on every query.

The table is learned online, per :class:`PortfolioSolver` instance: no
training phase, no persistence, just counters — cheap enough that the
routing decision is two dict lookups.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVCmp,
    BVConst,
    BVExtract,
    BVVar,
    BVZeroExt,
)

__all__ = ["QueryClassifier", "QueryFeatures", "RouteTable", "classify_query"]

#: Comparison operators the interval domain applies directly (the expression
#: layer builds only these plus the signed slt/sle, which the unsigned
#: domain treats as unsupported).
_SUPPORTED_OPS = frozenset({"eq", "ne", "ult", "ule"})


class QueryFeatures:
    """Structural summary of one query (atom count, widths, atom kinds)."""

    __slots__ = ("atoms", "friendly", "bucket")

    def __init__(self, atoms: int, friendly: bool,
                 bucket: Tuple[bool, int, int]) -> None:
        self.atoms = atoms
        self.friendly = friendly
        self.bucket = bucket


def _strip_zext(expr):
    while isinstance(expr, BVZeroExt):
        expr = expr.operand
    return expr


def _supported_cmp(atom: BVCmp) -> Tuple[bool, int]:
    """(interval-supported?, operand width) for one comparison atom."""

    if atom.op not in _SUPPORTED_OPS:
        return False, 0
    lhs, rhs = _strip_zext(atom.lhs), _strip_zext(atom.rhs)
    if isinstance(lhs, BVConst):
        lhs, rhs = rhs, lhs
    if not isinstance(rhs, BVConst):
        return False, 0
    if isinstance(lhs, BVVar):
        return True, lhs.width
    if (isinstance(lhs, BVExtract)
            and isinstance(_strip_zext(lhs.operand), BVVar)):
        # Forced-bit facts only land for equality; other ops fall back to
        # the domain's concrete-verification path, which still usually
        # concludes — treat as friendly.
        return True, lhs.width
    return False, 0


def _combo_supported(expr: BoolExpr) -> Tuple[bool, int]:
    """All comparison leaves of an And/Or/Not combination are in-domain.

    Such a shape exceeds what interval propagation handles analytically, but
    the engine's concrete-verification pass (evaluate the candidate against
    the full conjunction) settles it whenever the candidate lands inside the
    disjunction — common for agent-generated range/enum guards.
    """

    max_width = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BoolConst):
            continue
        if isinstance(node, (BoolAnd, BoolOr)):
            stack.extend(node.operands)
            continue
        if isinstance(node, BoolNot):
            stack.append(node.operand)
            continue
        if isinstance(node, BVCmp):
            ok, width = _supported_cmp(node)
            if not ok:
                return False, 0
            if width > max_width:
                max_width = width
            continue
        return False, 0
    return True, max_width


def _aggregate(constraint: BoolExpr) -> Tuple[int, int, int, int]:
    """(atoms, unsupported, kinds, max_width) for ONE constraint subtree.

    Mirrors the interval engine's own intake: conjunctions flatten and
    negated comparisons stay in-domain.  A disjunction or negated
    conjunction of supported comparisons — which the engine settles only
    through its concrete-verification pass — is *conditionally* friendly
    with its own bucket bit, so the route table learns per-shape whether
    that pass actually converts.
    """

    atoms = 0
    unsupported = 0
    kinds = 0
    max_width = 0
    stack = [constraint]
    while stack:
        atom = stack.pop()
        if isinstance(atom, BoolAnd):
            stack.extend(atom.operands)
            continue
        atoms += 1
        combo = None
        if isinstance(atom, BoolNot):
            kinds |= 1
            inner = atom.operand
            if isinstance(inner, BVCmp):
                kinds |= 4
                ok, width = _supported_cmp(inner)
                if ok:
                    if width > max_width:
                        max_width = width
                    continue
                kinds |= 8
                unsupported += 1
                continue
            combo = inner
        elif isinstance(atom, BoolOr):
            combo = atom
        if combo is not None:
            kinds |= 16
            ok, width = _combo_supported(combo)
            if ok:
                if width > max_width:
                    max_width = width
            else:
                kinds |= 8
                unsupported += 1
            continue
        if isinstance(atom, BoolConst):
            kinds |= 2
            continue
        if isinstance(atom, BVCmp):
            kinds |= 4
            ok, width = _supported_cmp(atom)
            if ok:
                if width > max_width:
                    max_width = width
                continue
        kinds |= 8
        unsupported += 1
    return atoms, unsupported, kinds, max_width


def _features(atoms: int, unsupported: int, kinds: int,
              max_width: int) -> QueryFeatures:
    friendly = unsupported == 0
    size_class = 0 if atoms <= 4 else (1 if atoms <= 16 else 2)
    width_class = 0 if max_width <= 16 else (1 if max_width <= 48 else 2)
    bucket = (friendly, size_class, kinds | (width_class << 5))
    return QueryFeatures(atoms=atoms, friendly=friendly, bucket=bucket)


def classify_query(constraints: Iterable[BoolExpr]) -> QueryFeatures:
    """One cheap pass over the (already simplified) atoms."""

    atoms = 0
    unsupported = 0
    kinds = 0
    max_width = 0
    for constraint in constraints:
        sub_atoms, sub_unsupported, sub_kinds, sub_width = _aggregate(constraint)
        atoms += sub_atoms
        unsupported += sub_unsupported
        kinds |= sub_kinds
        if sub_width > max_width:
            max_width = sub_width
    return _features(atoms, unsupported, kinds, max_width)


class QueryClassifier:
    """Identity-cached :func:`classify_query` for the portfolio's hot path.

    Terms are interned and consecutive queries share long constraint-list
    prefixes, so per-constraint feature aggregates hit the cache almost
    always.  Entries pin the constraint object itself, keeping its ``id``
    stable for the lifetime of the entry; the cache is cleared wholesale
    when it outgrows :data:`MAX_ENTRIES`.

    Not thread-safe by design (query thread only), like :class:`RouteTable`.
    """

    MAX_ENTRIES = 65536

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[BoolExpr, Tuple[int, int, int, int]]] = {}

    def classify(self, constraints: Iterable[BoolExpr]) -> QueryFeatures:
        atoms = 0
        unsupported = 0
        kinds = 0
        max_width = 0
        cache = self._cache
        for constraint in constraints:
            entry = cache.get(id(constraint))
            if entry is None or entry[0] is not constraint:
                aggregate = _aggregate(constraint)
                if len(cache) >= self.MAX_ENTRIES:
                    cache.clear()
                cache[id(constraint)] = (constraint, aggregate)
            else:
                aggregate = entry[1]
            sub_atoms, sub_unsupported, sub_kinds, sub_width = aggregate
            atoms += sub_atoms
            unsupported += sub_unsupported
            kinds |= sub_kinds
            if sub_width > max_width:
                max_width = sub_width
        return _features(atoms, unsupported, kinds, max_width)


class RouteTable:
    """Online per-bucket conclusive-rate tracking for the interval backend.

    The cost asymmetry shapes the policy: a wasted interval attempt costs
    microseconds while a skipped win costs a full bit-blast (hundreds of
    times more), so only buckets that essentially *never* convert are worth
    demoting — hence the low :data:`FLOOR` — and a demoted bucket is
    periodically re-probed so an unlucky early sample (query order is highly
    correlated within one exploration) cannot freeze it out forever.

    Not thread-safe by design: each :class:`PortfolioSolver` owns one table
    and consults it from the query thread only (racer threads never touch
    it).
    """

    #: Observations before a bucket's rate can demote it from routing.
    #: Deliberately large: query order within one exploration is highly
    #: correlated, so a small prefix badly misestimates a bucket's rate,
    #: and 64 optimistic interval tries cost less than one skipped win.
    MIN_SAMPLES = 64
    #: Conclusive-rate floor below which a friendly bucket stops routing.
    FLOOR = 0.1
    #: Every Nth query of a demoted bucket is routed anyway, so the rate
    #: keeps learning and a mis-demoted bucket recovers.
    PROBE_EVERY = 16

    def __init__(self) -> None:
        #: bucket -> [conclusive, inconclusive, skipped] counts.
        self._buckets: Dict[Tuple[bool, int, int], List[int]] = {}

    def route_to_interval(self, features: QueryFeatures) -> bool:
        """Whether this query should go to the interval backend first.

        Friendliness is a bucket *feature*, not a hard gate: the interval
        engine's concrete-verification pass settles many nominally
        unsupported shapes, and one skipped win costs a full bit-blast, so
        even unfriendly buckets start optimistic and are only demoted by
        their own observed rate.
        """

        counts = self._buckets.get(features.bucket)
        if counts is None:
            return True  # optimistic: friendly shapes usually convert
        conclusive, inconclusive, _skipped = counts
        total = conclusive + inconclusive
        if total < self.MIN_SAMPLES:
            return True
        if conclusive / total >= self.FLOOR:
            return True
        counts[2] += 1
        return counts[2] % self.PROBE_EVERY == 0

    def record(self, features: QueryFeatures, conclusive: bool) -> None:
        counts = self._buckets.setdefault(features.bucket, [0, 0, 0])
        counts[0 if conclusive else 1] += 1

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly per-bucket counters (benchmark reporting)."""

        return {
            "bucket_%s_%d_%d" % bucket: {"conclusive": counts[0],
                                         "inconclusive": counts[1],
                                         "skipped": counts[2]}
            for bucket, counts in sorted(self._buckets.items())
        }
