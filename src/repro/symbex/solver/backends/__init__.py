"""Pluggable satisfiability backends behind one declare/assert/check surface.

The registry maps stable names to factories:

* ``cdcl`` — the reference CDCL configuration (identical to the historical
  inlined SAT-core path; all other backends are differentially checked
  against it),
* ``cdcl-alt`` — a diversity CDCL configuration for portfolio racing
  (aggressive restarts, no phase saving, small learned DB),
* ``interval`` — the word-level unsigned-interval engine as a cheap
  semi-decision backend (SAT/UNSAT when conclusive, UNKNOWN otherwise).

``DEFAULT_PORTFOLIO`` is ``("interval", "cdcl")`` — deliberately *not*
including ``cdcl-alt``: racing two complete CDCL engines yields
timing-dependent SAT models, and path exploration concretizes values out of
models, so the default portfolio is restricted to members whose models are
bit-identical to the reference pipeline's.  Configurations including
``cdcl-alt`` are for status-only workloads (the differential sweep, the
query-corpus benchmark) and explicit opt-in.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SolverError
from repro.symbex.solver.backends.base import (
    BackendCapabilityError,
    CancellationToken,
    SolverBackend,
)
from repro.symbex.solver.backends.cdcl import ALT_CDCL_KNOBS, CDCLBackend
from repro.symbex.solver.backends.interval import IntervalBackend
from repro.symbex.solver.backends.portfolio import PortfolioAnswer, PortfolioSolver
from repro.symbex.solver.backends.routing import (
    QueryFeatures,
    RouteTable,
    classify_query,
)

__all__ = [
    "ALT_CDCL_KNOBS",
    "BackendCapabilityError",
    "CDCLBackend",
    "CancellationToken",
    "DEFAULT_PORTFOLIO",
    "IntervalBackend",
    "PortfolioAnswer",
    "PortfolioSolver",
    "QueryFeatures",
    "RouteTable",
    "SolverBackend",
    "backend_info",
    "backend_names",
    "classify_query",
    "make_backend",
]

#: The model-deterministic default race (see module docstring).
DEFAULT_PORTFOLIO: Tuple[str, ...] = ("interval", "cdcl")

#: name -> (capabilities); factories live in :func:`make_backend` so the
#: reference backend can absorb per-config SAT knobs.
_CAPABILITIES: Dict[str, Dict[str, bool]] = {
    "cdcl": {"incremental": True, "complete": True, "cheap": False},
    "cdcl-alt": {"incremental": True, "complete": True, "cheap": False},
    "interval": {"incremental": False, "complete": False, "cheap": True},
}


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, stable order (CLI choices, docs)."""

    return tuple(sorted(_CAPABILITIES))


def backend_info(name: str) -> Dict[str, bool]:
    """Capability flags of *name* without constructing an instance."""

    try:
        return dict(_CAPABILITIES[name])
    except KeyError:
        raise SolverError("unknown solver backend %r (registered: %s)"
                          % (name, ", ".join(backend_names())))


def make_backend(name: str,
                 sat_knobs: Optional[Dict[str, object]] = None) -> SolverBackend:
    """Build a fresh backend instance.

    *sat_knobs* configures the **reference** CDCL backend only (it carries
    the ``SolverConfig`` SAT-core knobs so ``cdcl`` stays bit-identical to
    the historical inlined path); ``cdcl-alt`` pins its own diversity knobs
    and ``interval`` has none.
    """

    if name == "cdcl":
        return CDCLBackend("cdcl", **(sat_knobs or {}))
    if name == "cdcl-alt":
        return CDCLBackend("cdcl-alt", **ALT_CDCL_KNOBS)
    if name == "interval":
        return IntervalBackend()
    raise SolverError("unknown solver backend %r (registered: %s)"
                      % (name, ", ".join(backend_names())))
