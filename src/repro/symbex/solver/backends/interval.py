"""The interval engine promoted to a word-level semi-decision backend.

Historically the unsigned-interval domain (:mod:`repro.symbex.interval`) was
an inline pre-check buried inside the solver pipeline.  As a first-class
backend it competes on equal terms: the portfolio's routing heuristic sends
interval-friendly queries (conjunctions of ``field <cmp> constant`` atoms —
the overwhelming majority of what the OpenFlow agents generate) straight
here, skipping bit-blasting and the CDCL search entirely.

Soundness contract: the backend answers

* ``UNSAT`` only when some variable's feasible set is provably empty,
* ``SAT`` only with a candidate model *verified by concrete evaluation* of
  every asserted constraint (the model is a genuine witness), and
* ``UNKNOWN`` for everything else — never a wrong verdict, so portfolio
  results are bit-identical to a CDCL-only run.

One instance answers one query (``incremental=False``); construction is a
few attribute writes, so per-query instantiation is in the noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SolverError
from repro.symbex.expr import BoolExpr
from repro.symbex.interval import analyze_conjunction
from repro.symbex.solver.backends.base import (
    BackendCapabilityError,
    CancellationToken,
    SolverBackend,
)
from repro.symbex.solver.sat import SATStatus

__all__ = ["IntervalBackend"]


class IntervalBackend(SolverBackend):
    """Word-level semi-decision engine over the unsigned-interval domain."""

    name = "interval"
    incremental = False
    complete = False
    cheap = True

    def __init__(self) -> None:
        self._atoms: List[BoolExpr] = []
        self._model: Optional[Dict[str, int]] = None
        self._checks = 0

    def assert_formula(self, constraint: BoolExpr) -> None:
        self._atoms.append(constraint)

    def check_sat(self, assumptions: Sequence[int] = (),
                  max_conflicts: Optional[int] = None,
                  cancel: Optional[CancellationToken] = None) -> str:
        if assumptions:
            raise BackendCapabilityError(
                "the interval backend has no literal namespace; scope queries "
                "by asserting conditions instead of assuming literals")
        self._checks += 1
        self._model = None
        if not self._atoms:
            self._model = {}
            return SATStatus.SAT
        outcome = analyze_conjunction(self._atoms)
        if outcome.is_unsat:
            return SATStatus.UNSAT
        if outcome.verified:
            self._model = dict(outcome.candidate)
            return SATStatus.SAT
        return SATStatus.UNKNOWN

    def get_value(self) -> Dict[str, int]:
        if self._model is None:
            raise SolverError("interval backend has no model: last answer was "
                              "not SAT")
        return dict(self._model)

    @property
    def solves(self) -> int:
        return self._checks

    def stats_dict(self) -> Dict[str, float]:
        return {"backend": self.name, "atoms": len(self._atoms),
                "solves": self._checks}
