"""CDCL backends: the homegrown SAT core behind the backend protocol.

Two registered configurations share this class:

* ``cdcl`` — the reference configuration, identical knobs to the historical
  :meth:`SolverConfig.make_sat_solver` path (phase saving, slow geometric
  restarts, large learned DB).  Every other backend is differentially checked
  against it.
* ``cdcl-alt`` — a diversity configuration for portfolio racing: aggressive
  restarts, no phase saving, a small frequently-reduced learned DB.  On
  queries where the reference search stalls in one part of the space, the
  alternative's different trajectory often answers first; losers are stopped
  by the cooperative cancellation token.

The backend owns one ``SATSolver`` + ``CNFBuilder`` + ``BitBlaster`` triple
for its whole lifetime, so it is fully incremental: conditions declared once
are solved under assumptions any number of times, and learned clauses
persist across calls (the PrefixOracle / GroupEncoding usage pattern).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.symbex.expr import BoolExpr
from repro.symbex.solver.backends.base import CancellationToken, SolverBackend
from repro.symbex.solver.bitblast import BitBlaster
from repro.symbex.solver.cnf import CNFBuilder
from repro.symbex.solver.model import extract_model
from repro.symbex.solver.sat import SATSolver

__all__ = ["CDCLBackend", "ALT_CDCL_KNOBS"]

#: The ``cdcl-alt`` diversity knobs (vs the reference 100 / 1.5 / 4000 / 1.2
#: with phase saving on).
ALT_CDCL_KNOBS = {
    "phase_saving": False,
    "restart_first": 16,
    "restart_growth": 1.3,
    "learned_db_base": 2000,
    "learned_db_growth": 1.1,
}


class CDCLBackend(SolverBackend):
    """Bit-blasting CDCL engine (complete, incremental)."""

    incremental = True
    complete = True
    cheap = False

    def __init__(self, name: str = "cdcl", **sat_knobs) -> None:
        self.name = name
        self._sat = SATSolver(**sat_knobs)
        self._cnf = CNFBuilder(self._sat)
        self._blaster = BitBlaster(self._cnf)
        self._cancel: Optional[CancellationToken] = None

    # -- query construction -------------------------------------------------

    def assert_formula(self, constraint: BoolExpr) -> None:
        self._blaster.assert_bool(constraint)

    def declare(self, condition: BoolExpr) -> int:
        return self._blaster.bool_lit(condition)

    # -- solving -------------------------------------------------------------

    def check_sat(self, assumptions: Sequence[int] = (),
                  max_conflicts: Optional[int] = None,
                  cancel: Optional[CancellationToken] = None) -> str:
        self._cancel = cancel
        try:
            return self._sat.solve(assumptions=list(assumptions),
                                   max_conflicts=max_conflicts, cancel=cancel)
        finally:
            self._cancel = None

    def get_value(self) -> Dict[str, int]:
        return extract_model(self._blaster, self._sat)

    def cancel(self) -> None:
        token = self._cancel
        if token is not None:
            token.cancel()

    # -- CNF-level surface ----------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._cnf.true_lit

    @property
    def false_lit(self) -> int:
        return self._cnf.false_lit

    def new_var(self) -> int:
        return self._cnf.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        self._cnf.add_clause(literals)

    # -- introspection --------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._sat.num_vars

    @property
    def num_clauses(self) -> int:
        return self._sat.num_clauses

    @property
    def solves(self) -> int:
        return self._sat.solves

    @property
    def sat_solver(self) -> SATSolver:
        """The underlying SAT core (regression tests poke at its trail)."""

        return self._sat

    def stats_dict(self) -> Dict[str, float]:
        snapshot = dict(self._sat.stats_dict())
        snapshot["backend"] = self.name
        return snapshot
