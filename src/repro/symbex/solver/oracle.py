"""Prefix-feasibility oracle: branch decisions as assumption-based SAT.

The legacy engine answers every "is this branch side feasible?" question with
a full :class:`~repro.symbex.solver.solver.Solver` query: re-simplify,
re-bit-blast and re-solve the *entire* path condition in a fresh SAT
instance, twice per two-sided branch.  Along a path of depth ``d`` that is
``O(d)`` rebuilds of mostly identical formulas, and sibling paths rebuild
their shared ancestry again.

:class:`PrefixOracle` applies the incremental machinery that PR 2 introduced
for crosschecking (:mod:`repro.symbex.solver.incremental`) to Phase 1.  One
SAT instance is shared by the whole exploration.  Every distinct branch
condition (and every ``assume()`` constraint) is simplified and bit-blasted
**once**, yielding a literal that is equivalent to the condition — Tseitin
gates encode both directions, so the *same* literal serves the True side
(assume ``lit``) and the False side (assume ``-lit``).  A path prefix is
then just a set of literals, and its feasibility one
``solve(assumptions=prefix)`` call that reuses the shared bit-blasting
structure and all learned clauses.

Two layers short-circuit the backend entirely:

* a **trivial check** — a prefix containing the false literal or a
  complementary pair is UNSAT without solving;
* a **prefix cache** keyed on the literal *set*, shared across all paths of
  the exploration, so re-asking about common ancestry (including the very
  common "program re-branches on an already-decided condition" pattern,
  whose literal is already in the prefix) is a dictionary hit.

The oracle decides feasibility only; it never extracts models.
Concretization keeps using the engine's legacy :class:`Solver` so that the
model (and therefore the concrete value pinned into the path condition) is
bit-for-bit identical to the legacy engine's — that is what makes the
strategy-vs-legacy equivalence of the path-condition sets exact.

Instances are not thread-safe; each worker engine owns its own oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.symbex.expr import BoolConst, BoolExpr
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver.bitblast import BitBlaster
from repro.symbex.solver.cnf import CNFBuilder
from repro.symbex.solver.sat import SATSolver, SATStatus
from repro.symbex.solver.solver import SolverConfig

__all__ = ["PrefixOracle", "PrefixOracleStats"]


@dataclass
class PrefixOracleStats:
    """Counters of one :class:`PrefixOracle`."""

    #: Distinct conditions simplified + bit-blasted into the shared CNF.
    literals_encoded: int = 0
    #: Conditions requested again after their first encoding (the saving).
    literal_reuses: int = 0
    #: Feasibility questions asked by the scheduler.
    branch_checks: int = 0
    #: Checks decided without the backend (false literal / complementary pair).
    trivial_decides: int = 0
    #: Checks answered from the shared prefix-feasibility cache.
    prefix_cache_hits: int = 0
    #: Checks that reached the backend as an assumption re-solve.
    assumption_solves: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    encode_time: float = 0.0
    solve_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "literals_encoded": self.literals_encoded,
            "literal_reuses": self.literal_reuses,
            "branch_checks": self.branch_checks,
            "trivial_decides": self.trivial_decides,
            "prefix_cache_hits": self.prefix_cache_hits,
            "assumption_solves": self.assumption_solves,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "encode_time": self.encode_time,
            "solve_time": self.solve_time,
        }


class PrefixOracle:
    """Shared incremental encoding of one exploration's branch conditions."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config if config is not None else SolverConfig()
        self.stats = PrefixOracleStats()
        self._sat = self.config.make_sat_solver()
        self._cnf = CNFBuilder(self._sat)
        self._blaster = BitBlaster(self._cnf)
        # id-keyed (the expression layer hash-conses terms): entry values
        # carry the condition so its id stays pinned while the entry lives.
        self._literals: Dict[int, Tuple[BoolExpr, int]] = {}
        self._prefix_cache: Dict[FrozenSet[int], str] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def literal(self, condition: BoolExpr) -> int:
        """The SAT literal equivalent to *condition* (encoded once per term)."""

        entry = self._literals.get(id(condition))
        if entry is not None:
            self.stats.literal_reuses += 1
            return entry[1]
        started = time.perf_counter()
        simplified = simplify_bool(condition)
        if isinstance(simplified, BoolConst):
            lit = self._cnf.const(simplified.value)
        else:
            lit = self._blaster.bool_lit(simplified)
        self._literals[id(condition)] = (condition, lit)
        self.stats.literals_encoded += 1
        self.stats.encode_time += time.perf_counter() - started
        return lit

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    def check_prefix(self, literals: Sequence[int]) -> str:
        """Satisfiability (a :class:`SATStatus` value) of a literal prefix."""

        self.stats.branch_checks += 1
        true_lit = self._cnf.true_lit
        assumptions = frozenset(lit for lit in literals if lit != true_lit)
        if self._cnf.false_lit in assumptions or any(-lit in assumptions
                                                     for lit in assumptions):
            self.stats.trivial_decides += 1
            self.stats.unsat += 1
            return SATStatus.UNSAT
        if not assumptions:
            self.stats.trivial_decides += 1
            self.stats.sat += 1
            return SATStatus.SAT

        if self.config.use_cache:
            cached = self._prefix_cache.get(assumptions)
            if cached is not None:
                self.stats.prefix_cache_hits += 1
                if cached == SATStatus.SAT:
                    self.stats.sat += 1
                else:
                    self.stats.unsat += 1
                return cached

        started = time.perf_counter()
        self.stats.assumption_solves += 1
        # Path order (first occurrence), not sorted: consecutive feasibility
        # checks share long decision prefixes, and the SAT core's assumption-
        # trail reuse turns a shared prefix into zero re-propagation.
        ordered: List[int] = []
        seen = set()
        for lit in literals:
            if lit != true_lit and lit not in seen:
                seen.add(lit)
                ordered.append(lit)
        status = self._sat.solve(assumptions=ordered,
                                 max_conflicts=self.config.max_conflicts)
        self.stats.solve_time += time.perf_counter() - started
        if status == SATStatus.UNKNOWN:
            # Never cached: a retry with a raised budget must reach the backend.
            self.stats.unknown += 1
            return status
        if status == SATStatus.SAT:
            self.stats.sat += 1
        else:
            self.stats.unsat += 1
        if self.config.use_cache:
            self._prefix_cache[assumptions] = status
        return status

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def encoded_count(self) -> int:
        return len(self._literals)

    def stats_dict(self) -> Dict[str, float]:
        """Counter snapshot plus the size of the shared backend."""

        snapshot = self.stats.as_dict()
        snapshot["sat_variables"] = self._sat.num_vars
        snapshot["sat_clauses"] = self._sat.num_clauses
        snapshot["backend_solves"] = self._sat.solves
        return snapshot
