"""Prefix-feasibility oracle: branch decisions as assumption-based SAT.

The legacy engine answers every "is this branch side feasible?" question with
a full :class:`~repro.symbex.solver.solver.Solver` query: re-simplify,
re-bit-blast and re-solve the *entire* path condition in a fresh SAT
instance, twice per two-sided branch.  Along a path of depth ``d`` that is
``O(d)`` rebuilds of mostly identical formulas, and sibling paths rebuild
their shared ancestry again.

:class:`PrefixOracle` applies the incremental machinery that PR 2 introduced
for crosschecking (:mod:`repro.symbex.solver.incremental`) to Phase 1.  One
SAT instance is shared by the whole exploration.  Every distinct branch
condition (and every ``assume()`` constraint) is simplified and bit-blasted
**once**, yielding a literal that is equivalent to the condition — Tseitin
gates encode both directions, so the *same* literal serves the True side
(assume ``lit``) and the False side (assume ``-lit``).  A path prefix is
then just a set of literals, and its feasibility one
``solve(assumptions=prefix)`` call that reuses the shared bit-blasting
structure and all learned clauses.

Four layers short-circuit the backend entirely:

* a **prefix trie of bitblast deltas** — paths are nodes; a child path that
  extends a parent prefix by one decision reuses the parent's encoded
  literal set and ordered assumption list and only adds the suffix literal
  (``extend``), instead of re-walking and re-hashing the shared conditions
  per check.  Each node caches its feasibility verdict, so re-asking about
  common ancestry (including the very common "program re-branches on an
  already-decided condition" pattern) is a pointer hop; ``delta_hits``
  counts reused nodes.
* a **trivial check** — a prefix containing the false literal or a
  complementary pair is UNSAT without solving (detected in O(1) at node
  creation against the parent's set);
* a **model-witness pool** — every model the backend produces is extracted
  once and kept in a bounded MRU pool.  A prefix is proven SAT without the
  backend when some pooled model satisfies every assumption literal, which
  is checked by *compiled concrete evaluation* of each literal's source
  condition (:mod:`repro.symbex.compile`), memoized per (model, literal).
  Any extension of a pooled model is a genuine witness, so a hit answers
  exactly what the backend would answer.  When no pooled model fits, the
  freshest one is *repaired* (inputs of failing atomic literals patched and
  the whole prefix re-verified) before giving up.
* a **word-level interval pre-filter** — the unsigned-interval domain of
  :mod:`repro.symbex.interval` runs over the prefix's source conditions;
  only its two sound outcomes short-circuit (a proven-empty domain is
  UNSAT, a concretely *verified* candidate model is SAT and joins the
  pool), so verdicts — and the explored path set — stay bit-identical to
  the pool-free oracle (the exploration benchmark asserts this equivalence
  against the legacy engine).

The oracle decides feasibility only; it never *returns* models.
Concretization keeps using the engine's legacy :class:`Solver` so that the
model (and therefore the concrete value pinned into the path condition) is
bit-for-bit identical to the legacy engine's — that is what makes the
strategy-vs-legacy equivalence of the path-condition sets exact.

Instances are not thread-safe; each worker engine owns its own oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.symbex.compile import compile_term
from repro.symbex.interval import analyze_conjunction
from repro.symbex.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVCmp,
    BVConst,
    BVExtract,
    BVVar,
    BVZeroExt,
    Expr,
)
from repro.symbex.simplify import simplify_bool
from repro.symbex.solver.sat import SATStatus
from repro.symbex.solver.solver import SolverConfig

__all__ = ["PrefixOracle", "PrefixOracleStats", "PrefixNode"]


@dataclass
class PrefixOracleStats:
    """Counters of one :class:`PrefixOracle`."""

    #: Distinct conditions simplified + bit-blasted into the shared CNF.
    literals_encoded: int = 0
    #: Conditions requested again after their first encoding (the saving).
    literal_reuses: int = 0
    #: Feasibility questions asked by the scheduler.
    branch_checks: int = 0
    #: Checks decided without the backend (false literal / complementary pair).
    trivial_decides: int = 0
    #: Checks answered from a node's cached verdict (shared prefix ancestry).
    prefix_cache_hits: int = 0
    #: Checks proven SAT by a pooled backend model (no solve).
    model_pool_hits: int = 0
    #: Checks proven SAT by locally repairing a pooled model (no solve).
    witness_repairs: int = 0
    #: Checks that consulted the pool and still needed the backend.
    model_pool_misses: int = 0
    #: Checks proven UNSAT by the word-level interval domain (no solve).
    interval_unsat: int = 0
    #: Checks proven SAT by a verified interval candidate model (no solve).
    interval_sat: int = 0
    #: Models extracted from backend SAT answers into the pool.
    models_pooled: int = 0
    #: Prefix-trie nodes created (one per distinct path prefix).
    prefix_nodes: int = 0
    #: ``extend`` calls answered by an existing node (per-path delta reuse).
    delta_hits: int = 0
    #: Checks that reached the backend as an assumption re-solve.
    assumption_solves: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    encode_time: float = 0.0
    solve_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "literals_encoded": self.literals_encoded,
            "literal_reuses": self.literal_reuses,
            "branch_checks": self.branch_checks,
            "trivial_decides": self.trivial_decides,
            "prefix_cache_hits": self.prefix_cache_hits,
            "model_pool_hits": self.model_pool_hits,
            "witness_repairs": self.witness_repairs,
            "model_pool_misses": self.model_pool_misses,
            "interval_unsat": self.interval_unsat,
            "interval_sat": self.interval_sat,
            "models_pooled": self.models_pooled,
            "prefix_nodes": self.prefix_nodes,
            "delta_hits": self.delta_hits,
            "assumption_solves": self.assumption_solves,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "encode_time": self.encode_time,
            "solve_time": self.solve_time,
        }


class PrefixNode:
    """One distinct path prefix: parent + one literal, encoded once.

    ``lits`` (the assumption set) and ``ordered`` (first-occurrence order,
    which the SAT core's assumption-trail reuse wants) are built from the
    parent by a single-literal delta instead of re-walking the whole path.
    ``trivial_unsat`` is decided in O(1) at creation.  ``status`` caches the
    feasibility verdict (UNKNOWN is never cached).
    """

    __slots__ = ("lits", "ordered", "status", "trivial_unsat", "children")

    def __init__(self, lits: FrozenSet[int], ordered: Tuple[int, ...],
                 trivial_unsat: bool) -> None:
        self.lits = lits
        self.ordered = ordered
        self.trivial_unsat = trivial_unsat
        self.status: Optional[str] = None
        self.children: Dict[int, "PrefixNode"] = {}


class _PooledModel:
    """One extracted backend model plus its memoized literal truth values."""

    __slots__ = ("assignment", "truths")

    def __init__(self, assignment: Dict[str, int]) -> None:
        self.assignment = assignment
        #: base SAT var -> whether this model satisfies the *positive* lit.
        self.truths: Dict[int, bool] = {}


class PrefixOracle:
    """Shared incremental encoding of one exploration's branch conditions."""

    #: Bounded MRU pool of extracted backend models.
    MODEL_POOL_LIMIT = 24

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config if config is not None else SolverConfig()
        self.stats = PrefixOracleStats()
        # Assumption-based solving needs declare() + a literal namespace, so
        # the oracle asks the config for an *incremental* backend (the
        # reference CDCL engine unless overridden with another incremental
        # one); the word-level interval engine contributes through the
        # oracle's own pre-filter instead.
        self._backend = self.config.make_incremental_backend()
        # id-keyed (the expression layer hash-conses terms): entry values
        # carry the condition so its id stays pinned while the entry lives.
        self._literals: Dict[int, Tuple[BoolExpr, int]] = {}
        # base SAT var -> (simplified condition, its encoded literal); the
        # reverse map the model pool evaluates assumptions through.
        self._lit_conditions: Dict[int, Tuple[BoolExpr, int]] = {}
        self._root = PrefixNode(frozenset(), (), False)
        # Set-keyed verdicts shared across trie nodes: two orderings of the
        # same literal set are the same query (node.status is the per-node
        # fast path in front of this map).
        self._prefix_cache: Dict[FrozenSet[int], str] = {}
        self._models: List[_PooledModel] = []

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def literal(self, condition: BoolExpr) -> int:
        """The SAT literal equivalent to *condition* (encoded once per term)."""

        entry = self._literals.get(id(condition))
        if entry is not None:
            self.stats.literal_reuses += 1
            return entry[1]
        started = time.perf_counter()
        simplified = simplify_bool(condition)
        if isinstance(simplified, BoolConst):
            lit = self._backend.const_lit(simplified.value)
        else:
            lit = self._backend.declare(simplified)
            self._lit_conditions.setdefault(abs(lit), (simplified, lit))
        self._literals[id(condition)] = (condition, lit)
        self.stats.literals_encoded += 1
        self.stats.encode_time += time.perf_counter() - started
        return lit

    # ------------------------------------------------------------------
    # Prefix trie (per-path deltas)
    # ------------------------------------------------------------------

    def root(self) -> PrefixNode:
        """The empty-prefix node every path starts from."""

        return self._root

    def extend(self, node: PrefixNode, lit: int) -> PrefixNode:
        """The node for *node*'s prefix extended by *lit* (delta-encoded).

        A true literal or a literal already in the prefix leaves the node
        unchanged; an existing child is reused (``delta_hits``); otherwise
        one new node is created from the parent by a single-literal delta.
        """

        if lit == self._backend.true_lit or lit in node.lits:
            self.stats.delta_hits += 1
            return node
        child = node.children.get(lit)
        if child is not None:
            self.stats.delta_hits += 1
            return child
        trivial = (node.trivial_unsat or lit == self._backend.false_lit
                   or -lit in node.lits)
        child = PrefixNode(node.lits | {lit}, node.ordered + (lit,), trivial)
        node.children[lit] = child
        self.stats.prefix_nodes += 1
        return child

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    def check_prefix(self, literals: Sequence[int]) -> str:
        """Satisfiability (a :class:`SATStatus` value) of a literal sequence.

        Convenience wrapper over the node API: walks the trie from the root
        (every step after the first visit is a delta hit) and checks the
        final node.
        """

        node = self._root
        for lit in literals:
            node = self.extend(node, lit)
        return self.check_node(node)

    def check_node(self, node: PrefixNode) -> str:
        """Satisfiability of one prefix node (cached per node)."""

        self.stats.branch_checks += 1
        if node.trivial_unsat:
            self.stats.trivial_decides += 1
            self.stats.unsat += 1
            return SATStatus.UNSAT
        if not node.lits:
            self.stats.trivial_decides += 1
            self.stats.sat += 1
            return SATStatus.SAT
        if self.config.use_cache:
            cached = node.status
            if cached is None:
                cached = self._prefix_cache.get(node.lits)
                node.status = cached
            if cached is not None:
                self.stats.prefix_cache_hits += 1
                if cached == SATStatus.SAT:
                    self.stats.sat += 1
                else:
                    self.stats.unsat += 1
                return cached

        if self._witness_in_pool(node):
            self.stats.model_pool_hits += 1
            self.stats.sat += 1
            if self.config.use_cache:
                node.status = SATStatus.SAT
                self._prefix_cache[node.lits] = SATStatus.SAT
            return SATStatus.SAT
        word_level = self._interval_prefilter(node)
        if word_level is not None:
            if word_level == SATStatus.SAT:
                self.stats.interval_sat += 1
                self.stats.sat += 1
            else:
                self.stats.interval_unsat += 1
                self.stats.unsat += 1
            if self.config.use_cache:
                node.status = word_level
                self._prefix_cache[node.lits] = word_level
            return word_level
        if self._repair_witness(node):
            self.stats.witness_repairs += 1
            self.stats.sat += 1
            if self.config.use_cache:
                node.status = SATStatus.SAT
                self._prefix_cache[node.lits] = SATStatus.SAT
            return SATStatus.SAT
        if self._models:
            self.stats.model_pool_misses += 1

        started = time.perf_counter()
        self.stats.assumption_solves += 1
        status = self._backend.check_sat(assumptions=list(node.ordered),
                                         max_conflicts=self.config.max_conflicts)
        self.stats.solve_time += time.perf_counter() - started
        if status == SATStatus.UNKNOWN:
            # Never cached: a retry with a raised budget must reach the backend.
            self.stats.unknown += 1
            return status
        if status == SATStatus.SAT:
            self.stats.sat += 1
            self._pool_model()
        else:
            self.stats.unsat += 1
        if self.config.use_cache:
            node.status = status
            self._prefix_cache[node.lits] = status
        return status

    def _interval_prefilter(self, node: PrefixNode) -> Optional[str]:
        """Sound word-level verdict for *node*, or ``None`` for "ask the SAT core".

        Reconstructs the conjunction of source conditions behind the
        assumption literals (negative assumptions become ``BoolNot``) and
        runs the unsigned-interval domain over it.  Only the two *sound*
        outcomes short-circuit: a proven-empty variable domain is UNSAT, and
        a candidate model verified by compiled concrete evaluation is SAT
        (and joins the witness pool).  Everything else falls through to the
        backend, so verdicts — and hence the explored path set — stay
        bit-identical to the oracle-free engine.
        """

        atoms: List[BoolExpr] = []
        for lit in node.ordered:
            entry = self._lit_conditions.get(lit if lit > 0 else -lit)
            if entry is None:
                return None
            condition, encoded = entry
            if (lit > 0) != (encoded > 0):
                condition = BoolNot(condition)
            atoms.append(condition)
        outcome = analyze_conjunction(atoms)
        if outcome.is_unsat:
            return SATStatus.UNSAT
        if outcome.verified:
            self._models.insert(0, _PooledModel(dict(outcome.candidate)))
            del self._models[self.MODEL_POOL_LIMIT:]
            return SATStatus.SAT
        return None

    # ------------------------------------------------------------------
    # Model-witness pool
    # ------------------------------------------------------------------

    def _pool_model(self) -> None:
        """Extract the backend's current model into the MRU pool."""

        self._models.insert(0, _PooledModel(self._backend.get_value()))
        del self._models[self.MODEL_POOL_LIMIT:]
        self.stats.models_pooled += 1

    def _witness_in_pool(self, node: PrefixNode) -> bool:
        """True when some pooled model satisfies every assumption of *node*."""

        for index, pooled in enumerate(self._models):
            truths = pooled.truths
            for lit in reversed(node.ordered):
                base = lit if lit > 0 else -lit
                value = truths.get(base)
                if value is None:
                    entry = self._lit_conditions.get(base)
                    if entry is None:
                        break  # not evaluable: fall through to the backend
                    condition, encoded = entry
                    # Compiled concrete evaluation; default=0 extends the
                    # model over variables blasted after it was extracted
                    # (any extension of a witness is a witness).
                    truth = bool(compile_term(condition).run(
                        pooled.assignment, default=0))
                    # Truth of the *positive* base var: the encoded literal
                    # may itself be negative.
                    value = truth if encoded > 0 else not truth
                    truths[base] = value
                if value != (lit > 0):
                    break
            else:
                if index:
                    # MRU: children of this prefix will ask again soon.
                    self._models.insert(0, self._models.pop(index))
                return True
        return False

    def _repair_witness(self, node: PrefixNode) -> bool:
        """Prove *node* SAT by locally repairing the freshest pooled model.

        The dominant backend-bound check in practice is a known-SAT prefix
        extended by one *new* condition (a fresh ``field == const`` match
        that no pooled model happens to satisfy).  Instead of solving, copy
        the most recent pooled model and patch the inputs of failing
        *atomic* literals (variable/extract against a constant); accept only
        if a full compiled re-evaluation of **every** literal then passes —
        the repaired model is a genuine witness, so this can never flip an
        answer; anything unrepairable falls through to the backend.
        """

        if not self._models or not node.ordered:
            return False
        candidate = dict(self._models[0].assignment)
        conditions: List[Tuple[BoolExpr, bool]] = []
        for lit in node.ordered:
            base = lit if lit > 0 else -lit
            entry = self._lit_conditions.get(base)
            if entry is None:
                return False
            condition, encoded = entry
            conditions.append((condition, (lit > 0) == (encoded > 0)))
        for _attempt in range(3):
            repaired_any = False
            failed = False
            for condition, target in conditions:
                if bool(compile_term(condition).run(candidate, default=0)) == target:
                    continue
                failed = True
                if _repair_condition(condition, target, candidate):
                    repaired_any = True
                else:
                    return False
            if not failed:
                self._models.insert(0, _PooledModel(candidate))
                del self._models[self.MODEL_POOL_LIMIT:]
                return True
            if not repaired_any:
                return False
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def encoded_count(self) -> int:
        return len(self._literals)

    def stats_dict(self) -> Dict[str, float]:
        """Counter snapshot plus the size of the shared backend."""

        snapshot = self.stats.as_dict()
        snapshot["sat_variables"] = self._backend.num_vars
        snapshot["sat_clauses"] = self._backend.num_clauses
        snapshot["backend_solves"] = self._backend.solves
        snapshot["model_pool_size"] = len(self._models)
        return snapshot


# ---------------------------------------------------------------------------
# Witness repair: best-effort input patching for atomic conditions
# ---------------------------------------------------------------------------


def _write_input(expr: Expr, value: int, model: Dict[str, int]) -> bool:
    """Force the *input bits* read by ``expr`` so it evaluates to *value*.

    Handles the shapes simplification leaves in branch atoms: a variable, an
    extract of a variable, and zero-extensions thereof.  Returns False for
    anything else (derived expressions are not repairable locally).
    """

    if isinstance(expr, BVZeroExt):
        if value >= (1 << expr.operand.width):
            return False
        return _write_input(expr.operand, value, model)
    if isinstance(expr, BVVar):
        model[expr.name] = value
        return True
    if isinstance(expr, BVExtract):
        operand = expr.operand
        if isinstance(operand, BVZeroExt):
            operand = operand.operand
        if not isinstance(operand, BVVar):
            return False
        field_mask = ((1 << expr.width) - 1) << expr.low
        current = model.get(operand.name, 0)
        model[operand.name] = ((current & ~field_mask)
                               | ((value << expr.low) & field_mask)) \
            & ((1 << operand.width) - 1)
        return True
    return False


def _repair_condition(condition: BoolExpr, target: bool,
                      model: Dict[str, int]) -> bool:
    """Patch *model* so *condition* evaluates to *target* (best effort).

    Only touches free inputs of atomic comparisons; the caller re-verifies
    every literal afterwards, so a wrong guess costs a backend solve, never
    soundness.
    """

    if isinstance(condition, BoolNot):
        return _repair_condition(condition.operand, not target, model)
    if isinstance(condition, BoolAnd) and target:
        ok = True
        for operand in condition.operands:
            if not bool(compile_term(operand).run(model, default=0)):
                ok = _repair_condition(operand, True, model) and ok
        return ok
    if isinstance(condition, BoolOr) and not target:
        ok = True
        for operand in condition.operands:
            if bool(compile_term(operand).run(model, default=0)):
                ok = _repair_condition(operand, False, model) and ok
        return ok
    if isinstance(condition, (BoolAnd, BoolOr)):
        # One falsified conjunct / satisfied disjunct suffices: try each.
        for operand in condition.operands:
            patched = dict(model)
            if (_repair_condition(operand, target, patched)
                    and bool(compile_term(operand).run(patched, default=0)) == target):
                model.update(patched)
                return True
        return False
    if not isinstance(condition, BVCmp):
        return False
    lhs, rhs = condition.lhs, condition.rhs
    if isinstance(lhs, BVConst) and condition.op in ("eq", "ne"):
        lhs, rhs = rhs, lhs
    if not isinstance(rhs, BVConst):
        return False
    constant = rhs.value
    width = lhs.width
    mask = (1 << width) - 1
    op = condition.op
    if op == "ne":
        op, target = "eq", not target
    if op == "eq":
        if target:
            return _write_input(lhs, constant, model)
        return _write_input(lhs, constant ^ 1, model) \
            if width else False
    if op == "ult":
        if target:
            return constant > 0 and _write_input(lhs, 0, model)
        return _write_input(lhs, constant, model)
    if op == "ule":
        if target:
            return _write_input(lhs, 0, model)
        return constant < mask and _write_input(lhs, constant + 1, model)
    return False
