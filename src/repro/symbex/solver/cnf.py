"""CNF construction helpers (Tseitin-style gate encodings).

:class:`CNFBuilder` owns the variable namespace and the clause database of a
single query and provides gate-level helpers (AND/OR/XOR/ITE, adders,
comparators are built on top of these by the bit-blaster).  The builder keeps
a dedicated *true* literal so constant bits do not need special cases in the
bit-blaster.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.symbex.solver.sat import SATSolver

__all__ = ["CNFBuilder"]


class CNFBuilder:
    """Accumulates CNF clauses over a fresh variable namespace."""

    def __init__(self, solver: SATSolver = None) -> None:
        self.solver = solver if solver is not None else SATSolver()
        self._true_lit = self.solver.new_var()
        self.solver.add_clause([self._true_lit])
        self.clause_count = 1

    # -- primitives --------------------------------------------------------

    @property
    def true_lit(self) -> int:
        """A literal that is constrained to be true."""

        return self._true_lit

    @property
    def false_lit(self) -> int:
        """A literal that is constrained to be false."""

        return -self._true_lit

    def const(self, value: bool) -> int:
        return self._true_lit if value else -self._true_lit

    def new_var(self) -> int:
        return self.solver.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        self.solver.add_clause(list(literals))
        self.clause_count += 1

    # -- gates ---------------------------------------------------------------

    def gate_not(self, lit: int) -> int:
        return -lit

    def gate_and(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of *literals*."""

        literals = [l for l in literals]
        if not literals:
            return self.true_lit
        if len(literals) == 1:
            return literals[0]
        if any(l == self.false_lit for l in literals):
            return self.false_lit
        literals = [l for l in literals if l != self.true_lit]
        if not literals:
            return self.true_lit
        if len(literals) == 1:
            return literals[0]
        out = self.new_var()
        for lit in literals:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-l for l in literals])
        return out

    def gate_or(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of *literals*."""

        return -self.gate_and([-l for l in literals])

    def gate_xor(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a XOR b``."""

        if a == self.true_lit:
            return -b
        if a == self.false_lit:
            return b
        if b == self.true_lit:
            return -a
        if b == self.false_lit:
            return a
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def gate_ite(self, cond: int, then: int, otherwise: int) -> int:
        """Return a literal equivalent to ``cond ? then : otherwise``."""

        if cond == self.true_lit:
            return then
        if cond == self.false_lit:
            return otherwise
        if then == otherwise:
            return then
        out = self.new_var()
        self.add_clause([-out, -cond, then])
        self.add_clause([-out, cond, otherwise])
        self.add_clause([out, -cond, -then])
        self.add_clause([out, cond, -otherwise])
        return out

    def gate_iff(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a == b``."""

        return -self.gate_xor(a, b)

    # -- arithmetic helpers -------------------------------------------------

    def full_adder(self, a: int, b: int, carry_in: int) -> (int, int):
        """Return ``(sum, carry_out)`` literals of a single-bit full adder."""

        partial = self.gate_xor(a, b)
        total = self.gate_xor(partial, carry_in)
        carry_out = self.gate_or([
            self.gate_and([a, b]),
            self.gate_and([partial, carry_in]),
        ])
        return total, carry_out

    def assert_true(self, lit: int) -> None:
        """Force *lit* to hold in every model."""

        self.add_clause([lit])

    def assert_false(self, lit: int) -> None:
        """Force *lit* to be false in every model."""

        self.add_clause([-lit])
