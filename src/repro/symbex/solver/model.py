"""Model extraction and verification.

After the SAT backend reports SAT, the bit-level assignment is folded back
into per-variable integers.  Because the whole pipeline (simplification,
interval analysis, bit-blasting, CDCL) is home-grown, every model is
re-verified by concrete evaluation of the original constraints before it is
returned to callers — a cheap, independent soundness check that turns silent
solver bugs into loud errors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.errors import SolverError
from repro.symbex.compile import compile_term
from repro.symbex.expr import BoolExpr
from repro.symbex.solver.bitblast import BitBlaster
from repro.symbex.solver.sat import SATSolver

__all__ = ["extract_model", "verify_model", "complete_model"]


def extract_model(blaster: BitBlaster, sat: SATSolver) -> Dict[str, int]:
    """Read back per-variable integer values from the SAT assignment."""

    model: Dict[str, int] = {}
    for name, bits in blaster.variable_bits().items():
        value = 0
        for index, lit in enumerate(bits):
            var = abs(lit)
            bit_value = sat.model_value(var)
            if lit < 0:
                bit_value = not bit_value
            if bit_value:
                value |= 1 << index
        model[name] = value
    return model


def complete_model(model: Mapping[str, int], constraints: Iterable[BoolExpr],
                   default: int = 0) -> Dict[str, int]:
    """Extend *model* with a default value for variables it does not bind.

    Constraints that only mention variables eliminated by simplification can
    otherwise leave holes in the assignment, which would make concrete replay
    of generated test cases impossible.
    """

    completed = dict(model)
    for constraint in constraints:
        # The compiled program's variable list is precomputed once per
        # distinct term (hash-consing makes the cache hit free), so this
        # avoids a full tree walk per constraint per model.
        for name in compile_term(constraint).variables:
            completed.setdefault(name, default)
    return completed


def verify_model(model: Mapping[str, int], constraints: Iterable[BoolExpr]) -> bool:
    """True when *model* satisfies every constraint under concrete evaluation."""

    constraints = list(constraints)
    completed = complete_model(model, constraints)
    return all(compile_term(constraint).run_bool(completed)
               for constraint in constraints)


def require_verified(model: Mapping[str, int], constraints: Iterable[BoolExpr]) -> Dict[str, int]:
    """Return a completed model or raise :class:`SolverError` if it fails verification."""

    constraints = list(constraints)
    completed = complete_model(model, constraints)
    for constraint in constraints:
        if not compile_term(constraint).run_bool(completed):
            raise SolverError(
                "solver returned a model that does not satisfy %r — this is a bug "
                "in the decision procedure" % (constraint,)
            )
    return completed
