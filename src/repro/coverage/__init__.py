"""Coverage measurement over the agent code.

The paper reports instruction and branch coverage of the sections of agent
code relevant to OpenFlow processing (Figure 4, Tables 4 and 5).  This package
provides a tracing-based tracker scoped to the agent packages: it records
executed source lines and line-to-line arcs while agent handlers run, and
reports them against statically counted executable lines and branch points.
"""

from repro.coverage.tracker import CoverageReport, CoverageTracker

__all__ = ["CoverageTracker", "CoverageReport"]
