"""Line and branch coverage tracking for the agents under test.

The tracker is deliberately scoped: it is armed only while agent handlers run
(the harness wraps each dispatch in :meth:`CoverageTracker.tracking`), so the
symbolic-execution machinery itself does not pollute the numbers.  Coverage is
cumulative across all explored paths of a test, matching how the paper
aggregates Cloud9's per-test coverage.

* **Instruction coverage** — executed source lines over statically counted
  executable lines of the tracked modules.
* **Branch coverage** — executed outgoing arcs of branching lines over two
  arcs per statically counted branch point (``if``/``while``/ternary/
  comprehension-filter), the usual arc-based approximation.
"""

from __future__ import annotations

import ast
import contextlib
import importlib
import pkgutil
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

__all__ = ["CoverageTracker", "CoverageReport", "CoverageFingerprint",
           "executable_lines", "branch_lines"]

#: A coverage fingerprint: the frozen set of covered units.  Line units are
#: ``(path, line)`` pairs, arc units are ``(path, src, dst)`` triples — the
#: arity disambiguates them, so one flat set holds both.
CoverageFingerprint = FrozenSet[tuple]


def _module_files(package_names: Iterable[str]) -> Dict[str, str]:
    """Map module name -> source file for every module under the given packages."""

    files: Dict[str, str] = {}
    for package_name in package_names:
        package = importlib.import_module(package_name)
        package_file = getattr(package, "__file__", None)
        if package_file:
            files[package_name] = package_file
        search_path = getattr(package, "__path__", None)
        if not search_path:
            continue
        for module_info in pkgutil.walk_packages(search_path, prefix=package_name + "."):
            try:
                module = importlib.import_module(module_info.name)
            except ImportError:  # pragma: no cover - defensive
                continue
            module_file = getattr(module, "__file__", None)
            if module_file:
                files[module_info.name] = module_file
    return files


def executable_lines(filename: str) -> Set[int]:
    """Statically determine the executable line numbers of a source file."""

    with open(filename, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=filename)
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.stmt, ast.excepthandler)):
            if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            lines.add(node.lineno)
        elif isinstance(node, (ast.IfExp, ast.comprehension)):
            lines.add(getattr(node, "lineno", 0) or 0)
    lines.discard(0)
    return lines


def branch_lines(filename: str) -> Set[int]:
    """Statically determine the lines that contain a branch point.

    Thin wrapper over the decision-map extractor so the tracker's dynamic
    branch accounting and the static denominator behind ``coverage_fraction``
    share one definition of "branch site" — the dynamic set is a subset of
    the static one by construction.
    """

    from repro.analysis.decision_map import branch_sites_for_file

    return {site.line for site in branch_sites_for_file(filename)}


@dataclass
class CoverageReport:
    """Aggregated coverage numbers for one tracked scope."""

    executable_line_count: int
    executed_line_count: int
    branch_point_count: int
    executed_branch_arc_count: int
    #: Static branch sites whose line was executed at least once — the
    #: numerator of :attr:`coverage_fraction` (denominator is the static
    #: :attr:`branch_point_count` from the decision map).
    executed_branch_point_count: int = 0

    @property
    def instruction_coverage(self) -> float:
        """Fraction of executable lines that were executed at least once."""

        if not self.executable_line_count:
            return 0.0
        return self.executed_line_count / self.executable_line_count

    @property
    def branch_coverage(self) -> float:
        """Executed branch arcs over two arcs per static branch point (capped at 1)."""

        if not self.branch_point_count:
            return 0.0
        return min(1.0, self.executed_branch_arc_count / (2.0 * self.branch_point_count))

    @property
    def coverage_fraction(self) -> float:
        """Dynamic branch points reached over static decision-map sites.

        This is the true fraction the paper-style "coverage" tables need:
        the denominator is counted statically before any path runs, so an
        unexplored agent reports 0.0 rather than an undefined novelty count.
        """

        if not self.branch_point_count:
            return 0.0
        return self.executed_branch_point_count / self.branch_point_count

    def as_dict(self) -> Dict[str, float]:
        return {
            "executable_lines": self.executable_line_count,
            "executed_lines": self.executed_line_count,
            "branch_points": self.branch_point_count,
            "executed_branch_arcs": self.executed_branch_arc_count,
            "executed_branch_points": self.executed_branch_point_count,
            "instruction_coverage": self.instruction_coverage,
            "branch_coverage": self.branch_coverage,
            "coverage_fraction": self.coverage_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CoverageReport":
        """Rebuild a report from :meth:`as_dict` output (derived rates recomputed)."""

        return cls(
            executable_line_count=int(data["executable_lines"]),
            executed_line_count=int(data["executed_lines"]),
            branch_point_count=int(data["branch_points"]),
            executed_branch_arc_count=int(data["executed_branch_arcs"]),
            executed_branch_point_count=int(data.get("executed_branch_points", 0)),
        )


class CoverageTracker:
    """Records executed lines/arcs of the tracked packages while armed."""

    def __init__(self, packages: Optional[Iterable[str]] = None) -> None:
        self.packages = list(packages) if packages is not None else ["repro.agents"]
        self._files = _module_files(self.packages)
        self._file_set = set(self._files.values())
        self._executable: Dict[str, Set[int]] = {
            path: executable_lines(path) for path in self._file_set
        }
        self._branches: Dict[str, Set[int]] = {
            path: branch_lines(path) for path in self._file_set
        }
        self.executed: Dict[str, Set[int]] = {path: set() for path in self._file_set}
        self.arcs: Dict[str, Set[Tuple[int, int]]] = {path: set() for path in self._file_set}
        self._last_line: Dict[int, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    # Arming / disarming
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def tracking(self):
        """Context manager that arms the tracer for the duration of the block."""

        previous = sys.gettrace()
        sys.settrace(self._trace)
        try:
            yield self
        finally:
            sys.settrace(previous)

    def _trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in self._file_set:
            return None  # do not trace into foreign code
        if event == "call":
            return self._trace
        if event == "line":
            line = frame.f_lineno
            self.executed[filename].add(line)
            frame_key = id(frame)
            previous = self._last_line.get(frame_key)
            if previous is not None and previous[0] == filename:
                self.arcs[filename].add((previous[1], line))
            self._last_line[frame_key] = (filename, line)
        return self._trace

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def reset(self) -> None:
        for path in self._file_set:
            self.executed[path].clear()
            self.arcs[path].clear()
        self._last_line.clear()

    def merge_from(self, other: "CoverageTracker") -> None:
        """Fold another tracker's executed lines/arcs into this one.

        Used after parallel exploration: each worker records coverage on its
        own tracker (``sys.settrace`` is per-thread) and the per-worker
        results are unioned into one report.  Both trackers must have been
        built over the same packages.
        """

        for path, lines in other.executed.items():
            self.executed.setdefault(path, set()).update(lines)
        for path, arcs in other.arcs.items():
            self.arcs.setdefault(path, set()).update(arcs)

    def fingerprint(self) -> CoverageFingerprint:
        """A cheap, hashable identity of everything covered so far.

        The fingerprint is the frozen set of covered units — ``(path, line)``
        for executed lines plus ``(path, src, dst)`` for executed arcs — so
        two trackers cover the same behaviour iff their fingerprints are
        equal, and set difference measures novelty directly.  The hybrid seed
        pool keys seeds on this instead of diffing full reports.
        """

        units: Set[tuple] = set()
        for path, lines in self.executed.items():
            for line in lines:
                units.add((path, line))
        for path, arcs in self.arcs.items():
            for src, dst in arcs:
                units.add((path, src, dst))
        return frozenset(units)

    def novel_vs(self, other: Union["CoverageTracker", CoverageFingerprint, None]
                 ) -> int:
        """Count of covered units this tracker has that *other* lacks.

        *other* may be another tracker, a fingerprint (frozen set) from
        :meth:`fingerprint`, or ``None`` (everything is novel).
        """

        mine = self.fingerprint()
        if other is None:
            return len(mine)
        baseline = other.fingerprint() if isinstance(other, CoverageTracker) else other
        return len(mine - baseline)

    def report(self, modules: Optional[Iterable[str]] = None) -> CoverageReport:
        """Aggregate coverage, optionally restricted to module-name prefixes."""

        if modules is None:
            selected = self._file_set
        else:
            prefixes = tuple(modules)
            selected = {
                path for name, path in self._files.items()
                if name.startswith(prefixes)
            }
        executable_count = 0
        executed_count = 0
        branch_count = 0
        arc_count = 0
        executed_branch_count = 0
        for path in selected:
            executable = self._executable.get(path, set())
            executed = self.executed.get(path, set()) & executable
            branches = self._branches.get(path, set())
            executable_count += len(executable)
            executed_count += len(executed)
            branch_count += len(branches)
            executed_branch_count += len(self.executed.get(path, set()) & branches)
            arc_count += sum(1 for (src, _dst) in self.arcs.get(path, set()) if src in branches)
        return CoverageReport(
            executable_line_count=executable_count,
            executed_line_count=executed_count,
            branch_point_count=branch_count,
            executed_branch_arc_count=arc_count,
            executed_branch_point_count=executed_branch_count,
        )

    def uncovered_sites(self) -> Set[Tuple[str, int]]:
        """Static branch sites never executed so far, as ``(path, line)``.

        These are the explicit targets handed to the coverage-guided
        strategy and the hybrid hunt: every element is a decision the
        exploration has not yet reached.
        """

        return {
            (path, line)
            for path, branches in self._branches.items()
            for line in branches - self.executed.get(path, set())
        }
