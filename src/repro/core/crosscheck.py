"""Phase 2b: the inconsistency finder.

For two agents A and B, and for every pair of *different* grouped outputs
``(i, j)``, the constraint solver is asked whether ``C_A(i) AND C_B(j)`` is
satisfiable.  A model is a concrete input on which the two agents diverge —
an inconsistency — and is reported together with both output traces so a
human can judge which (if either) implementation violates the specification.

The number of solver queries is bounded by ``|RES_A| * |RES_B|`` (§3.4); the
grouping stage has already collapsed thousands of paths into tens of outputs,
which is what makes this stage cheap.  Two solving modes exist:

* **incremental** (the default): a shared
  :class:`~repro.symbex.solver.incremental.GroupEncoding` bit-blasts each
  group condition exactly once behind an activation literal, and every pair
  query re-solves the same SAT instance under the pair's two assumptions.
  Pass ``engine=`` to share the encoding across several pair reports of the
  same test (what :class:`~repro.core.campaign.Campaign` does).
* **legacy**: pass ``solver=`` (or ``incremental=False``) to re-simplify,
  re-bit-blast and re-solve every pair from scratch through a
  :class:`~repro.symbex.solver.Solver` — the reference implementation the
  incremental engine is equivalence-tested against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.grouping import GroupedResults, OutputGroup
from repro.core.trace import OutputTrace
from repro.errors import CrosscheckError
from repro.symbex.expr import BoolExpr, bool_and
from repro.symbex.solver import GroupEncoding, Solver, SolverConfig

__all__ = ["Inconsistency", "CrosscheckReport", "find_inconsistencies"]


@dataclass
class Inconsistency:
    """A pair of divergent behaviours reachable by a common input."""

    agent_a: str
    agent_b: str
    trace_a: OutputTrace
    trace_b: OutputTrace
    #: The conjunction that the solver satisfied.
    condition: BoolExpr
    #: A concrete example input assignment (variable name -> value).
    example: Dict[str, int] = field(default_factory=dict)
    solver_time: float = 0.0

    def diff(self):
        """First divergence between the two *symbolic* output traces.

        This is the pre-replay view of the divergence; the witness pipeline
        recomputes the signature from the concrete replay traces, which is
        what actually happened rather than what the solver predicted.
        """

        return self.trace_a.diff(self.trace_b)

    def describe(self) -> str:
        lines = [
            "inconsistency between %s and %s" % (self.agent_a, self.agent_b),
            "  %s output:" % self.agent_a,
            "  " + self.trace_a.short(limit=5),
            "  %s output:" % self.agent_b,
            "  " + self.trace_b.short(limit=5),
            "  " + self.diff().describe(),
            "  example input: %s" % _render_example(self.example),
        ]
        return "\n".join(lines)


def _render_example(example: Dict[str, int]) -> str:
    parts = ["%s=0x%x" % (name, value) for name, value in sorted(example.items())]
    return "{" + ", ".join(parts) + "}"


@dataclass
class CrosscheckReport:
    """Result of crosschecking two grouped intermediate results."""

    agent_a: str
    agent_b: str
    test_key: str
    inconsistencies: List[Inconsistency]
    queries: int
    unsat_pairs: int
    unknown_pairs: int
    checking_time: float
    identical_output_pairs: int
    #: True when ``max_pairs`` stopped the scan before every pair was queried.
    truncated: bool = False
    #: How the queries were answered: ``mode`` plus per-mode counters (for the
    #: incremental mode also an ``engine`` snapshot, cumulative when shared).
    solver_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def inconsistency_count(self) -> int:
        return len(self.inconsistencies)

    def distinct_trace_pairs(self) -> List[Tuple[OutputTrace, OutputTrace]]:
        return [(i.trace_a, i.trace_b) for i in self.inconsistencies]

    def summary_row(self) -> Dict[str, object]:
        """One row of the paper's Table 3 (inconsistency-checking part)."""

        return {
            "test": self.test_key,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "queries": self.queries,
            "inconsistencies": self.inconsistency_count,
            "checking_time": self.checking_time,
        }


def find_inconsistencies(grouped_a: GroupedResults, grouped_b: GroupedResults,
                         solver: Optional[Solver] = None,
                         max_pairs: Optional[int] = None,
                         engine: Optional[GroupEncoding] = None,
                         incremental: Optional[bool] = None,
                         deadline: Optional[float] = None,
                         clock: Callable[[], float] = time.perf_counter,
                         ) -> CrosscheckReport:
    """Crosscheck two agents' grouped results for one test specification.

    *max_pairs* caps the number of solver queries **globally** across the
    whole pair matrix; a truncated scan is flagged in the report.

    *deadline* is an absolute time on *clock* (default
    ``time.perf_counter``): once reached, the scan stops before the next
    solver query and the report is flagged ``truncated``, like a
    *max_pairs* cutoff.  Callers with query caches (the hybrid scheduler)
    simply re-scan on the next slice — already-solved pairs are cheap.

    Mode selection: an explicit *engine* drives the incremental path on that
    (possibly shared) encoding; an explicit *solver* or ``incremental=False``
    selects the legacy per-query path; by default a fresh incremental engine
    is created for this report.
    """

    if grouped_a.test_key != grouped_b.test_key:
        raise CrosscheckError(
            "cannot crosscheck different tests: %r vs %r"
            % (grouped_a.test_key, grouped_b.test_key)
        )
    if engine is not None and (solver is not None or incremental is False):
        raise CrosscheckError(
            "pass either engine= (incremental) or solver=/incremental=False "
            "(legacy), not both")
    use_incremental = engine is not None or (solver is None and incremental is not False)
    if use_incremental:
        if engine is None:
            engine = GroupEncoding(SolverConfig())
        engine.bind_test(grouped_a.test_key)
    elif solver is None:
        solver = Solver(SolverConfig())

    started = time.perf_counter()
    inconsistencies: List[Inconsistency] = []
    queries = 0
    unsat_pairs = 0
    unknown_pairs = 0
    identical = 0
    truncated = False
    via_counts = {"trivial": 0, "interval": 0, "assumption": 0, "pair-cache": 0}

    for group_a in grouped_a.groups:
        if truncated:
            break
        for group_b in grouped_b.groups:
            if group_a.trace == group_b.trace:
                identical += 1
                continue
            if max_pairs is not None and queries >= max_pairs:
                truncated = True
                break
            if deadline is not None and clock() >= deadline:
                truncated = True
                break
            queries += 1
            query_started = time.perf_counter()
            if use_incremental:
                outcome = engine.check_pair(group_a.condition, group_b.condition)
                result = outcome.result
                via_counts[outcome.via] += 1
            else:
                result = solver.check([group_a.condition, group_b.condition])
            elapsed = time.perf_counter() - query_started
            if result.is_sat:
                inconsistencies.append(Inconsistency(
                    agent_a=grouped_a.agent_name,
                    agent_b=grouped_b.agent_name,
                    trace_a=group_a.trace,
                    trace_b=group_b.trace,
                    condition=bool_and(group_a.condition, group_b.condition),
                    example=dict(result.model),
                    solver_time=elapsed,
                ))
            elif result.is_unsat:
                unsat_pairs += 1
            else:
                unknown_pairs += 1

    if use_incremental:
        solver_stats: Dict[str, object] = {
            "mode": "incremental",
            "trivial": via_counts["trivial"],
            "interval_decides": via_counts["interval"],
            "assumption_solves": via_counts["assumption"],
            "pair_cache_hits": via_counts["pair-cache"],
            "engine": engine.stats_dict(),
        }
    else:
        solver_stats = {"mode": "legacy"}
        solver_stats.update(solver.stats_dict())

    return CrosscheckReport(
        agent_a=grouped_a.agent_name,
        agent_b=grouped_b.agent_name,
        test_key=grouped_a.test_key,
        inconsistencies=inconsistencies,
        queries=queries,
        unsat_pairs=unsat_pairs,
        unknown_pairs=unknown_pairs,
        checking_time=time.perf_counter() - started,
        identical_output_pairs=identical,
        truncated=truncated,
        solver_stats=solver_stats,
    )
